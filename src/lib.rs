//! # symplfied-suite — workspace-level examples and integration tests
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) of the SymPLFIED reproduction.
//! The library surface simply re-exports the [`symplfied`] facade.
//!
//! ```
//! use symplfied_suite::prelude::*;
//! let program = parse_program("mov $1, 1\nprint $1\nhalt")?;
//! assert_eq!(program.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use symplfied::*;
