//! Property tests: the constraint solver agrees with brute force.

use proptest::prelude::*;
use sympl_symbolic::{Constraint, ConstraintSet};

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    // Constants stay small so a brute-force check over [-30, 30] is
    // conclusive for bound constraints drawn from [-20, 20].
    (0..6u8, -20i64..=20).prop_map(|(kind, c)| match kind {
        0 => Constraint::Eq(c),
        1 => Constraint::Ne(c),
        2 => Constraint::Gt(c),
        3 => Constraint::Lt(c),
        4 => Constraint::Ge(c),
        _ => Constraint::Le(c),
    })
}

fn brute_force_satisfiable(constraints: &[Constraint]) -> bool {
    (-30i64..=30).any(|v| constraints.iter().all(|c| c.holds(v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn satisfiability_matches_brute_force(cs in prop::collection::vec(arb_constraint(), 0..8)) {
        let set: ConstraintSet = cs.iter().copied().collect();
        prop_assert_eq!(
            set.is_satisfiable(),
            brute_force_satisfiable(&cs),
            "constraints {:?} -> set {}", cs, set
        );
    }

    #[test]
    fn witness_satisfies_every_constraint(cs in prop::collection::vec(arb_constraint(), 0..8)) {
        let set: ConstraintSet = cs.iter().copied().collect();
        if let Some(w) = set.witness() {
            for c in &cs {
                prop_assert!(c.holds(w), "witness {} violates {} (set {})", w, c, set);
            }
        } else {
            prop_assert!(!brute_force_satisfiable(&cs));
        }
    }

    #[test]
    fn allows_agrees_with_conjunction(
        cs in prop::collection::vec(arb_constraint(), 0..8),
        v in -30i64..=30,
    ) {
        let set: ConstraintSet = cs.iter().copied().collect();
        prop_assert_eq!(set.allows(v), cs.iter().all(|c| c.holds(v)));
    }

    #[test]
    fn adding_constraints_never_widens(
        cs in prop::collection::vec(arb_constraint(), 1..8),
        extra in arb_constraint(),
        v in -30i64..=30,
    ) {
        let base: ConstraintSet = cs.iter().copied().collect();
        let mut tightened = base.clone();
        tightened.add(extra);
        // Monotonicity: anything the tightened set allows, the base allowed.
        if tightened.allows(v) {
            prop_assert!(base.allows(v));
        }
    }

    #[test]
    fn insertion_order_is_irrelevant(cs in prop::collection::vec(arb_constraint(), 0..8)) {
        let forward: ConstraintSet = cs.iter().copied().collect();
        let backward: ConstraintSet = cs.iter().rev().copied().collect();
        for v in -30i64..=30 {
            prop_assert_eq!(forward.allows(v), backward.allows(v));
        }
        prop_assert_eq!(forward.is_satisfiable(), backward.is_satisfiable());
    }
}
