//! Compact binary leaf codecs for the symbolic value domain.
//!
//! These are the building blocks of the machine crate's state codec (see
//! `sympl-machine`'s `codec` module): LEB128 varints for unsigned integers,
//! zigzag varints for signed ones, and tagged encoders for the leaf types a
//! [`crate::ConstraintMap`] is made of — [`Value`], [`Location`], and the
//! normal-form [`ConstraintSet`]. They live here, below the machine state,
//! for the same reason the fold primitives do: the constraint map is the
//! one state component whose internals only this crate can see, so its
//! encoder must live next to them.
//!
//! The format is **self-describing within a known schema**: every variant
//! choice is a tag byte, every count a varint, so a decoder never needs
//! out-of-band length information, and a truncated or corrupted buffer
//! surfaces as a [`CodecError`] instead of a wrong value. Decoding a
//! constraint set *replays* its interval bounds and exclusions through
//! [`ConstraintSet::add`], so whatever the bytes say, the decoded set is in
//! the solver's normal form — malformed input can produce a different set,
//! never an invalid one. Decoding a constraint map rebuilds the rolling
//! digest and unsatisfiable-location caches entry by entry, so decoded maps
//! are indistinguishable from incrementally-built ones.
//!
//! This codec is also the stepping stone to serialized reports and
//! cluster-over-network campaigns: it gives state serialization a vendored,
//! dependency-free wire format until a vendored `serde` exists.

use std::fmt;

use crate::{Constraint, ConstraintMap, ConstraintSet, Location, Value};
use sympl_asm::{Reg, NUM_REGS};

/// Decoding failure: the buffer does not describe a value of the expected
/// shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended inside a value.
    UnexpectedEnd,
    /// A tag byte had no matching variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A varint ran longer than its integer type allows.
    Overflow,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The buffer's version byte names an unknown codec revision.
    BadVersion(u8),
    /// The value has no wire representation: a closure-backed predicate
    /// at *encode* time, or decoded bytes describing a value the domain
    /// forbids (e.g. a non-finite throughput figure).
    Unsupported(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => f.write_str("buffer ended inside a value"),
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            CodecError::Overflow => f.write_str("varint overflows its integer type"),
            CodecError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            CodecError::BadVersion(v) => write!(f, "unknown codec version {v}"),
            CodecError::Unsupported(what) => write!(f, "{what} has no wire representation"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = continue).
pub fn encode_u64(v: u64, buf: &mut Vec<u8>) {
    let mut v = v;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes an LEB128 varint at `*pos`, advancing it.
///
/// # Errors
///
/// [`CodecError::UnexpectedEnd`] when the buffer ends mid-varint,
/// [`CodecError::Overflow`] when the encoding exceeds 64 bits.
pub fn decode_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::Overflow);
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends `v` as a zigzag-mapped varint (small magnitudes stay small).
pub fn encode_i64(v: i64, buf: &mut Vec<u8>) {
    encode_u64(zigzag(v), buf);
}

/// Decodes a zigzag varint at `*pos`, advancing it.
///
/// # Errors
///
/// Propagates the varint errors of [`decode_u64`].
pub fn decode_i64(bytes: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    Ok(unzigzag(decode_u64(bytes, pos)?))
}

/// The zigzag map `0, -1, 1, -2, … → 0, 1, 2, 3, …`.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a `bool` as one byte (0 or 1).
pub fn encode_bool(v: bool, buf: &mut Vec<u8>) {
    buf.push(u8::from(v));
}

/// Decodes a `bool` at `*pos`, advancing it.
///
/// # Errors
///
/// [`CodecError::UnexpectedEnd`] at end of buffer, [`CodecError::BadTag`]
/// on any byte other than 0 or 1.
pub fn decode_bool(bytes: &[u8], pos: &mut usize) -> Result<bool, CodecError> {
    let &b = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
    *pos += 1;
    match b {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(CodecError::BadTag { what: "bool", tag }),
    }
}

/// Appends a UTF-8 string as a varint byte length plus the raw bytes.
pub fn encode_str(s: &str, buf: &mut Vec<u8>) {
    encode_u64(s.len() as u64, buf);
    buf.extend_from_slice(s.as_bytes());
}

/// Decodes a string at `*pos`, advancing it.
///
/// # Errors
///
/// The varint errors, [`CodecError::UnexpectedEnd`] on a short buffer, and
/// [`CodecError::BadUtf8`] on invalid UTF-8.
pub fn decode_str(bytes: &[u8], pos: &mut usize) -> Result<String, CodecError> {
    let len = usize::try_from(decode_u64(bytes, pos)?).map_err(|_| CodecError::Overflow)?;
    let end = pos.checked_add(len).ok_or(CodecError::Overflow)?;
    let slice = bytes.get(*pos..end).ok_or(CodecError::UnexpectedEnd)?;
    let s = std::str::from_utf8(slice).map_err(|_| CodecError::BadUtf8)?;
    *pos = end;
    Ok(s.to_owned())
}

/// Appends a [`std::time::Duration`] as whole seconds plus subsecond
/// nanoseconds, both varints (exact round-trip across the full range).
pub fn encode_duration(d: std::time::Duration, buf: &mut Vec<u8>) {
    encode_u64(d.as_secs(), buf);
    encode_u64(u64::from(d.subsec_nanos()), buf);
}

/// Decodes a [`std::time::Duration`] at `*pos`, advancing it.
///
/// # Errors
///
/// The varint errors; [`CodecError::Overflow`] when the nanosecond field
/// exceeds a billion (no valid encoder emits that).
pub fn decode_duration(bytes: &[u8], pos: &mut usize) -> Result<std::time::Duration, CodecError> {
    let secs = decode_u64(bytes, pos)?;
    let nanos = decode_u64(bytes, pos)?;
    if nanos >= 1_000_000_000 {
        return Err(CodecError::Overflow);
    }
    Ok(std::time::Duration::new(secs, nanos as u32))
}

/// Appends an `Option<Duration>` as a presence byte plus the duration.
pub fn encode_opt_duration(d: Option<std::time::Duration>, buf: &mut Vec<u8>) {
    match d {
        None => buf.push(0),
        Some(d) => {
            buf.push(1);
            encode_duration(d, buf);
        }
    }
}

/// Decodes an `Option<Duration>` at `*pos`, advancing it.
///
/// # Errors
///
/// [`CodecError::BadTag`] on a presence byte other than 0/1, plus the
/// duration errors.
pub fn decode_opt_duration(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<Option<std::time::Duration>, CodecError> {
    if decode_bool(bytes, pos)? {
        Ok(Some(decode_duration(bytes, pos)?))
    } else {
        Ok(None)
    }
}

/// Appends an `f64` as the varint of its IEEE-754 bit pattern (exact
/// round-trip, including signed zeros and infinities).
pub fn encode_f64(v: f64, buf: &mut Vec<u8>) {
    encode_u64(v.to_bits(), buf);
}

/// Decodes an `f64` at `*pos`, advancing it.
///
/// # Errors
///
/// Propagates the varint errors of [`decode_u64`].
pub fn decode_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, CodecError> {
    Ok(f64::from_bits(decode_u64(bytes, pos)?))
}

const VALUE_INT: u8 = 0;
const VALUE_ERR: u8 = 1;

/// Appends a [`Value`]: a tag byte, then a zigzag varint for integers.
pub fn encode_value(v: Value, buf: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            buf.push(VALUE_INT);
            encode_i64(i, buf);
        }
        Value::Err => buf.push(VALUE_ERR),
    }
}

/// Decodes a [`Value`] at `*pos`, advancing it.
///
/// # Errors
///
/// [`CodecError::BadTag`] on an unknown tag, plus the varint errors.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    let &tag = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
    *pos += 1;
    match tag {
        VALUE_INT => Ok(Value::Int(decode_i64(bytes, pos)?)),
        VALUE_ERR => Ok(Value::Err),
        tag => Err(CodecError::BadTag { what: "value", tag }),
    }
}

const LOC_REG: u8 = 0;
const LOC_MEM: u8 = 1;

/// Appends a [`Location`]: a tag byte, then a register index byte or a
/// varint address.
pub fn encode_location(loc: Location, buf: &mut Vec<u8>) {
    match loc {
        Location::Reg(r) => {
            buf.push(LOC_REG);
            buf.push(u8::from(r));
        }
        Location::Mem(a) => {
            buf.push(LOC_MEM);
            encode_u64(a, buf);
        }
    }
}

/// Decodes a [`Location`] at `*pos`, advancing it.
///
/// # Errors
///
/// [`CodecError::BadTag`] on an unknown tag or an out-of-file register
/// index, plus the varint errors.
pub fn decode_location(bytes: &[u8], pos: &mut usize) -> Result<Location, CodecError> {
    let &tag = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
    *pos += 1;
    match tag {
        LOC_REG => {
            let &idx = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
            *pos += 1;
            if usize::from(idx) >= NUM_REGS {
                return Err(CodecError::BadTag {
                    what: "register index",
                    tag: idx,
                });
            }
            Ok(Location::Reg(Reg::r(idx)))
        }
        LOC_MEM => Ok(Location::Mem(decode_u64(bytes, pos)?)),
        tag => Err(CodecError::BadTag {
            what: "location",
            tag,
        }),
    }
}

/// Appends a [`ConstraintSet`] in its normal form: zigzag `lo`, zigzag
/// `hi`, then the exclusion count and each excluded point.
pub fn encode_constraint_set(set: &ConstraintSet, buf: &mut Vec<u8>) {
    encode_i64(set.lower(), buf);
    encode_i64(set.upper(), buf);
    let exclusions: Vec<i64> = set.exclusions().collect();
    encode_u64(exclusions.len() as u64, buf);
    for x in exclusions {
        encode_i64(x, buf);
    }
}

/// Decodes a [`ConstraintSet`] at `*pos` by **replaying** the encoded
/// bounds and exclusions through [`ConstraintSet::add`], so the result is
/// always in the solver's normal form — a well-formed encoding round-trips
/// exactly, and adversarial bytes can only produce a *different* normalized
/// set, never an un-normalized one.
///
/// # Errors
///
/// Propagates the varint errors.
pub fn decode_constraint_set(bytes: &[u8], pos: &mut usize) -> Result<ConstraintSet, CodecError> {
    let lo = decode_i64(bytes, pos)?;
    let hi = decode_i64(bytes, pos)?;
    let n = decode_u64(bytes, pos)?;
    let mut set = ConstraintSet::new();
    if lo != i64::MIN {
        set.add(Constraint::Ge(lo));
    }
    if hi != i64::MAX {
        set.add(Constraint::Le(hi));
    }
    for _ in 0..n {
        set.add(Constraint::Ne(decode_i64(bytes, pos)?));
    }
    Ok(set)
}

/// Appends a [`ConstraintMap`]: an entry count, then `(location, set)`
/// pairs in the map's canonical location order.
pub fn encode_constraint_map(map: &ConstraintMap, buf: &mut Vec<u8>) {
    encode_u64(map.len() as u64, buf);
    for (loc, set) in map.iter() {
        encode_location(loc, buf);
        encode_constraint_set(set, buf);
    }
}

/// Decodes a [`ConstraintMap`] at `*pos`, rebuilding the map's rolling
/// digest and unsatisfiable-location caches entry by entry, so a decoded
/// map is indistinguishable (including its O(1) `digest`/`is_satisfiable`)
/// from one built through the normal mutators.
///
/// # Errors
///
/// Propagates the leaf decoding errors.
pub fn decode_constraint_map(bytes: &[u8], pos: &mut usize) -> Result<ConstraintMap, CodecError> {
    let n = decode_u64(bytes, pos)?;
    let mut map = ConstraintMap::new();
    for _ in 0..n {
        let loc = decode_location(bytes, pos)?;
        let set = decode_constraint_set(bytes, pos)?;
        map.insert_set(loc, set);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u64(v: u64) -> u64 {
        let mut buf = Vec::new();
        encode_u64(v, &mut buf);
        let mut pos = 0;
        let out = decode_u64(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "whole encoding consumed");
        out
    }

    #[test]
    fn varints_roundtrip_across_magnitudes() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip_u64(v), v);
        }
        for v in [0i64, 1, -1, 63, -64, 1 << 40, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            encode_i64(v, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn small_magnitudes_stay_small() {
        let mut buf = Vec::new();
        encode_i64(-3, &mut buf);
        assert_eq!(buf.len(), 1, "zigzag keeps small negatives one byte");
        buf.clear();
        encode_u64(127, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_and_overlong_varints_error() {
        assert_eq!(
            decode_u64(&[0x80, 0x80], &mut 0),
            Err(CodecError::UnexpectedEnd)
        );
        let overlong = [0xFFu8; 11];
        assert_eq!(decode_u64(&overlong, &mut 0), Err(CodecError::Overflow));
    }

    #[test]
    fn scalar_leaves_roundtrip() {
        use std::time::Duration;
        let mut buf = Vec::new();
        encode_bool(true, &mut buf);
        encode_bool(false, &mut buf);
        encode_str("héllo", &mut buf);
        encode_str("", &mut buf);
        encode_duration(Duration::new(u64::MAX, 999_999_999), &mut buf);
        encode_opt_duration(None, &mut buf);
        encode_opt_duration(Some(Duration::from_millis(1500)), &mut buf);
        encode_f64(-0.0, &mut buf);
        encode_f64(1234.5678, &mut buf);
        encode_f64(f64::INFINITY, &mut buf);
        let mut pos = 0;
        assert!(decode_bool(&buf, &mut pos).unwrap());
        assert!(!decode_bool(&buf, &mut pos).unwrap());
        assert_eq!(decode_str(&buf, &mut pos).unwrap(), "héllo");
        assert_eq!(decode_str(&buf, &mut pos).unwrap(), "");
        assert_eq!(
            decode_duration(&buf, &mut pos).unwrap(),
            Duration::new(u64::MAX, 999_999_999)
        );
        assert_eq!(decode_opt_duration(&buf, &mut pos).unwrap(), None);
        assert_eq!(
            decode_opt_duration(&buf, &mut pos).unwrap(),
            Some(Duration::from_millis(1500))
        );
        assert_eq!(
            decode_f64(&buf, &mut pos).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(decode_f64(&buf, &mut pos).unwrap(), 1234.5678);
        assert_eq!(decode_f64(&buf, &mut pos).unwrap(), f64::INFINITY);
        assert_eq!(pos, buf.len(), "every byte consumed");
    }

    #[test]
    fn scalar_leaves_reject_malformed_bytes() {
        assert!(matches!(
            decode_bool(&[7], &mut 0),
            Err(CodecError::BadTag { what: "bool", .. })
        ));
        // String length runs past the buffer.
        let mut buf = Vec::new();
        encode_u64(100, &mut buf);
        buf.push(b'x');
        assert_eq!(decode_str(&buf, &mut 0), Err(CodecError::UnexpectedEnd));
        // Invalid UTF-8 payload.
        let bad = [1u8, 0xFF];
        assert_eq!(decode_str(&bad, &mut 0), Err(CodecError::BadUtf8));
        // Nanoseconds out of range.
        let mut buf = Vec::new();
        encode_u64(0, &mut buf);
        encode_u64(1_000_000_000, &mut buf);
        assert_eq!(decode_duration(&buf, &mut 0), Err(CodecError::Overflow));
    }

    #[test]
    fn values_and_locations_roundtrip() {
        let mut buf = Vec::new();
        for v in [
            Value::Int(0),
            Value::Int(-77),
            Value::Int(i64::MAX),
            Value::Err,
        ] {
            buf.clear();
            encode_value(v, &mut buf);
            assert_eq!(decode_value(&buf, &mut 0).unwrap(), v);
        }
        for loc in [
            Location::reg(0),
            Location::reg(31),
            Location::Mem(0),
            Location::Mem(u64::MAX),
        ] {
            buf.clear();
            encode_location(loc, &mut buf);
            assert_eq!(decode_location(&buf, &mut 0).unwrap(), loc);
        }
        assert!(matches!(
            decode_value(&[9], &mut 0),
            Err(CodecError::BadTag { what: "value", .. })
        ));
        assert!(matches!(
            decode_location(&[LOC_REG, 32], &mut 0),
            Err(CodecError::BadTag {
                what: "register index",
                ..
            })
        ));
    }

    #[test]
    fn constraint_sets_roundtrip_exactly() {
        let sets: Vec<ConstraintSet> = vec![
            ConstraintSet::new(),
            [Constraint::Gt(0), Constraint::Le(5), Constraint::Ne(2)]
                .into_iter()
                .collect(),
            [Constraint::Gt(5), Constraint::Lt(5)].into_iter().collect(), // unsat
            [Constraint::Eq(42)].into_iter().collect(),
            [Constraint::Ne(i64::MIN)].into_iter().collect(),
            [Constraint::Gt(i64::MAX)].into_iter().collect(), // forced empty
        ];
        for set in sets {
            let mut buf = Vec::new();
            encode_constraint_set(&set, &mut buf);
            let mut pos = 0;
            let decoded = decode_constraint_set(&buf, &mut pos).unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(decoded, set, "normal form must round-trip exactly");
        }
    }

    #[test]
    fn constraint_maps_roundtrip_with_live_caches() {
        let mut map = ConstraintMap::new();
        assert!(map.constrain(Location::reg(3), Constraint::Gt(0)));
        assert!(map.constrain(Location::reg(3), Constraint::Le(9)));
        assert!(map.constrain(Location::Mem(64), Constraint::Ne(7)));
        // Drive one location unsatisfiable so the unsat cache is non-zero.
        assert!(map.constrain(Location::reg(5), Constraint::Gt(2)));
        assert!(!map.constrain(Location::reg(5), Constraint::Lt(2)));

        let mut buf = Vec::new();
        encode_constraint_map(&map, &mut buf);
        let mut pos = 0;
        let decoded = decode_constraint_map(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(decoded, map);
        assert_eq!(decoded.digest(), map.digest(), "rolling digest rebuilt");
        assert_eq!(decoded.digest(), decoded.refold_digest());
        assert_eq!(decoded.is_satisfiable(), map.is_satisfiable());
    }

    #[test]
    fn empty_map_is_one_byte() {
        let mut buf = Vec::new();
        encode_constraint_map(&ConstraintMap::new(), &mut buf);
        assert_eq!(buf, vec![0]);
        let decoded = decode_constraint_map(&buf, &mut 0).unwrap();
        assert!(decoded.is_empty());
    }
}
