//! # sympl-symbolic — the `err` value domain and constraint solver
//!
//! SymPLFIED represents *every* erroneous value in the program with the
//! single abstract symbol `err` (paper §3.2). This crate implements:
//!
//! * [`Value`] — an integer or the `err` symbol, with the paper's §5.2
//!   error-propagation algebra (`err + I = err`, `err * 0 = 0`, the
//!   divide-by-zero forks, …).
//! * [`Location`] — a register or memory cell; constraints attach to
//!   locations, not to values, because all errors share one symbol.
//! * [`Constraint`] / [`ConstraintSet`] — the per-location constraint sets
//!   of the paper's ConstraintMap (e.g. `notGreaterThan(5) notEqualTo(2)
//!   greaterThan(0)`), with a satisfiability solver that prunes infeasible
//!   paths and can produce a concrete witness for replay.
//! * [`ConstraintMap`] — the map carried in the machine state.
//! * [`ZobristComponent`] / [`Fnv128Hasher`] — deterministic 128-bit
//!   cell hashing and the incremental XOR-folds behind the machine crate's
//!   rolling state fingerprints (the ConstraintMap maintains one for its
//!   own entries).
//! * [`codec`] — compact varint leaf encoders for values, locations, and
//!   constraint sets/maps, the building blocks of the machine crate's state
//!   codec (disk-spilling frontiers, and eventually cluster-over-network
//!   state shipping).
//! * [`fork_compare`] — the non-deterministic comparison semantics: a
//!   comparison involving `err` forks execution into the true and false
//!   cases, each "remembering" what it learned as a constraint (and, for
//!   equalities, substituting the concrete value back into the location).
//!
//! # Example: the factorial detector reasoning from paper §4.2
//!
//! ```
//! use sympl_symbolic::{Constraint, ConstraintSet};
//!
//! let mut set = ConstraintSet::new();
//! // false case of ($3 > $4) with $4 = 1: remember $3 <= 1
//! set.add(Constraint::Le(1));
//! // detector check ($4 < $3) claims $3 > 1
//! set.add(Constraint::Gt(1));
//! // Contradiction: the path is infeasible and is pruned.
//! assert!(!set.is_satisfiable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod constraint;
mod fold;
mod fork;
mod location;
mod map;
mod value;

pub use codec::CodecError;
pub use constraint::{Constraint, ConstraintSet};
pub use fold::{cell_hash, Fnv128Hasher, ZobristComponent};
pub use fork::{fork_compare, CmpCase, CmpCases};
pub use location::Location;
pub use map::ConstraintMap;
pub use value::{symbolic_binop, ArithOutcome, Value};
