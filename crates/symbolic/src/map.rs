//! The ConstraintMap carried inside the machine state (paper §5.2).

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;

use crate::{Constraint, ConstraintSet, Location, ZobristComponent};

/// Maps each location currently holding `err` to the set of constraints its
/// (unknown) value must satisfy along the current execution path.
///
/// The map is part of the forked machine state: the true and false branches
/// of a comparison each carry a *different* ConstraintMap, which is how the
/// search "remembers" the outcome of earlier comparisons and keeps later
/// comparisons on unmodified locations consistent.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ConstraintMap {
    entries: BTreeMap<Location, ConstraintSet>,
    // Locations whose constraint set is unsatisfiable, maintained by
    // `constrain`/`clear`/`copy` so `is_satisfiable` is O(1) on the fork
    // hot path instead of a scan over every constrained location. Always
    // derivable from `entries`, so the derived Eq/Hash stay consistent.
    unsat: usize,
    // Rolling XOR-fold over `(location, constraint set)` cells, maintained
    // by the same three mutators so the machine state's fingerprint never
    // re-walks the map. Derivable from `entries` like `unsat`, keeping the
    // derived Eq/Hash consistent.
    digest: ZobristComponent,
}

impl ConstraintMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `constraint` on `loc`, returning whether the location's
    /// constraint set is still satisfiable.
    ///
    /// A `false` return marks the current path as infeasible (a
    /// false-positive candidate); callers prune it from the search.
    #[must_use = "an unsatisfiable result must prune the path"]
    pub fn constrain(&mut self, loc: Location, constraint: Constraint) -> bool {
        match self.entries.entry(loc) {
            Entry::Occupied(mut e) => {
                let set = e.get_mut();
                // Constraint sets only ever tighten, so satisfiability
                // transitions at most once, satisfiable → unsatisfiable.
                let was_satisfiable = set.is_satisfiable();
                self.digest.remove(&loc, &*set);
                set.add(constraint);
                self.digest.insert(&loc, &*set);
                let now_satisfiable = set.is_satisfiable();
                if was_satisfiable && !now_satisfiable {
                    self.unsat += 1;
                }
                now_satisfiable
            }
            Entry::Vacant(e) => {
                let mut set = ConstraintSet::new();
                set.add(constraint);
                let now_satisfiable = set.is_satisfiable();
                if !now_satisfiable {
                    self.unsat += 1;
                }
                self.digest.insert(&loc, &set);
                e.insert(set);
                now_satisfiable
            }
        }
    }

    /// Forgets everything known about a location. Called when the location
    /// is overwritten with a *fresh* value (concrete or a new error): the
    /// old constraints described the previous occupant.
    pub fn clear(&mut self, loc: Location) {
        if let Some(set) = self.entries.remove(&loc) {
            self.digest.remove(&loc, &set);
            if !set.is_satisfiable() {
                self.unsat -= 1;
            }
        }
    }

    /// Copies the constraints of `from` onto `to` (register moves propagate
    /// the same unknown value, so its known facts travel with it).
    pub fn copy(&mut self, from: Location, to: Location) {
        if from == to {
            return;
        }
        match self.entries.get(&from).cloned() {
            Some(set) => {
                self.clear(to);
                if !set.is_satisfiable() {
                    self.unsat += 1;
                }
                self.digest.insert(&to, &set);
                self.entries.insert(to, set);
            }
            None => {
                self.clear(to);
            }
        }
    }

    /// Installs a whole constraint set on a location, replacing whatever was
    /// recorded, while maintaining the rolling digest and the
    /// unsatisfiable-location counter. Decoding support (`crate::codec`):
    /// the decoder rebuilds a map entry-by-entry through here so decoded
    /// maps carry live caches, exactly like incrementally-built ones.
    pub(crate) fn insert_set(&mut self, loc: Location, set: ConstraintSet) {
        self.clear(loc);
        if !set.is_satisfiable() {
            self.unsat += 1;
        }
        self.digest.insert(&loc, &set);
        self.entries.insert(loc, set);
    }

    /// The constraint set for a location, if any constraints are recorded.
    #[must_use]
    pub fn get(&self, loc: Location) -> Option<&ConstraintSet> {
        self.entries.get(&loc)
    }

    /// Whether every recorded constraint set is satisfiable.
    ///
    /// O(1): the unsatisfiable-location count is maintained incrementally by
    /// [`ConstraintMap::constrain`] (the only tightening operation) and kept
    /// consistent by `clear`/`copy`, so the fork hot path never rescans the
    /// map.
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        self.unsat == 0
    }

    /// A concrete witness for a location (used for replay); `None` if the
    /// location is unconstrained — any value works — in which case callers
    /// typically choose a surprising default.
    #[must_use]
    pub fn witness(&self, loc: Location) -> Option<i64> {
        self.entries.get(&loc).and_then(ConstraintSet::witness)
    }

    /// Number of constrained locations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no constraints are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(location, constraint set)` pairs in location order.
    pub fn iter(&self) -> impl Iterator<Item = (Location, &ConstraintSet)> {
        self.entries.iter().map(|(&l, s)| (l, s))
    }

    /// The rolling XOR-fold over the map's `(location, constraint set)`
    /// cells, maintained incrementally by `constrain`/`clear`/`copy`. O(1);
    /// the machine state mixes it into its fingerprint instead of
    /// re-hashing every entry.
    #[must_use]
    pub fn digest(&self) -> ZobristComponent {
        self.digest
    }

    /// A from-scratch recompute of [`ConstraintMap::digest`] — O(|map|),
    /// for the digest-consistency tests and reference fingerprint path
    /// only.
    #[must_use]
    pub fn refold_digest(&self) -> ZobristComponent {
        ZobristComponent::refold(self.entries.iter())
    }
}

impl fmt::Display for ConstraintMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return f.write_str("{}");
        }
        writeln!(f, "{{")?;
        for (loc, set) in &self.entries {
            writeln!(f, "  {loc}: {set}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constrain_accumulates_and_detects_unsat() {
        let mut m = ConstraintMap::new();
        let loc = Location::reg(3);
        assert!(m.constrain(loc, Constraint::Gt(0)));
        assert!(m.constrain(loc, Constraint::Le(5)));
        assert!(m.is_satisfiable());
        assert!(!m.constrain(loc, Constraint::Gt(5)));
        assert!(!m.is_satisfiable());
    }

    #[test]
    fn clear_forgets_location() {
        let mut m = ConstraintMap::new();
        let loc = Location::reg(3);
        let _ = m.constrain(loc, Constraint::Eq(7));
        m.clear(loc);
        assert!(m.get(loc).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn copy_moves_facts_with_the_value() {
        let mut m = ConstraintMap::new();
        let a = Location::reg(1);
        let b = Location::reg(2);
        let _ = m.constrain(a, Constraint::Ge(10));
        m.copy(a, b);
        assert_eq!(m.witness(b), Some(10));
        // Copying an unconstrained source erases stale facts on the target.
        m.copy(Location::reg(5), b);
        assert!(m.get(b).is_none());
        // Self-copy is a no-op.
        m.copy(a, a);
        assert_eq!(m.witness(a), Some(10));
    }

    #[test]
    fn independent_locations_do_not_interfere() {
        let mut m = ConstraintMap::new();
        assert!(m.constrain(Location::reg(1), Constraint::Eq(1)));
        assert!(m.constrain(Location::mem(100), Constraint::Eq(2)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.witness(Location::reg(1)), Some(1));
        assert_eq!(m.witness(Location::mem(100)), Some(2));
    }

    #[test]
    fn display_lists_entries() {
        let mut m = ConstraintMap::new();
        assert_eq!(m.to_string(), "{}");
        let _ = m.constrain(Location::reg(3), Constraint::Gt(1));
        let text = m.to_string();
        assert!(text.contains("$3"));
        assert!(text.contains("notLesserThan(2)"));
    }

    #[test]
    fn unsat_cache_tracks_clear_and_copy() {
        let mut m = ConstraintMap::new();
        let a = Location::reg(1);
        let b = Location::reg(2);
        // Drive `a` unsatisfiable.
        assert!(m.constrain(a, Constraint::Gt(5)));
        assert!(!m.constrain(a, Constraint::Lt(5)));
        assert!(!m.is_satisfiable());
        // Overwriting the location restores satisfiability.
        m.clear(a);
        assert!(m.is_satisfiable());
        // An unsat set copied onto another location is still tracked…
        assert!(m.constrain(a, Constraint::Gt(5)));
        assert!(!m.constrain(a, Constraint::Lt(5)));
        m.copy(a, b);
        assert!(!m.is_satisfiable());
        m.clear(a);
        assert!(!m.is_satisfiable(), "the copy at `b` is still unsat");
        // …and copying an unconstrained source over it clears the flag.
        m.copy(Location::reg(7), b);
        assert!(m.is_satisfiable());
        // Copying a satisfiable set over an unsat target also restores.
        assert!(m.constrain(a, Constraint::Eq(1)));
        assert!(!m.constrain(b, Constraint::Gt(2)) || !m.constrain(b, Constraint::Lt(2)));
        m.copy(a, b);
        assert!(m.is_satisfiable());
    }

    #[test]
    fn digest_tracks_constrain_clear_and_copy() {
        let mut m = ConstraintMap::new();
        let a = Location::reg(1);
        let b = Location::reg(2);
        assert_eq!(m.digest(), m.refold_digest());
        assert!(m.constrain(a, Constraint::Gt(0)));
        assert_eq!(m.digest(), m.refold_digest());
        assert!(m.constrain(a, Constraint::Le(9)));
        assert_eq!(m.digest(), m.refold_digest());
        m.copy(a, b);
        assert_eq!(m.digest(), m.refold_digest());
        // Copy over an existing target, self-copy, unconstrained-source copy.
        assert!(m.constrain(b, Constraint::Ne(3)));
        m.copy(a, b);
        assert_eq!(m.digest(), m.refold_digest());
        m.copy(a, a);
        assert_eq!(m.digest(), m.refold_digest());
        m.copy(Location::reg(7), b);
        assert_eq!(m.digest(), m.refold_digest());
        m.clear(a);
        assert_eq!(m.digest(), m.refold_digest());
        assert_eq!(m.digest(), ZobristComponent::new(), "empty map folds to 0");
        // Equal contents reached by different histories agree.
        let mut n = ConstraintMap::new();
        assert!(n.constrain(b, Constraint::Gt(0)));
        let mut o = ConstraintMap::new();
        assert!(o.constrain(a, Constraint::Gt(0)));
        o.copy(a, b);
        o.clear(a);
        assert_eq!(n, o);
        assert_eq!(n.digest(), o.digest());
    }

    #[test]
    fn maps_hash_equal_iff_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = ConstraintMap::new();
        let mut b = ConstraintMap::new();
        let _ = a.constrain(Location::reg(1), Constraint::Gt(0));
        let _ = b.constrain(Location::reg(1), Constraint::Gt(0));
        assert_eq!(a, b);
        let hash = |m: &ConstraintMap| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }
}
