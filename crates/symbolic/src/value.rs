//! The symbolic value domain and the §5.2 error-propagation algebra.

use std::fmt;
use sympl_asm::BinOp;

/// A machine value: either a concrete integer or the abstract error symbol.
///
/// The paper coalesces every erroneous value — single- or multi-bit flips in
/// registers, memory, caches, or computation — into the single symbol `err`
/// (§3.2). This avoids state explosion: program states are distinguished by
/// *where* errors live, not by the individual corrupted bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A concrete integer.
    Int(i64),
    /// The abstract error symbol `err`.
    Err,
}

impl Value {
    /// Whether the value is the `err` symbol.
    #[must_use]
    pub fn is_err(self) -> bool {
        matches!(self, Value::Err)
    }

    /// The concrete integer, if this is not `err`.
    #[must_use]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Err => None,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Err => f.write_str("err"),
        }
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

/// Result of a (possibly symbolic) binary arithmetic operation.
///
/// Most combinations are deterministic, following the paper's propagation
/// equations. The divide-by-`err` cases are *non-deterministic*: the paper
/// forks on `isEqual(err, 0)`, so the machine model must split the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOutcome {
    /// The operation produced a single value.
    Value(Value),
    /// Concrete division by a concrete zero: `div-zero` exception.
    DivByZero,
    /// The divisor is `err`: fork into a `div-zero` exception (divisor = 0)
    /// and an `err` result (divisor ≠ 0). The machine attaches the learned
    /// constraint to the divisor's location if it has one.
    ForkOnDivisorZero,
}

/// Applies a binary operation over the symbolic domain, implementing the
/// propagation equations of paper §5.2:
///
/// ```text
/// err ± x = err                err * I = if I == 0 then 0 else err
/// err * err = err              err / I = if I == 0 then div-zero else err
/// I / err, err / err           = fork on isEqual(err, 0)
/// ```
///
/// Bitwise operations propagate `err` except for the absorbing cases
/// `err & 0 = 0` and `err | -1 = -1`, which are exact for every possible
/// concrete value behind `err` (the same reasoning the paper applies to
/// `err * 0 = 0`).
///
/// ```
/// use sympl_symbolic::{symbolic_binop, ArithOutcome, Value};
/// use sympl_asm::BinOp;
///
/// assert_eq!(
///     symbolic_binop(BinOp::Add, Value::Err, Value::Int(3)),
///     ArithOutcome::Value(Value::Err)
/// );
/// assert_eq!(
///     symbolic_binop(BinOp::Mul, Value::Err, Value::Int(0)),
///     ArithOutcome::Value(Value::Int(0))
/// );
/// assert_eq!(
///     symbolic_binop(BinOp::Div, Value::Int(1), Value::Err),
///     ArithOutcome::ForkOnDivisorZero
/// );
/// ```
#[must_use]
pub fn symbolic_binop(op: BinOp, lhs: Value, rhs: Value) -> ArithOutcome {
    use Value::{Err, Int};
    match (lhs, rhs) {
        (Int(a), Int(b)) => match op.apply(a, b) {
            Some(v) => ArithOutcome::Value(Int(v)),
            None => ArithOutcome::DivByZero,
        },
        // Divisions with a symbolic divisor fork on divisor == 0.
        (_, Err) if op.is_division() => ArithOutcome::ForkOnDivisorZero,
        // err / I: definite trap when I == 0, else err.
        (Err, Int(b)) if op.is_division() => {
            if b == 0 {
                ArithOutcome::DivByZero
            } else {
                ArithOutcome::Value(Err)
            }
        }
        // Multiplication by a concrete zero absorbs the error.
        (Err, Int(0)) | (Int(0), Err) if op == BinOp::Mul => ArithOutcome::Value(Int(0)),
        // Bitwise absorbing elements are exact regardless of the err value.
        (Err, Int(0)) | (Int(0), Err) if op == BinOp::And => ArithOutcome::Value(Int(0)),
        (Err, Int(-1)) | (Int(-1), Err) if op == BinOp::Or => ArithOutcome::Value(Int(-1)),
        // Shifting the concrete value 0 yields 0 whatever the shift amount.
        (Int(0), Err) if matches!(op, BinOp::Sll | BinOp::Srl) => ArithOutcome::Value(Int(0)),
        // Everything else propagates the error symbol.
        _ => ArithOutcome::Value(Err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_arithmetic_delegates_to_binop() {
        assert_eq!(
            symbolic_binop(BinOp::Add, Value::Int(2), Value::Int(3)),
            ArithOutcome::Value(Value::Int(5))
        );
        assert_eq!(
            symbolic_binop(BinOp::Div, Value::Int(7), Value::Int(0)),
            ArithOutcome::DivByZero
        );
    }

    #[test]
    fn err_absorbs_addition_and_subtraction() {
        for op in [BinOp::Add, BinOp::Sub] {
            assert_eq!(
                symbolic_binop(op, Value::Err, Value::Int(5)),
                ArithOutcome::Value(Value::Err)
            );
            assert_eq!(
                symbolic_binop(op, Value::Int(5), Value::Err),
                ArithOutcome::Value(Value::Err)
            );
            assert_eq!(
                symbolic_binop(op, Value::Err, Value::Err),
                ArithOutcome::Value(Value::Err)
            );
        }
    }

    #[test]
    fn err_times_zero_is_zero() {
        assert_eq!(
            symbolic_binop(BinOp::Mul, Value::Err, Value::Int(0)),
            ArithOutcome::Value(Value::Int(0))
        );
        assert_eq!(
            symbolic_binop(BinOp::Mul, Value::Int(0), Value::Err),
            ArithOutcome::Value(Value::Int(0))
        );
        assert_eq!(
            symbolic_binop(BinOp::Mul, Value::Err, Value::Int(3)),
            ArithOutcome::Value(Value::Err)
        );
        assert_eq!(
            symbolic_binop(BinOp::Mul, Value::Err, Value::Err),
            ArithOutcome::Value(Value::Err)
        );
    }

    #[test]
    fn division_by_err_forks() {
        assert_eq!(
            symbolic_binop(BinOp::Div, Value::Int(10), Value::Err),
            ArithOutcome::ForkOnDivisorZero
        );
        assert_eq!(
            symbolic_binop(BinOp::Div, Value::Err, Value::Err),
            ArithOutcome::ForkOnDivisorZero
        );
        assert_eq!(
            symbolic_binop(BinOp::Rem, Value::Int(10), Value::Err),
            ArithOutcome::ForkOnDivisorZero
        );
    }

    #[test]
    fn err_divided_by_concrete() {
        assert_eq!(
            symbolic_binop(BinOp::Div, Value::Err, Value::Int(0)),
            ArithOutcome::DivByZero
        );
        assert_eq!(
            symbolic_binop(BinOp::Div, Value::Err, Value::Int(4)),
            ArithOutcome::Value(Value::Err)
        );
    }

    #[test]
    fn bitwise_absorption_is_exact() {
        assert_eq!(
            symbolic_binop(BinOp::And, Value::Err, Value::Int(0)),
            ArithOutcome::Value(Value::Int(0))
        );
        assert_eq!(
            symbolic_binop(BinOp::Or, Value::Err, Value::Int(-1)),
            ArithOutcome::Value(Value::Int(-1))
        );
        assert_eq!(
            symbolic_binop(BinOp::And, Value::Err, Value::Int(7)),
            ArithOutcome::Value(Value::Err)
        );
        assert_eq!(
            symbolic_binop(BinOp::Sll, Value::Int(0), Value::Err),
            ArithOutcome::Value(Value::Int(0))
        );
        assert_eq!(
            symbolic_binop(BinOp::Sll, Value::Int(1), Value::Err),
            ArithOutcome::Value(Value::Err)
        );
    }

    #[test]
    fn soundness_err_result_covers_all_concrete_results() {
        // For a sample of concrete stand-ins for `err`, the symbolic result
        // must cover the concrete result: either it is `err`, or it equals
        // the concrete result exactly (absorption cases).
        let stand_ins = [-3i64, -1, 0, 1, 2, 7, i64::MAX, i64::MIN];
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Sll,
            BinOp::Srl,
        ];
        for op in ops {
            for &e in &stand_ins {
                for &c in &[-2i64, 0, 1, 5, -1] {
                    let symbolic = symbolic_binop(op, Value::Err, Value::Int(c));
                    if let ArithOutcome::Value(Value::Int(exact)) = symbolic {
                        let concrete = op.apply(e, c).expect("non-division ops never trap");
                        assert_eq!(
                            concrete, exact,
                            "{op:?}: err(={e}) op {c} claimed exact {exact}"
                        );
                    }
                    let symmetric = symbolic_binop(op, Value::Int(c), Value::Err);
                    if let ArithOutcome::Value(Value::Int(exact)) = symmetric {
                        let concrete = op.apply(c, e).expect("non-division ops never trap");
                        assert_eq!(
                            concrete, exact,
                            "{op:?}: {c} op err(={e}) claimed exact {exact}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn value_display_and_default() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Err.to_string(), "err");
        assert_eq!(Value::default(), Value::Int(0));
        assert_eq!(Value::from(9), Value::Int(9));
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Err.as_int(), None);
        assert!(Value::Err.is_err());
    }
}
