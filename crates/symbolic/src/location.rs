//! Locations that can hold values (and therefore errors and constraints).

use std::fmt;
use sympl_asm::Reg;

/// A storage location in the machine: a register or a memory cell.
///
/// The ConstraintMap (paper §5.2) is keyed by locations — because every
/// erroneous value shares the single `err` symbol, what the analysis learns
/// at a fork is a fact about *the location holding* the error, not about a
/// distinguishable symbolic variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// An architectural register.
    Reg(Reg),
    /// A memory word at an absolute address.
    Mem(u64),
}

impl Location {
    /// Convenience constructor for a register location.
    #[must_use]
    pub fn reg(index: u8) -> Self {
        Location::Reg(Reg::r(index))
    }

    /// Convenience constructor for a memory location.
    #[must_use]
    pub fn mem(addr: u64) -> Self {
        Location::Mem(addr)
    }

    /// Whether this is a register location.
    #[must_use]
    pub fn is_reg(self) -> bool {
        matches!(self, Location::Reg(_))
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Reg(r) => write!(f, "{r}"),
            Location::Mem(a) => write!(f, "mem[{a}]"),
        }
    }
}

impl From<Reg> for Location {
    fn from(value: Reg) -> Self {
        Location::Reg(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        assert_eq!(Location::reg(3).to_string(), "$3");
        assert_eq!(Location::mem(1000).to_string(), "mem[1000]");
        assert!(Location::reg(0).is_reg());
        assert!(!Location::mem(0).is_reg());
        assert_eq!(Location::from(Reg::r(5)), Location::reg(5));
    }

    #[test]
    fn ordering_groups_registers_before_memory() {
        assert!(Location::reg(31) < Location::mem(0));
        assert!(Location::reg(1) < Location::reg(2));
        assert!(Location::mem(1) < Location::mem(2));
    }
}
