//! Per-location constraints and the custom satisfiability solver.
//!
//! The paper's constraint tracking sub-model (§5.2) maps each location
//! containing `err` to a set of constraints like `notGreaterThan(5)
//! notEqualTo(2) greaterThan(0)`. The solver decides whether such a set is
//! satisfiable — if not, the state is a false positive and the search is
//! truncated — and eliminates redundancies in the set.

use std::collections::BTreeSet;
use std::fmt;
use sympl_asm::Cmp;

/// A single constraint on the (unknown) integer behind an `err` symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// The value equals the constant.
    Eq(i64),
    /// `notEqualTo(c)`.
    Ne(i64),
    /// `greaterThan(c)`.
    Gt(i64),
    /// `lesserThan(c)`.
    Lt(i64),
    /// `notLesserThan(c)` (≥).
    Ge(i64),
    /// `notGreaterThan(c)` (≤).
    Le(i64),
}

impl Constraint {
    /// Builds the constraint learned from `value CMP c` being *true*.
    #[must_use]
    pub fn from_cmp(cmp: Cmp, c: i64) -> Self {
        match cmp {
            Cmp::Eq => Constraint::Eq(c),
            Cmp::Ne => Constraint::Ne(c),
            Cmp::Gt => Constraint::Gt(c),
            Cmp::Lt => Constraint::Lt(c),
            Cmp::Ge => Constraint::Ge(c),
            Cmp::Le => Constraint::Le(c),
        }
    }

    /// Whether a concrete integer satisfies the constraint.
    #[must_use]
    pub fn holds(self, v: i64) -> bool {
        match self {
            Constraint::Eq(c) => v == c,
            Constraint::Ne(c) => v != c,
            Constraint::Gt(c) => v > c,
            Constraint::Lt(c) => v < c,
            Constraint::Ge(c) => v >= c,
            Constraint::Le(c) => v <= c,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Eq(c) => write!(f, "equalTo({c})"),
            Constraint::Ne(c) => write!(f, "notEqualTo({c})"),
            Constraint::Gt(c) => write!(f, "greaterThan({c})"),
            Constraint::Lt(c) => write!(f, "lesserThan({c})"),
            Constraint::Ge(c) => write!(f, "notLesserThan({c})"),
            Constraint::Le(c) => write!(f, "notGreaterThan({c})"),
        }
    }
}

/// A canonicalized set of constraints on one location.
///
/// Internally the set is an interval `[lo, hi]` plus a finite exclusion set,
/// which is a normal form for conjunctions of the six constraint shapes:
/// bounds tighten the interval, `Ne` adds exclusions, and exclusions outside
/// the interval are dropped (the redundancy elimination the paper's solver
/// performs).
///
/// ```
/// use sympl_symbolic::{Constraint, ConstraintSet};
///
/// let mut s = ConstraintSet::new();
/// s.add(Constraint::Gt(0));
/// s.add(Constraint::Le(5));
/// s.add(Constraint::Ne(2));
/// assert!(s.is_satisfiable());
/// assert_eq!(s.witness(), Some(1));
/// assert!(!s.allows(2));
/// assert!(s.allows(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConstraintSet {
    lo: i64,
    hi: i64,
    excluded: BTreeSet<i64>,
}

impl ConstraintSet {
    /// The unconstrained set (any integer).
    #[must_use]
    pub fn new() -> Self {
        ConstraintSet {
            lo: i64::MIN,
            hi: i64::MAX,
            excluded: BTreeSet::new(),
        }
    }

    /// Whether no constraint has been recorded yet.
    #[must_use]
    pub fn is_unconstrained(&self) -> bool {
        self.lo == i64::MIN && self.hi == i64::MAX && self.excluded.is_empty()
    }

    /// Adds a constraint, tightening the normal form.
    pub fn add(&mut self, c: Constraint) {
        match c {
            Constraint::Eq(v) => {
                self.lo = self.lo.max(v);
                self.hi = self.hi.min(v);
            }
            Constraint::Ne(v) => {
                self.excluded.insert(v);
            }
            Constraint::Gt(v) => match v.checked_add(1) {
                Some(lo) => self.lo = self.lo.max(lo),
                // Nothing exceeds i64::MAX: force an empty interval.
                None => {
                    self.lo = i64::MAX;
                    self.hi = i64::MIN;
                }
            },
            Constraint::Ge(v) => {
                self.lo = self.lo.max(v);
            }
            Constraint::Lt(v) => match v.checked_sub(1) {
                Some(hi) => self.hi = self.hi.min(hi),
                // Nothing is below i64::MIN.
                None => {
                    self.lo = i64::MAX;
                    self.hi = i64::MIN;
                }
            },
            Constraint::Le(v) => {
                self.hi = self.hi.min(v);
            }
        }
        self.normalize();
    }

    fn normalize(&mut self) {
        let (lo, hi) = (self.lo, self.hi);
        self.excluded.retain(|&v| v >= lo && v <= hi);
        // Shrink bounds past excluded endpoints so `lo`/`hi` stay feasible.
        while self.lo <= self.hi && self.excluded.remove(&self.lo) {
            self.lo = self.lo.saturating_add(1);
        }
        while self.lo <= self.hi && self.excluded.remove(&self.hi) {
            self.hi = self.hi.saturating_sub(1);
        }
    }

    /// Whether some integer satisfies every recorded constraint.
    ///
    /// This is the pruning test of the paper's solver: an unsatisfiable set
    /// marks a false-positive path that the model checker truncates.
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        if self.lo > self.hi {
            return false;
        }
        // After normalization the endpoints are never excluded, so a
        // non-empty interval always contains a feasible point.
        true
    }

    /// Whether a specific concrete value satisfies the set.
    #[must_use]
    pub fn allows(&self, v: i64) -> bool {
        v >= self.lo && v <= self.hi && !self.excluded.contains(&v)
    }

    /// A concrete witness satisfying the set, used to *replay* a symbolic
    /// finding on the concrete simulator (paper §6.2 validated its tcas
    /// finding the same way, via SimpleScalar).
    #[must_use]
    pub fn witness(&self) -> Option<i64> {
        if !self.is_satisfiable() {
            return None;
        }
        debug_assert!(self.allows(self.lo));
        Some(self.lo)
    }

    /// The inclusive lower bound.
    #[must_use]
    pub fn lower(&self) -> i64 {
        self.lo
    }

    /// The inclusive upper bound.
    #[must_use]
    pub fn upper(&self) -> i64 {
        self.hi
    }

    /// The excluded points inside the current interval.
    pub fn exclusions(&self) -> impl Iterator<Item = i64> + '_ {
        self.excluded.iter().copied()
    }
}

impl Default for ConstraintSet {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        let mut s = ConstraintSet::new();
        for c in iter {
            s.add(c);
        }
        s
    }
}

impl Extend<Constraint> for ConstraintSet {
    fn extend<T: IntoIterator<Item = Constraint>>(&mut self, iter: T) {
        for c in iter {
            self.add(c);
        }
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unconstrained() {
            return f.write_str("unconstrained");
        }
        let mut parts = Vec::new();
        if self.lo == self.hi {
            parts.push(format!("equalTo({})", self.lo));
        } else {
            if self.lo != i64::MIN {
                parts.push(format!("notLesserThan({})", self.lo));
            }
            if self.hi != i64::MAX {
                parts.push(format!("notGreaterThan({})", self.hi));
            }
        }
        for v in &self.excluded {
            parts.push(format!("notEqualTo({v})"));
        }
        f.write_str(&parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_set() {
        // "notGreaterThan(5) notEqualTo(2) greaterThan(0)": any integer in
        // (0, 5] except 2 — the paper says "between 0 and 5 excluding 0 and
        // 2 but including 5".
        let s: ConstraintSet = [Constraint::Le(5), Constraint::Ne(2), Constraint::Gt(0)]
            .into_iter()
            .collect();
        assert!(s.is_satisfiable());
        for v in [1, 3, 4, 5] {
            assert!(s.allows(v), "{v} should satisfy the paper's example set");
        }
        for v in [0, 2, 6, -1] {
            assert!(!s.allows(v), "{v} should be rejected");
        }
    }

    #[test]
    fn contradictory_bounds_unsat() {
        let s: ConstraintSet = [Constraint::Gt(5), Constraint::Lt(5)].into_iter().collect();
        assert!(!s.is_satisfiable());
        assert_eq!(s.witness(), None);
    }

    #[test]
    fn eq_then_ne_same_value_unsat() {
        let s: ConstraintSet = [Constraint::Eq(3), Constraint::Ne(3)].into_iter().collect();
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn exclusions_can_exhaust_finite_interval() {
        let s: ConstraintSet = [
            Constraint::Ge(1),
            Constraint::Le(3),
            Constraint::Ne(1),
            Constraint::Ne(2),
            Constraint::Ne(3),
        ]
        .into_iter()
        .collect();
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn witness_is_always_feasible() {
        let s: ConstraintSet = [Constraint::Ge(10), Constraint::Ne(10), Constraint::Ne(11)]
            .into_iter()
            .collect();
        let w = s.witness().unwrap();
        assert_eq!(w, 12);
        assert!(s.allows(w));
    }

    #[test]
    fn redundant_exclusions_are_dropped() {
        let mut s = ConstraintSet::new();
        s.add(Constraint::Ne(100));
        s.add(Constraint::Le(5));
        assert_eq!(s.exclusions().count(), 0, "exclusion above hi dropped");
    }

    #[test]
    fn adjacent_exclusions_shrink_bounds_transitively() {
        let mut s = ConstraintSet::new();
        s.add(Constraint::Ge(0));
        s.add(Constraint::Ne(1));
        s.add(Constraint::Ne(0));
        // lo moved past both excluded endpoints.
        assert_eq!(s.witness(), Some(2));
    }

    #[test]
    fn saturating_bounds_at_extremes() {
        let mut s = ConstraintSet::new();
        s.add(Constraint::Gt(i64::MAX));
        assert!(!s.is_satisfiable(), "nothing is > i64::MAX");
        let mut t = ConstraintSet::new();
        t.add(Constraint::Lt(i64::MIN));
        assert!(!t.is_satisfiable());
    }

    #[test]
    fn equality_pins_interval() {
        let mut s = ConstraintSet::new();
        s.add(Constraint::Eq(42));
        assert_eq!(s.lower(), 42);
        assert_eq!(s.upper(), 42);
        assert_eq!(s.witness(), Some(42));
        s.add(Constraint::Ge(43));
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn display_round_trips_semantics() {
        assert_eq!(ConstraintSet::new().to_string(), "unconstrained");
        let s: ConstraintSet = [Constraint::Gt(0), Constraint::Le(5), Constraint::Ne(2)]
            .into_iter()
            .collect();
        let text = s.to_string();
        assert!(text.contains("notLesserThan(1)"), "{text}");
        assert!(text.contains("notGreaterThan(5)"), "{text}");
        assert!(text.contains("notEqualTo(2)"), "{text}");
    }

    #[test]
    fn from_cmp_matches_predicate_semantics() {
        for (cmp, c) in [
            (Cmp::Eq, 3),
            (Cmp::Ne, 3),
            (Cmp::Gt, 3),
            (Cmp::Lt, 3),
            (Cmp::Ge, 3),
            (Cmp::Le, 3),
        ] {
            let constraint = Constraint::from_cmp(cmp, c);
            for v in -5..=5 {
                assert_eq!(
                    constraint.holds(v),
                    cmp.eval(v, c),
                    "{constraint} vs {cmp} at {v}"
                );
            }
        }
    }
}
