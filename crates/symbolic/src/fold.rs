//! Deterministic 128-bit hashing and incremental XOR-folds.
//!
//! These are the primitives behind the machine crate's rolling state
//! fingerprints (see `sympl-machine`'s `fingerprint` module for the full
//! scheme). They live here, below the machine state, because the
//! [`crate::ConstraintMap`] — a component of that state — maintains its own
//! incremental set-hash with them: the map's mutators are the only places
//! that know which `(location, constraint set)` cell an operation touches,
//! exactly as its unsatisfiable-location counter is maintained where the
//! sets change.

use std::hash::{Hash, Hasher};

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// FNV-1a accumulator exposing a 128-bit digest through the standard
/// [`Hasher`] interface (so any `Hash` impl can feed it).
#[derive(Debug, Clone)]
pub struct Fnv128Hasher {
    state: u128,
}

impl Fnv128Hasher {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv128Hasher {
            state: FNV128_OFFSET,
        }
    }

    /// The full 128-bit digest.
    #[must_use]
    pub fn finish128(&self) -> u128 {
        self.state
    }

    /// One FNV-1a round over a whole word. The fixed-width [`Hasher`]
    /// methods below route here, absorbing an integer in a single
    /// xor-multiply instead of one round per byte — the state fingerprint
    /// and rolling-fold paths hash almost exclusively through those
    /// methods, and this is what keeps a per-successor digest to a handful
    /// of 128-bit multiplies. The round is a bijection on the state (odd
    /// prime, invertible xor), so word-at-a-time absorption loses no
    /// distinctness over the byte loop.
    #[inline]
    fn round(&mut self, word: u128) {
        self.state ^= word;
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }
}

impl Default for Fnv128Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv128Hasher {
    fn write(&mut self, bytes: &[u8]) {
        // Raw byte streams (strings, mixed-width encodings) keep the
        // canonical per-byte FNV-1a rounds.
        for &b in bytes {
            self.round(u128::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.round(u128::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.round(u128::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.round(u128::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.round(u128::from(i));
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.round(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.round(i as u128);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.round(u128::from(i as u8));
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.round(u128::from(i as u16));
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.round(u128::from(i as u32));
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.round(u128::from(i as u64));
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.round(i as u128);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.round(i as u128);
    }

    fn finish(&self) -> u64 {
        self.state as u64
    }
}

/// The 128-bit hash of one `(key, value)` cell of a collection-valued state
/// component: FNV-128 of the pair's canonical [`Hash`] byte stream.
///
/// Deterministic with no random Zobrist table: the key domain is unbounded
/// (64-bit addresses, arbitrary constraint sets) and the pair encoding
/// already makes distinct cells hash independently, which is all the XOR
/// fold needs.
#[must_use]
pub fn cell_hash<K: Hash + ?Sized, V: Hash + ?Sized>(key: &K, value: &V) -> u128 {
    let mut h = Fnv128Hasher::new();
    key.hash(&mut h);
    value.hash(&mut h);
    h.finish128()
}

/// An incrementally-maintained XOR-fold over a component's `(key, value)`
/// cells — the rolling half of a state fingerprint.
///
/// The fold is order-independent and self-inverse, so the owner updates it
/// in O(1) per write: [`remove`](Self::remove) the old cell (if the key was
/// defined), [`insert`](Self::insert) the new one. Because XOR cancels
/// pairs, the invariant the owner must uphold is *multiset symmetry*: every
/// cell currently in the collection has been inserted exactly once more
/// than removed. The digest-consistency property tests pin this against a
/// from-scratch [`refold`](Self::refold) after arbitrary mutation
/// sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ZobristComponent(u128);

impl ZobristComponent {
    /// The fold of an empty component.
    #[must_use]
    pub const fn new() -> Self {
        ZobristComponent(0)
    }

    /// XORs a cell into the fold (a key becoming defined with `value`).
    pub fn insert<K: Hash + ?Sized, V: Hash + ?Sized>(&mut self, key: &K, value: &V) {
        self.0 ^= cell_hash(key, value);
    }

    /// XORs a cell out of the fold (a key's old binding being dropped).
    /// XOR is self-inverse, so this is `insert`'s exact mirror; the
    /// distinct name documents which side of an overwrite a call site is.
    pub fn remove<K: Hash + ?Sized, V: Hash + ?Sized>(&mut self, key: &K, value: &V) {
        self.0 ^= cell_hash(key, value);
    }

    /// Replaces a key's binding: removes the old cell, inserts the new.
    pub fn update<K: Hash + ?Sized, V: Hash + ?Sized>(&mut self, key: &K, old: &V, new: &V) {
        self.remove(key, old);
        self.insert(key, new);
    }

    /// The current 128-bit fold.
    #[must_use]
    pub const fn value(self) -> u128 {
        self.0
    }

    /// A from-scratch fold of an entry iterator — the reference the rolling
    /// fold must equal at all times. O(|component|); used by the consistency
    /// property tests and the `fingerprint_from_scratch` reference path,
    /// never by the engines' hot paths.
    #[must_use]
    pub fn refold<K: Hash, V: Hash, I: IntoIterator<Item = (K, V)>>(entries: I) -> Self {
        let mut fold = ZobristComponent::new();
        for (k, v) in entries {
            fold.insert(&k, &v);
        }
        fold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_order_independent_and_self_inverse() {
        let mut ab = ZobristComponent::new();
        ab.insert(&1u64, &10i64);
        ab.insert(&2u64, &20i64);
        let mut ba = ZobristComponent::new();
        ba.insert(&2u64, &20i64);
        ba.insert(&1u64, &10i64);
        assert_eq!(ab, ba, "XOR fold must not observe insertion order");

        // Overwrite = remove old + insert new; removing everything returns
        // to the empty fold.
        ab.update(&1u64, &10i64, &11i64);
        assert_ne!(ab, ba);
        ab.update(&1u64, &11i64, &10i64);
        assert_eq!(ab, ba);
        ab.remove(&1u64, &10i64);
        ab.remove(&2u64, &20i64);
        assert_eq!(ab, ZobristComponent::new());
    }

    #[test]
    fn refold_matches_incremental_construction() {
        let entries: Vec<(u64, i64)> = (0..50).map(|i| (i, i as i64 * 3 - 7)).collect();
        let mut rolling = ZobristComponent::new();
        for &(k, v) in &entries {
            rolling.insert(&k, &v);
        }
        assert_eq!(rolling, ZobristComponent::refold(entries));
    }

    #[test]
    fn distinct_cells_hash_distinctly() {
        // Key/value boundary confusion would make (1, 2) and (2, 1)-style
        // cells collide; spot-check a grid.
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..100 {
            for v in -5i64..5 {
                assert!(seen.insert(cell_hash(&k, &v)), "collision at ({k},{v})");
            }
        }
    }

    #[test]
    fn fnv128_is_deterministic() {
        let mut a = Fnv128Hasher::new();
        let mut b = Fnv128Hasher::new();
        "some state bytes".hash(&mut a);
        "some state bytes".hash(&mut b);
        assert_eq!(a.finish128(), b.finish128());
        assert_eq!(a.finish(), b.finish());
    }
}
