//! Non-deterministic comparison semantics (paper §5.2, "Comparison Handling
//! Sub-Model").
//!
//! Comparison operators with `err` operands evaluate to *both* true and
//! false — the execution forks. Each fork case carries what the path learned:
//! a [`Constraint`] on the location holding the error, or (for equalities
//! that become true) a substitution pinning the location to the concrete
//! comparand, mirroring the paper's "the location being compared can be
//! updated with the value it is being compared to".

use sympl_asm::Cmp;

use crate::{Constraint, Location, Value};

/// One case of a (possibly forked) comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmpCase {
    /// The boolean outcome this case assumes.
    pub result: bool,
    /// A constraint to record on a location, if the case teaches one.
    pub constraint: Option<(Location, Constraint)>,
    /// A substitution `location := value` (equality learning).
    pub substitute: Option<(Location, i64)>,
}

impl CmpCase {
    fn concrete(result: bool) -> Self {
        CmpCase {
            result,
            constraint: None,
            substitute: None,
        }
    }
}

/// The cases of one (possibly forked) comparison: at most two, stored
/// inline.
///
/// A comparison forks at most two ways, so the cases live in a fixed
/// two-slot array rather than a heap `Vec` — [`fork_compare`] sits on the
/// engines' hottest fork path, where a per-comparison allocation is pure
/// overhead. Derefs to a `[CmpCase]` slice, so callers index, iterate, and
/// take `len()` as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmpCases {
    cases: [CmpCase; 2],
    len: usize,
}

impl CmpCases {
    fn one(case: CmpCase) -> Self {
        CmpCases {
            cases: [case, case],
            len: 1,
        }
    }

    fn two(true_case: CmpCase, false_case: CmpCase) -> Self {
        CmpCases {
            cases: [true_case, false_case],
            len: 2,
        }
    }
}

impl std::ops::Deref for CmpCases {
    type Target = [CmpCase];

    fn deref(&self) -> &[CmpCase] {
        &self.cases[..self.len]
    }
}

/// Evaluates `lhs CMP rhs` over the symbolic domain.
///
/// `lloc`/`rloc` are the locations the operands were read from, when known;
/// they are where learned constraints attach. Returns one case (concrete
/// operands or an already-decidable symbolic case) or two (a genuine fork).
///
/// Decidability refinement: when the `err` operand's location already has a
/// recorded constraint set that decides the comparison, callers should first
/// consult it (see `ConstraintMap`); this function performs the *structural*
/// fork only. Subsequent re-comparisons stay consistent because the learned
/// constraint makes one branch unsatisfiable and the solver prunes it.
///
/// ```
/// use sympl_asm::Cmp;
/// use sympl_symbolic::{fork_compare, Location, Value};
///
/// // Concrete: one case.
/// let cases = fork_compare(Cmp::Gt, Value::Int(3), None, Value::Int(2), None);
/// assert_eq!(cases.len(), 1);
/// assert!(cases[0].result);
///
/// // err > 1 with the err in $3: forks into true ($3 > 1) and false ($3 <= 1).
/// let cases = fork_compare(
///     Cmp::Gt,
///     Value::Err,
///     Some(Location::reg(3)),
///     Value::Int(1),
///     None,
/// );
/// assert_eq!(cases.len(), 2);
/// ```
#[must_use]
pub fn fork_compare(
    cmp: Cmp,
    lhs: Value,
    lloc: Option<Location>,
    rhs: Value,
    rloc: Option<Location>,
) -> CmpCases {
    match (lhs, rhs) {
        (Value::Int(a), Value::Int(b)) => CmpCases::one(CmpCase::concrete(cmp.eval(a, b))),
        (Value::Err, Value::Int(c)) => fork_one_sided(cmp, lloc, c),
        (Value::Int(c), Value::Err) => fork_one_sided(cmp.swap(), rloc, c),
        (Value::Err, Value::Err) => {
            // Two unknowns share the single `err` symbol; no relational
            // constraint is expressible (paper §3.2's stated source of
            // false positives). Fork with no learned facts.
            CmpCases::two(CmpCase::concrete(true), CmpCase::concrete(false))
        }
    }
}

/// Forks `err CMP c` where the error sits in `loc` (if known).
fn fork_one_sided(cmp: Cmp, loc: Option<Location>, c: i64) -> CmpCases {
    let true_case = match (cmp, loc) {
        // Equality true: pin the location to the comparand.
        (Cmp::Eq, Some(l)) => CmpCase {
            result: true,
            constraint: None,
            substitute: Some((l, c)),
        },
        (_, Some(l)) => CmpCase {
            result: true,
            constraint: Some((l, Constraint::from_cmp(cmp, c))),
            substitute: None,
        },
        (_, None) => CmpCase::concrete(true),
    };
    let neg = cmp.negate();
    let false_case = match (neg, loc) {
        // `Ne` false means the location equals the comparand.
        (Cmp::Eq, Some(l)) => CmpCase {
            result: false,
            constraint: None,
            substitute: Some((l, c)),
        },
        (_, Some(l)) => CmpCase {
            result: false,
            constraint: Some((l, Constraint::from_cmp(neg, c))),
            substitute: None,
        },
        (_, None) => CmpCase::concrete(false),
    };
    CmpCases::two(true_case, false_case)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l3() -> Location {
        Location::reg(3)
    }

    #[test]
    fn concrete_comparisons_do_not_fork() {
        for cmp in [Cmp::Eq, Cmp::Ne, Cmp::Gt, Cmp::Lt, Cmp::Ge, Cmp::Le] {
            let cases = fork_compare(cmp, Value::Int(4), None, Value::Int(4), None);
            assert_eq!(cases.len(), 1);
            assert_eq!(cases[0].result, cmp.eval(4, 4));
            assert!(cases[0].constraint.is_none() && cases[0].substitute.is_none());
        }
    }

    #[test]
    fn err_gt_constant_learns_interval_bounds() {
        let cases = fork_compare(Cmp::Gt, Value::Err, Some(l3()), Value::Int(1), None);
        assert_eq!(cases.len(), 2);
        let t = &cases[0];
        assert!(t.result);
        assert_eq!(t.constraint, Some((l3(), Constraint::Gt(1))));
        let f = &cases[1];
        assert!(!f.result);
        assert_eq!(f.constraint, Some((l3(), Constraint::Le(1))));
    }

    #[test]
    fn equality_true_substitutes() {
        let cases = fork_compare(Cmp::Eq, Value::Err, Some(l3()), Value::Int(9), None);
        let t = &cases[0];
        assert!(t.result);
        assert_eq!(t.substitute, Some((l3(), 9)));
        assert!(t.constraint.is_none());
        let f = &cases[1];
        assert!(!f.result);
        assert_eq!(f.constraint, Some((l3(), Constraint::Ne(9))));
    }

    #[test]
    fn inequality_false_substitutes() {
        let cases = fork_compare(Cmp::Ne, Value::Err, Some(l3()), Value::Int(9), None);
        let t = &cases[0];
        assert!(t.result);
        assert_eq!(t.constraint, Some((l3(), Constraint::Ne(9))));
        let f = &cases[1];
        assert!(!f.result);
        assert_eq!(f.substitute, Some((l3(), 9)));
    }

    #[test]
    fn err_on_right_swaps_the_predicate() {
        // 5 < err  ≡  err > 5
        let cases = fork_compare(Cmp::Lt, Value::Int(5), None, Value::Err, Some(l3()));
        assert_eq!(cases[0].constraint, Some((l3(), Constraint::Gt(5))));
        assert_eq!(cases[1].constraint, Some((l3(), Constraint::Le(5))));
    }

    #[test]
    fn err_vs_err_forks_without_constraints() {
        let cases = fork_compare(
            Cmp::Eq,
            Value::Err,
            Some(l3()),
            Value::Err,
            Some(Location::reg(4)),
        );
        assert_eq!(cases.len(), 2);
        for c in cases.iter() {
            assert!(c.constraint.is_none());
            assert!(c.substitute.is_none());
        }
        assert_ne!(cases[0].result, cases[1].result);
    }

    #[test]
    fn unknown_location_forks_without_constraints() {
        let cases = fork_compare(Cmp::Ge, Value::Err, None, Value::Int(0), None);
        assert_eq!(cases.len(), 2);
        assert!(cases.iter().all(|c| c.constraint.is_none()));
    }

    #[test]
    fn learned_constraints_partition_the_integers() {
        // Soundness: for every predicate, the true-constraint and the
        // false-constraint must cover all integers and be disjoint.
        for cmp in [Cmp::Gt, Cmp::Lt, Cmp::Ge, Cmp::Le, Cmp::Eq, Cmp::Ne] {
            let cases = fork_compare(cmp, Value::Err, Some(l3()), Value::Int(2), None);
            for v in -5..=5 {
                let holds_true = case_admits(&cases[0], v);
                let holds_false = case_admits(&cases[1], v);
                assert!(
                    holds_true ^ holds_false,
                    "{cmp}: value {v} must satisfy exactly one branch"
                );
                // The admitted branch's boolean must equal the concrete
                // comparison outcome.
                let expected = cmp.eval(v, 2);
                let admitted = if holds_true { &cases[0] } else { &cases[1] };
                assert_eq!(admitted.result, expected);
            }
        }
    }

    fn case_admits(case: &CmpCase, v: i64) -> bool {
        if let Some((_, c)) = case.constraint {
            return c.holds(v);
        }
        if let Some((_, s)) = case.substitute {
            return v == s;
        }
        true
    }
}
