//! Instruction set of the generic assembly language.

use std::fmt;
use std::sync::Arc;

use crate::Reg;

/// A comparison predicate used by set-compare and branch instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cmp {
    /// Equal (`==`).
    Eq,
    /// Not equal (`=/=`).
    Ne,
    /// Strictly greater than (`>`).
    Gt,
    /// Strictly less than (`<`).
    Lt,
    /// Greater than or equal (`>=`).
    Ge,
    /// Less than or equal (`<=`).
    Le,
}

impl Cmp {
    /// Evaluates the predicate on two concrete integers.
    ///
    /// ```
    /// use sympl_asm::Cmp;
    /// assert!(Cmp::Gt.eval(3, 2));
    /// assert!(!Cmp::Le.eval(3, 2));
    /// ```
    #[must_use]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Le => lhs <= rhs,
        }
    }

    /// The logical negation of this predicate (`>` becomes `<=`, etc.).
    #[must_use]
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Gt => Cmp::Le,
            Cmp::Lt => Cmp::Ge,
            Cmp::Ge => Cmp::Lt,
            Cmp::Le => Cmp::Gt,
        }
    }

    /// The predicate with its operands swapped (`a > b` becomes `b < a`).
    #[must_use]
    pub fn swap(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Gt => Cmp::Lt,
            Cmp::Lt => Cmp::Gt,
            Cmp::Ge => Cmp::Le,
            Cmp::Le => Cmp::Ge,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Eq => "==",
            Cmp::Ne => "=/=",
            Cmp::Gt => ">",
            Cmp::Lt => "<",
            Cmp::Ge => ">=",
            Cmp::Le => "<=",
        };
        f.write_str(s)
    }
}

/// A source operand: either a register or an immediate integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value read from a register.
    Reg(Reg),
    /// An immediate constant.
    Imm(i64),
}

impl Operand {
    /// The register named by this operand, if any.
    #[must_use]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(value: Reg) -> Self {
        Operand::Reg(value)
    }
}

impl From<i64> for Operand {
    fn from(value: i64) -> Self {
        Operand::Imm(value)
    }
}

/// A binary arithmetic/logic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Integer division (traps on division by zero).
    Div,
    /// Remainder (traps on division by zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (shift amount masked to 0..64).
    Sll,
    /// Logical shift right (shift amount masked to 0..64).
    Srl,
}

impl BinOp {
    /// Whether this operation can raise a divide-by-zero exception.
    #[must_use]
    pub fn is_division(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }

    /// Applies the operation to concrete integers.
    ///
    /// Division by zero returns `None`; the machine model converts that into
    /// a `div-zero` exception (paper §5.2).
    #[must_use]
    pub fn apply(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Sll => a.wrapping_shl((b & 63) as u32),
            BinOp::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mult",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Sll => "sll",
            BinOp::Srl => "srl",
        };
        f.write_str(s)
    }
}

/// One instruction of the generic assembly language.
///
/// Code addresses (`target` fields) are *resolved instruction indices* into
/// the owning [`crate::Program`]; the parser resolves textual labels during
/// assembly. Instructions are immutable once a program is built (paper §5.1:
/// "program instructions are assumed to be immutable").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd <- rs OP operand` — arithmetic or logic.
    Bin {
        /// Operation to perform.
        op: BinOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source operand (register or immediate).
        src: Operand,
    },
    /// `rd <- operand` — register move or load-immediate.
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `rd <- (rs CMP operand) ? 1 : 0` — set-compare (e.g. `setgt`).
    Set {
        /// Comparison predicate.
        cmp: Cmp,
        /// Destination register.
        rd: Reg,
        /// First comparand register.
        rs: Reg,
        /// Second comparand.
        src: Operand,
    },
    /// `if (rs CMP operand) goto target` — conditional branch.
    Branch {
        /// Comparison predicate.
        cmp: Cmp,
        /// Register compared.
        rs: Reg,
        /// Comparand.
        src: Operand,
        /// Resolved branch target (instruction index).
        target: usize,
    },
    /// Unconditional jump to a code address.
    Jmp {
        /// Resolved target (instruction index).
        target: usize,
    },
    /// Jump-and-link: `$31 <- pc + 1; goto target`. Used for calls.
    Jal {
        /// Resolved target (instruction index).
        target: usize,
    },
    /// Jump to the code address held in a register. Used for returns; a
    /// corrupted operand makes the control transfer non-deterministic
    /// (paper §5.2, "errors in jump or branch targets").
    Jr {
        /// Register holding the target code address.
        rs: Reg,
    },
    /// `rt <- mem[rs + offset]` — load (paper's `ldi rt, rs, a`).
    Load {
        /// Destination register.
        rt: Reg,
        /// Base address register.
        rs: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// `mem[rs + offset] <- rt` — store.
    Store {
        /// Source register.
        rt: Reg,
        /// Base address register.
        rs: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// `rd <- next value from the input stream` (native I/O, paper §3.1).
    Read {
        /// Destination register.
        rd: Reg,
    },
    /// Appends the value of `rs` to the output stream.
    Print {
        /// Register whose value is printed.
        rs: Reg,
    },
    /// Appends a string literal to the output stream.
    PrintS {
        /// The literal text.
        text: Arc<str>,
    },
    /// Invokes the error detector with the given identifier (the paper's
    /// `CHECK` annotation, §3.1/§5.3).
    Check {
        /// Detector identifier, resolved against the program's detector set.
        id: u32,
    },
    /// No operation.
    Nop,
    /// Terminates the program normally.
    Halt,
}

impl Instr {
    /// Registers *read* by this instruction (source registers).
    ///
    /// This drives the paper's §6.2 optimization: errors are injected only
    /// into registers actually used by an instruction, just before the
    /// instruction executes, which guarantees fault activation.
    #[must_use]
    pub fn source_regs(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(2);
        let mut push = |r: Reg| {
            if !out.contains(&r) {
                out.push(r);
            }
        };
        match self {
            Instr::Bin { rs, src, .. } | Instr::Set { rs, src, .. } => {
                push(*rs);
                if let Operand::Reg(r) = src {
                    push(*r);
                }
            }
            Instr::Mov { src, .. } => {
                if let Operand::Reg(r) = src {
                    push(*r);
                }
            }
            Instr::Branch { rs, src, .. } => {
                push(*rs);
                if let Operand::Reg(r) = src {
                    push(*r);
                }
            }
            Instr::Jr { rs } => push(*rs),
            Instr::Load { rs, .. } => push(*rs),
            Instr::Store { rt, rs, .. } => {
                push(*rt);
                push(*rs);
            }
            Instr::Print { rs } => push(*rs),
            Instr::Jmp { .. }
            | Instr::Jal { .. }
            | Instr::Read { .. }
            | Instr::PrintS { .. }
            | Instr::Check { .. }
            | Instr::Nop
            | Instr::Halt => {}
        }
        out
    }

    /// The register *written* by this instruction, if any.
    #[must_use]
    pub fn dest_reg(&self) -> Option<Reg> {
        match self {
            Instr::Bin { rd, .. } | Instr::Mov { rd, .. } | Instr::Set { rd, .. } => Some(*rd),
            Instr::Load { rt, .. } => Some(*rt),
            Instr::Read { rd } => Some(*rd),
            Instr::Jal { .. } => Some(crate::LINK_REG),
            _ => None,
        }
    }

    /// Whether the instruction has an explicit destination (register or
    /// memory). Used by the Table-1 decode-error model, which distinguishes
    /// "instructions writing to a destination" from no-target instructions.
    #[must_use]
    pub fn has_target(&self) -> bool {
        self.dest_reg().is_some() || matches!(self, Instr::Store { .. })
    }

    /// The static branch/jump target, if this is a direct control transfer.
    #[must_use]
    pub fn static_target(&self) -> Option<usize> {
        match self {
            Instr::Branch { target, .. } | Instr::Jmp { target } | Instr::Jal { target } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// Whether this instruction may transfer control somewhere other than
    /// the next instruction.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jmp { .. } | Instr::Jal { .. } | Instr::Jr { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Bin { op, rd, rs, src } => write!(f, "{op} {rd}, {rs}, {src}"),
            Instr::Mov { rd, src } => write!(f, "mov {rd}, {src}"),
            Instr::Set { cmp, rd, rs, src } => {
                let name = match cmp {
                    Cmp::Eq => "seteq",
                    Cmp::Ne => "setne",
                    Cmp::Gt => "setgt",
                    Cmp::Lt => "setlt",
                    Cmp::Ge => "setge",
                    Cmp::Le => "setle",
                };
                write!(f, "{name} {rd}, {rs}, {src}")
            }
            Instr::Branch {
                cmp,
                rs,
                src,
                target,
            } => {
                let name = match cmp {
                    Cmp::Eq => "beq",
                    Cmp::Ne => "bne",
                    Cmp::Gt => "bgt",
                    Cmp::Lt => "blt",
                    Cmp::Ge => "bge",
                    Cmp::Le => "ble",
                };
                write!(f, "{name} {rs}, {src}, @{target}")
            }
            Instr::Jmp { target } => write!(f, "jmp @{target}"),
            Instr::Jal { target } => write!(f, "jal @{target}"),
            Instr::Jr { rs } => write!(f, "jr {rs}"),
            Instr::Load { rt, rs, offset } => write!(f, "ld {rt}, {offset}({rs})"),
            Instr::Store { rt, rs, offset } => write!(f, "st {rt}, {offset}({rs})"),
            Instr::Read { rd } => write!(f, "read {rd}"),
            Instr::Print { rs } => write!(f, "print {rs}"),
            Instr::PrintS { text } => write!(f, "prints {text:?}"),
            Instr::Check { id } => write!(f, "check {id}"),
            Instr::Nop => f.write_str("nop"),
            Instr::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn cmp_eval_covers_all_predicates() {
        assert!(Cmp::Eq.eval(2, 2) && !Cmp::Eq.eval(2, 3));
        assert!(Cmp::Ne.eval(2, 3) && !Cmp::Ne.eval(2, 2));
        assert!(Cmp::Gt.eval(3, 2) && !Cmp::Gt.eval(2, 2));
        assert!(Cmp::Lt.eval(1, 2) && !Cmp::Lt.eval(2, 2));
        assert!(Cmp::Ge.eval(2, 2) && !Cmp::Ge.eval(1, 2));
        assert!(Cmp::Le.eval(2, 2) && !Cmp::Le.eval(3, 2));
    }

    #[test]
    fn cmp_negation_is_logical_complement() {
        for cmp in [Cmp::Eq, Cmp::Ne, Cmp::Gt, Cmp::Lt, Cmp::Ge, Cmp::Le] {
            for a in -3..=3 {
                for b in -3..=3 {
                    assert_eq!(
                        cmp.eval(a, b),
                        !cmp.negate().eval(a, b),
                        "{cmp} vs negation on ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn cmp_swap_mirrors_operands() {
        for cmp in [Cmp::Eq, Cmp::Ne, Cmp::Gt, Cmp::Lt, Cmp::Ge, Cmp::Le] {
            for a in -3..=3 {
                for b in -3..=3 {
                    assert_eq!(cmp.eval(a, b), cmp.swap().eval(b, a));
                }
            }
        }
    }

    #[test]
    fn binop_division_by_zero_is_none() {
        assert_eq!(BinOp::Div.apply(5, 0), None);
        assert_eq!(BinOp::Rem.apply(5, 0), None);
        assert_eq!(BinOp::Div.apply(7, 2), Some(3));
        assert_eq!(BinOp::Rem.apply(7, 2), Some(1));
    }

    #[test]
    fn binop_wrapping_behaviour() {
        assert_eq!(BinOp::Add.apply(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(BinOp::Mul.apply(i64::MAX, 2), Some(-2));
        // Wrapping division edge case: i64::MIN / -1 wraps rather than traps.
        assert_eq!(BinOp::Div.apply(i64::MIN, -1), Some(i64::MIN));
    }

    #[test]
    fn binop_shifts_mask_amount() {
        assert_eq!(BinOp::Sll.apply(1, 3), Some(8));
        assert_eq!(BinOp::Srl.apply(-1, 63), Some(1));
        assert_eq!(BinOp::Sll.apply(1, 64), Some(1), "shift of 64 masks to 0");
    }

    #[test]
    fn source_and_dest_registers() {
        let i = Instr::Bin {
            op: BinOp::Add,
            rd: Reg::r(1),
            rs: Reg::r(2),
            src: Operand::Reg(Reg::r(3)),
        };
        assert_eq!(i.source_regs(), vec![Reg::r(2), Reg::r(3)]);
        assert_eq!(i.dest_reg(), Some(Reg::r(1)));
        assert!(i.has_target());

        let st = Instr::Store {
            rt: Reg::r(4),
            rs: Reg::r(5),
            offset: 8,
        };
        assert_eq!(st.source_regs(), vec![Reg::r(4), Reg::r(5)]);
        assert_eq!(st.dest_reg(), None);
        assert!(st.has_target(), "stores write memory");

        assert!(!Instr::Nop.has_target());
        assert_eq!(Instr::Jal { target: 3 }.dest_reg(), Some(crate::LINK_REG));
    }

    #[test]
    fn source_regs_deduplicates() {
        let i = Instr::Bin {
            op: BinOp::Mul,
            rd: Reg::r(2),
            rs: Reg::r(2),
            src: Operand::Reg(Reg::r(2)),
        };
        assert_eq!(i.source_regs(), vec![Reg::r(2)]);
    }

    #[test]
    fn control_classification() {
        assert!(Instr::Jr { rs: Reg::r(31) }.is_control());
        assert!(Instr::Jmp { target: 0 }.is_control());
        assert!(!Instr::Nop.is_control());
        assert_eq!(Instr::Jmp { target: 7 }.static_target(), Some(7));
        assert_eq!(Instr::Jr { rs: Reg::r(31) }.static_target(), None);
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let instrs = vec![
            Instr::Bin {
                op: BinOp::Add,
                rd: Reg::r(1),
                rs: Reg::r(2),
                src: Operand::Imm(3),
            },
            Instr::Mov {
                rd: Reg::r(1),
                src: Operand::Imm(9),
            },
            Instr::Set {
                cmp: Cmp::Gt,
                rd: Reg::r(5),
                rs: Reg::r(3),
                src: Operand::Reg(Reg::r(4)),
            },
            Instr::Branch {
                cmp: Cmp::Eq,
                rs: Reg::r(5),
                src: Operand::Imm(0),
                target: 9,
            },
            Instr::Jmp { target: 1 },
            Instr::Jal { target: 2 },
            Instr::Jr { rs: Reg::r(31) },
            Instr::Load {
                rt: Reg::r(1),
                rs: Reg::r(2),
                offset: 4,
            },
            Instr::Store {
                rt: Reg::r(1),
                rs: Reg::r(2),
                offset: -4,
            },
            Instr::Read { rd: Reg::r(1) },
            Instr::Print { rs: Reg::r(2) },
            Instr::PrintS { text: "hi".into() },
            Instr::Check { id: 4 },
            Instr::Nop,
            Instr::Halt,
        ];
        for i in instrs {
            assert!(!i.to_string().is_empty());
        }
    }
}
