//! Program transformations: inserting instructions while preserving
//! control flow.
//!
//! The detector-placement workflow (paper §4.2: "the programmer can then
//! formulate a detector to handle the case…") needs to *add* `check`
//! instructions to an existing program. Inserting shifts every subsequent
//! address, so all static branch/jump targets and the label table must be
//! remapped; `jal`/`jr` return addresses are computed from the (new) PC at
//! run time and need no fixing.

use std::collections::BTreeMap;

use crate::{AsmError, Instr, Program};

/// Inserts instructions *before* given addresses, remapping all control
/// flow. `insertions` maps an original address to the instructions to
/// place immediately before it; original relative order is preserved.
///
/// # Errors
///
/// Returns [`AsmError::TargetOutOfRange`] if an insertion address lies
/// outside the program.
///
/// ```
/// use sympl_asm::{insert_before, parse_program, Instr};
///
/// let p = parse_program("mov $1, 7\nprint $1\nhalt")?;
/// let p2 = insert_before(&p, &[(1, vec![Instr::Check { id: 1 }])])?;
/// assert_eq!(p2.len(), 4);
/// assert!(matches!(p2.fetch(1), Some(Instr::Check { id: 1 })));
/// # Ok::<(), sympl_asm::AsmError>(())
/// ```
pub fn insert_before(
    program: &Program,
    insertions: &[(usize, Vec<Instr>)],
) -> Result<Program, AsmError> {
    let len = program.len();
    let mut by_addr: BTreeMap<usize, Vec<Instr>> = BTreeMap::new();
    for (addr, instrs) in insertions {
        if *addr > len {
            return Err(AsmError::TargetOutOfRange {
                at: *addr,
                target: *addr,
                len,
            });
        }
        by_addr
            .entry(*addr)
            .or_default()
            .extend(instrs.iter().cloned());
    }

    // New address of each original instruction: original + instructions
    // inserted at or before it.
    let mut shift = vec![0usize; len + 1];
    let mut acc = 0usize;
    for (i, entry) in shift.iter_mut().enumerate() {
        if let Some(ins) = by_addr.get(&i) {
            acc += ins.len();
        }
        *entry = i + acc;
    }
    let remap = |target: usize| -> usize {
        // A branch to address t must land on the (possibly shifted) t,
        // *after* anything inserted before t — i.e. at shift[t] minus the
        // insertions at t itself... but inserted checks guard the original
        // instruction, so control arriving at t should run them too:
        // remap to the first inserted instruction at t.
        shift[target] - by_addr.get(&target).map_or(0, Vec::len)
    };

    let mut instrs: Vec<Instr> = Vec::with_capacity(len + acc);
    for (i, instr) in program.instrs().iter().enumerate() {
        if let Some(ins) = by_addr.get(&i) {
            instrs.extend(ins.iter().cloned());
        }
        let mut instr = instr.clone();
        match &mut instr {
            Instr::Branch { target, .. } | Instr::Jmp { target } | Instr::Jal { target } => {
                *target = remap(*target);
            }
            _ => {}
        }
        instrs.push(instr);
    }
    // Trailing insertions (at == len).
    if let Some(ins) = by_addr.get(&len) {
        instrs.extend(ins.iter().cloned());
    }

    let labels: BTreeMap<String, usize> = program
        .labels()
        .map(|(name, addr)| (name.to_owned(), remap(addr)))
        .collect();
    Program::new(instrs, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn insertion_shifts_later_targets() {
        let p = parse_program("mov $1, 1\nbeq $1, 1, end\nnop\nend: halt").unwrap();
        let p2 = insert_before(&p, &[(2, vec![Instr::Nop, Instr::Nop])]).unwrap();
        assert_eq!(p2.len(), 6);
        // The branch to `end` (was 3) now targets 5.
        assert!(matches!(p2.fetch(1), Some(Instr::Branch { target: 5, .. })));
        assert_eq!(p2.label_address("end"), Some(5));
    }

    #[test]
    fn branch_to_guarded_instruction_runs_the_guard() {
        // A backedge to `loop` must execute the inserted check each
        // iteration.
        let p = parse_program("mov $1, 3\nloop: subi $1, $1, 1\nbgt $1, 0, loop\nhalt").unwrap();
        let p2 = insert_before(&p, &[(1, vec![Instr::Check { id: 9 }])]).unwrap();
        // Backedge now targets the check, not the subi.
        assert!(matches!(p2.fetch(1), Some(Instr::Check { id: 9 })));
        assert!(matches!(p2.fetch(3), Some(Instr::Branch { target: 1, .. })));
        assert_eq!(p2.label_address("loop"), Some(1));
    }

    #[test]
    fn earlier_targets_unshifted() {
        let p = parse_program("a: nop\njmp a\nhalt").unwrap();
        let p2 = insert_before(&p, &[(2, vec![Instr::Nop])]).unwrap();
        assert!(matches!(p2.fetch(1), Some(Instr::Jmp { target: 0 })));
    }

    #[test]
    fn multiple_sites_accumulate_shifts() {
        let p = parse_program("nop\nnop\nnop\njmp end\nend: halt").unwrap();
        let p2 = insert_before(
            &p,
            &[(0, vec![Instr::Nop]), (2, vec![Instr::Nop, Instr::Nop])],
        )
        .unwrap();
        assert_eq!(p2.len(), 8);
        // `end` was 4; shifted by 3.
        assert_eq!(p2.label_address("end"), Some(7));
        assert!(matches!(p2.fetch(6), Some(Instr::Jmp { target: 7 })));
    }

    #[test]
    fn out_of_range_insertion_rejected() {
        let p = parse_program("halt").unwrap();
        assert!(insert_before(&p, &[(5, vec![Instr::Nop])]).is_err());
    }

    #[test]
    fn trailing_insertion_allowed() {
        let p = parse_program("nop\nhalt").unwrap();
        let p2 = insert_before(&p, &[(2, vec![Instr::Nop])]).unwrap();
        assert_eq!(p2.len(), 3);
    }

    #[test]
    fn semantics_preserved_for_nop_insertions() {
        use crate::{Cmp, Operand, Reg};
        // A looping program; inserting nops must not change its output.
        let p = parse_program(
            "mov $1, 4\nmov $2, 0\nloop: add $2, $2, $1\nsubi $1, $1, 1\nbgt $1, 0, loop\nprint $2\nhalt",
        )
        .unwrap();
        let p2 = insert_before(
            &p,
            &[
                (2, vec![Instr::Nop]),
                (4, vec![Instr::Nop]),
                (5, vec![Instr::Nop]),
            ],
        )
        .unwrap();
        // Cheap structural checks (full behavioural equivalence is covered
        // by the machine tests that run instrumented programs).
        assert_eq!(p2.len(), p.len() + 3);
        let backedge = p2
            .instrs()
            .iter()
            .find_map(|i| match i {
                Instr::Branch {
                    cmp: Cmp::Gt,
                    src: Operand::Imm(0),
                    target,
                    rs,
                } if *rs == Reg::r(1) => Some(*target),
                _ => None,
            })
            .unwrap();
        assert_eq!(backedge, p2.label_address("loop").unwrap());
    }
}
