//! The pre-decoded program IR: a dense, allocation-free executable form.
//!
//! [`crate::Program`] stores [`crate::Instr`] values — a faithful AST of the
//! `.sasm` source, convenient to parse, transform, and display, but slow to
//! *dispatch*: every step re-matches the [`crate::Operand`] enum, and the
//! `String`-carrying `prints` variant makes a naive `instr.clone()` per
//! fetch allocate. The model checker's sweeps execute tens of millions of
//! instructions per campaign, so the interpreter layer lowers the program
//! **once**, at search setup, into a [`DecodedProgram`] and dispatches over
//! that.
//!
//! # Lowering invariants
//!
//! Decoding is a **pure, total, semantics-preserving function of the
//! instruction sequence** (pinned by the decoded-vs-AST equivalence
//! property suite):
//!
//! * **Structural, 1:1.** Every AST instruction lowers to exactly one
//!   [`DecodedOp`] at the same address. No constant folding, no dead-code
//!   elimination, no reordering — the decoded dispatch must drive the same
//!   state-mutator calls as the AST interpreter so fork counts, watchdog
//!   accounting, and witness traces stay byte-identical.
//! * **Operand pre-split.** Register-vs-immediate alternatives (`mov`,
//!   arithmetic, set-compare, branches) are split into distinct `…Imm` /
//!   `…Reg` variants, so the hot dispatch never re-matches
//!   [`crate::Operand`].
//! * **Targets pre-resolved.** Branch/jump targets are stored as absolute
//!   `u32` instruction indices. They were already label-free in the AST
//!   (the parser resolves labels at assembly time); narrowing them to `u32`
//!   alongside `u8` register indices keeps every [`DecodedOp`] a small
//!   `Copy` value, so fetching an op is an indexed load, never a clone.
//! * **Strings pooled.** `prints` text lives in a side table of shared
//!   `Arc<str>` values; the op stream carries a `u32` pool index. The op
//!   array therefore contains no heap-owning values at all.
//!
//! # Superinstructions
//!
//! A second decode pass recognises the hot two-instruction idioms the
//! Siemens workloads are built from and records them in a parallel *fusion
//! table* ([`DecodedProgram::fused_at`]):
//!
//! * [`SuperOp::CmpBranch`] — `set<cmp> $d, …` immediately followed by a
//!   branch testing `$d` against an immediate (the `setgt $5,$3,$4; beq
//!   $5,0,exit` loop-exit idiom).
//! * [`SuperOp::LoadOp`] — a load followed by an arithmetic op consuming
//!   the loaded register.
//! * [`SuperOp::OpStore`] — an arithmetic op followed by a store consuming
//!   its result register, as the stored value (`add $7,…; st $7,…`) or as
//!   the store's base address (the `addi $11,$11,700; st $10, 0($11)`
//!   compute-address-then-store idiom).
//!
//! Fusion is an **execution shortcut, not a rewrite**: the op stream keeps
//! both constituent ops, and only the *concrete* runner (`run_concrete`),
//! whose intermediate states are unobservable, consults the table — and it
//! does so only when control *falls through* the first op, so a jump into
//! the middle of a pair executes the second op normally. The symbolic
//! engine always steps one architectural instruction at a time: its
//! intermediate states are observable (dedup points, witness-trace PCs,
//! the watchdog counter inside the state term), so skipping them would
//! change exhaustive-search results. Pairs are chosen greedily left to
//! right and never overlap.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::{BinOp, Cmp, Instr, Operand, Program, Reg};

/// One lowered instruction: a dense `Copy` value with pre-split operands,
/// pre-resolved `u32` code targets, and pooled strings. See the module docs
/// for the lowering invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedOp {
    /// `rd <- imm`.
    MovImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd <- rs`.
    MovReg {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd <- rs OP imm`.
    BinImm {
        /// Operation.
        op: BinOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Immediate second operand.
        imm: i64,
    },
    /// `rd <- rs OP rt`.
    BinReg {
        /// Operation.
        op: BinOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// `rd <- (rs CMP imm) ? 1 : 0`.
    SetImm {
        /// Comparison predicate.
        cmp: Cmp,
        /// Destination register.
        rd: Reg,
        /// First comparand register.
        rs: Reg,
        /// Immediate second comparand.
        imm: i64,
    },
    /// `rd <- (rs CMP rt) ? 1 : 0`.
    SetReg {
        /// Comparison predicate.
        cmp: Cmp,
        /// Destination register.
        rd: Reg,
        /// First comparand register.
        rs: Reg,
        /// Second comparand register.
        rt: Reg,
    },
    /// `if (rs CMP imm) goto target`.
    BranchImm {
        /// Comparison predicate.
        cmp: Cmp,
        /// Register compared.
        rs: Reg,
        /// Immediate comparand.
        imm: i64,
        /// Absolute target instruction index.
        target: u32,
    },
    /// `if (rs CMP rt) goto target`.
    BranchReg {
        /// Comparison predicate.
        cmp: Cmp,
        /// Register compared.
        rs: Reg,
        /// Register comparand.
        rt: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Unconditional jump.
    Jmp {
        /// Absolute target instruction index.
        target: u32,
    },
    /// Jump-and-link (`$31 <- pc + 1`).
    Jal {
        /// Absolute target instruction index.
        target: u32,
    },
    /// Jump to the address held in a register.
    Jr {
        /// Register holding the target address.
        rs: Reg,
    },
    /// `rt <- mem[rs + offset]`.
    Load {
        /// Destination register.
        rt: Reg,
        /// Base address register.
        rs: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `mem[rs + offset] <- rt`.
    Store {
        /// Source register.
        rt: Reg,
        /// Base address register.
        rs: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `rd <- next input value`.
    Read {
        /// Destination register.
        rd: Reg,
    },
    /// Print a register value.
    Print {
        /// Register printed.
        rs: Reg,
    },
    /// Print a pooled string literal.
    PrintS {
        /// Index into the string pool ([`DecodedProgram::text`]).
        text: u32,
    },
    /// Invoke detector `id`.
    Check {
        /// Detector identifier.
        id: u32,
    },
    /// No operation.
    Nop,
    /// Normal termination.
    Halt,
}

impl fmt::Display for DecodedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodedOp::MovImm { rd, imm } => write!(f, "mov {rd}, {imm}"),
            DecodedOp::MovReg { rd, rs } => write!(f, "mov {rd}, {rs}"),
            DecodedOp::BinImm { op, rd, rs, imm } => write!(f, "{op} {rd}, {rs}, {imm}"),
            DecodedOp::BinReg { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            DecodedOp::SetImm { cmp, rd, rs, imm } => {
                write!(f, "{} {rd}, {rs}, {imm}", set_mnemonic(*cmp))
            }
            DecodedOp::SetReg { cmp, rd, rs, rt } => {
                write!(f, "{} {rd}, {rs}, {rt}", set_mnemonic(*cmp))
            }
            DecodedOp::BranchImm {
                cmp,
                rs,
                imm,
                target,
            } => write!(f, "{} {rs}, {imm}, @{target}", branch_mnemonic(*cmp)),
            DecodedOp::BranchReg {
                cmp,
                rs,
                rt,
                target,
            } => write!(f, "{} {rs}, {rt}, @{target}", branch_mnemonic(*cmp)),
            DecodedOp::Jmp { target } => write!(f, "jmp @{target}"),
            DecodedOp::Jal { target } => write!(f, "jal @{target}"),
            DecodedOp::Jr { rs } => write!(f, "jr {rs}"),
            DecodedOp::Load { rt, rs, offset } => write!(f, "ld {rt}, {offset}({rs})"),
            DecodedOp::Store { rt, rs, offset } => write!(f, "st {rt}, {offset}({rs})"),
            DecodedOp::Read { rd } => write!(f, "read {rd}"),
            DecodedOp::Print { rs } => write!(f, "print {rs}"),
            DecodedOp::PrintS { text } => write!(f, "prints s{text}"),
            DecodedOp::Check { id } => write!(f, "check {id}"),
            DecodedOp::Nop => f.write_str("nop"),
            DecodedOp::Halt => f.write_str("halt"),
        }
    }
}

fn set_mnemonic(cmp: Cmp) -> &'static str {
    match cmp {
        Cmp::Eq => "seteq",
        Cmp::Ne => "setne",
        Cmp::Gt => "setgt",
        Cmp::Lt => "setlt",
        Cmp::Ge => "setge",
        Cmp::Le => "setle",
    }
}

fn branch_mnemonic(cmp: Cmp) -> &'static str {
    match cmp {
        Cmp::Eq => "beq",
        Cmp::Ne => "bne",
        Cmp::Gt => "bgt",
        Cmp::Lt => "blt",
        Cmp::Ge => "bge",
        Cmp::Le => "ble",
    }
}

/// A fused two-instruction pair, recorded at the address of its *first*
/// constituent op. Executed only by the concrete runner on fall-through
/// (see the module docs); both constituent ops remain in the op stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuperOp {
    /// `set<cmp> rd, rs, src` then `b<bcmp> rd, bimm, @target`: compare,
    /// materialize the flag, and branch on it in one dispatch.
    CmpBranch {
        /// The set-compare predicate.
        cmp: Cmp,
        /// Flag register written by the set and tested by the branch.
        rd: Reg,
        /// First comparand register.
        rs: Reg,
        /// Second comparand of the set.
        src: Operand,
        /// The branch predicate applied to `rd`.
        bcmp: Cmp,
        /// The branch's immediate comparand.
        bimm: i64,
        /// Absolute branch target.
        target: u32,
    },
    /// `ld rt, offset(rs)` then `op rd, rs2, src2` where the arithmetic op
    /// consumes the loaded `rt`.
    LoadOp {
        /// Register loaded into.
        rt: Reg,
        /// Load base register.
        rs: Reg,
        /// Load offset.
        offset: i64,
        /// The arithmetic operation.
        op: BinOp,
        /// Arithmetic destination register.
        rd: Reg,
        /// First arithmetic source register.
        rs2: Reg,
        /// Second arithmetic source operand.
        src2: Operand,
    },
    /// `op rd, rs, src` then `st rt, offset(bs)` where the store consumes
    /// `rd` (as `rt`, `bs`, or both): compute and store in one dispatch.
    OpStore {
        /// The arithmetic operation.
        op: BinOp,
        /// Result register.
        rd: Reg,
        /// First arithmetic source register.
        rs: Reg,
        /// Second arithmetic source operand.
        src: Operand,
        /// Stored-value register (often, but not necessarily, `rd`).
        rt: Reg,
        /// Store base register.
        bs: Reg,
        /// Store offset.
        offset: i64,
    },
}

impl SuperOp {
    /// A short kind name for listings and statistics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SuperOp::CmpBranch { .. } => "cmp-branch",
            SuperOp::LoadOp { .. } => "load-op",
            SuperOp::OpStore { .. } => "op-store",
        }
    }
}

/// Counters describing one decode: emitted ops, fused pairs, pooled
/// strings. Surfaced in benchmark tables (`decode_<workload>` rows) and the
/// snapshot listing header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Number of [`DecodedOp`]s emitted (always the instruction count).
    pub ops: usize,
    /// Number of fused [`SuperOp`] pairs recorded.
    pub superinstructions: usize,
    /// Number of distinct pooled `prints` strings.
    pub pooled_strings: usize,
}

/// The decoded executable form of a [`Program`]: a dense `Copy` op array, a
/// parallel fusion table, and a string pool. Obtained from
/// [`Program::decoded`] (cached, decode-once) or [`DecodedProgram::decode`]
/// (always re-lowers, for benchmarks and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    ops: Box<[DecodedOp]>,
    fused: Box<[Option<SuperOp>]>,
    strings: Box<[Arc<str>]>,
    stats: DecodeStats,
}

impl DecodedProgram {
    /// Lowers a program. Pure function of the instruction sequence: equal
    /// programs decode to equal `DecodedProgram`s.
    ///
    /// # Panics
    ///
    /// Panics if the program has more than `u32::MAX` instructions (code
    /// targets are stored as `u32`; validated programs are far smaller).
    #[must_use]
    pub fn decode(program: &Program) -> DecodedProgram {
        let instrs = program.instrs();
        assert!(
            u32::try_from(instrs.len()).is_ok(),
            "program too large for u32 code targets"
        );
        let mut strings: Vec<Arc<str>> = Vec::new();
        let mut pool: BTreeMap<&str, u32> = BTreeMap::new();
        let ops: Vec<DecodedOp> = instrs
            .iter()
            .map(|instr| lower(instr, &mut strings, &mut pool))
            .collect();

        // Greedy, non-overlapping fusion scan. The table is consulted only
        // at the first op's address, so no jump-target analysis is needed:
        // a jump into `pc + 1` simply dispatches `ops[pc + 1]` singly.
        let mut fused: Vec<Option<SuperOp>> = vec![None; ops.len()];
        let mut superinstructions = 0usize;
        let mut pc = 0usize;
        while pc + 1 < instrs.len() {
            if let Some(sup) = fuse_pair(&instrs[pc], &instrs[pc + 1]) {
                fused[pc] = Some(sup);
                superinstructions += 1;
                pc += 2;
            } else {
                pc += 1;
            }
        }

        let stats = DecodeStats {
            ops: ops.len(),
            superinstructions,
            pooled_strings: strings.len(),
        };
        DecodedProgram {
            ops: ops.into_boxed_slice(),
            fused: fused.into_boxed_slice(),
            strings: strings.into_boxed_slice(),
            stats,
        }
    }

    /// Number of ops (always the source program's instruction count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the op stream is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op at `pc`, or `None` outside the code range (an illegal
    /// instruction fetch). Ops are `Copy`; this is an indexed load.
    #[inline]
    #[must_use]
    pub fn op(&self, pc: usize) -> Option<DecodedOp> {
        self.ops.get(pc).copied()
    }

    /// All ops in address order.
    #[must_use]
    pub fn ops(&self) -> &[DecodedOp] {
        &self.ops
    }

    /// The fused pair starting at `pc`, if the fusion pass recorded one.
    #[inline]
    #[must_use]
    pub fn fused_at(&self, pc: usize) -> Option<SuperOp> {
        self.fused.get(pc).copied().flatten()
    }

    /// The pooled string for a [`DecodedOp::PrintS`] index.
    ///
    /// # Panics
    ///
    /// Panics on an index not produced by this decode.
    #[inline]
    #[must_use]
    pub fn text(&self, idx: u32) -> &Arc<str> {
        &self.strings[idx as usize]
    }

    /// The decode counters (ops emitted, superinstructions fused, strings
    /// pooled).
    #[must_use]
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// A disassembler-style listing of the decoded form: a stats header,
    /// the string pool, and one line per op with fused pairs annotated.
    /// This is the text the golden snapshot tests pin.
    #[must_use]
    pub fn listing(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; decoded program: {} ops, {} superinstructions, {} pooled strings",
            self.stats.ops, self.stats.superinstructions, self.stats.pooled_strings
        );
        for (i, s) in self.strings.iter().enumerate() {
            let _ = writeln!(out, ";   s{i} = {s:?}");
        }
        for (addr, op) in self.ops.iter().enumerate() {
            let line = format!("  {addr:4}  {op}");
            match self.fused[addr] {
                Some(sup) => {
                    let _ = writeln!(out, "{line:<40}; fused: {} with @{}", sup.kind(), addr + 1);
                }
                None => {
                    let _ = writeln!(out, "{line}");
                }
            }
        }
        out
    }
}

impl fmt::Display for DecodedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

/// Lowers one AST instruction (see the module docs: structural and 1:1).
fn lower<'a>(
    instr: &'a Instr,
    strings: &mut Vec<Arc<str>>,
    pool: &mut BTreeMap<&'a str, u32>,
) -> DecodedOp {
    match instr {
        Instr::Bin { op, rd, rs, src } => match *src {
            Operand::Imm(imm) => DecodedOp::BinImm {
                op: *op,
                rd: *rd,
                rs: *rs,
                imm,
            },
            Operand::Reg(rt) => DecodedOp::BinReg {
                op: *op,
                rd: *rd,
                rs: *rs,
                rt,
            },
        },
        Instr::Mov { rd, src } => match *src {
            Operand::Imm(imm) => DecodedOp::MovImm { rd: *rd, imm },
            Operand::Reg(rs) => DecodedOp::MovReg { rd: *rd, rs },
        },
        Instr::Set { cmp, rd, rs, src } => match *src {
            Operand::Imm(imm) => DecodedOp::SetImm {
                cmp: *cmp,
                rd: *rd,
                rs: *rs,
                imm,
            },
            Operand::Reg(rt) => DecodedOp::SetReg {
                cmp: *cmp,
                rd: *rd,
                rs: *rs,
                rt,
            },
        },
        Instr::Branch {
            cmp,
            rs,
            src,
            target,
        } => {
            let target = to_target(*target);
            match *src {
                Operand::Imm(imm) => DecodedOp::BranchImm {
                    cmp: *cmp,
                    rs: *rs,
                    imm,
                    target,
                },
                Operand::Reg(rt) => DecodedOp::BranchReg {
                    cmp: *cmp,
                    rs: *rs,
                    rt,
                    target,
                },
            }
        }
        Instr::Jmp { target } => DecodedOp::Jmp {
            target: to_target(*target),
        },
        Instr::Jal { target } => DecodedOp::Jal {
            target: to_target(*target),
        },
        Instr::Jr { rs } => DecodedOp::Jr { rs: *rs },
        Instr::Load { rt, rs, offset } => DecodedOp::Load {
            rt: *rt,
            rs: *rs,
            offset: *offset,
        },
        Instr::Store { rt, rs, offset } => DecodedOp::Store {
            rt: *rt,
            rs: *rs,
            offset: *offset,
        },
        Instr::Read { rd } => DecodedOp::Read { rd: *rd },
        Instr::Print { rs } => DecodedOp::Print { rs: *rs },
        Instr::PrintS { text } => {
            // Dedup by content so repeated literals share one pool slot;
            // BTreeMap keeps the pool order deterministic.
            let key: &'a str = text.as_ref();
            let idx = match pool.get(key) {
                Some(&idx) => idx,
                None => {
                    let idx = u32::try_from(strings.len()).expect("string pool fits in u32");
                    strings.push(Arc::clone(text));
                    pool.insert(key, idx);
                    idx
                }
            };
            DecodedOp::PrintS { text: idx }
        }
        Instr::Check { id } => DecodedOp::Check { id: *id },
        Instr::Nop => DecodedOp::Nop,
        Instr::Halt => DecodedOp::Halt,
    }
}

fn to_target(target: usize) -> u32 {
    u32::try_from(target).expect("validated targets fit in u32")
}

/// Recognises a fusable adjacent pair. Purely syntactic on the AST pair;
/// the conditions guarantee the second op consumes the first's result so
/// the fused execution is a straight-line composition.
fn fuse_pair(first: &Instr, second: &Instr) -> Option<SuperOp> {
    match (first, second) {
        (
            Instr::Set { cmp, rd, rs, src },
            Instr::Branch {
                cmp: bcmp,
                rs: brs,
                src: Operand::Imm(bimm),
                target,
            },
        ) if brs == rd => Some(SuperOp::CmpBranch {
            cmp: *cmp,
            rd: *rd,
            rs: *rs,
            src: *src,
            bcmp: *bcmp,
            bimm: *bimm,
            target: to_target(*target),
        }),
        (
            Instr::Load { rt, rs, offset },
            Instr::Bin {
                op,
                rd,
                rs: rs2,
                src: src2,
            },
        ) if rs2 == rt || src2.as_reg() == Some(*rt) => Some(SuperOp::LoadOp {
            rt: *rt,
            rs: *rs,
            offset: *offset,
            op: *op,
            rd: *rd,
            rs2: *rs2,
            src2: *src2,
        }),
        (
            Instr::Bin { op, rd, rs, src },
            Instr::Store {
                rt: srt,
                rs: bs,
                offset,
            },
        ) if srt == rd || bs == rd => Some(SuperOp::OpStore {
            op: *op,
            rd: *rd,
            rs: *rs,
            src: *src,
            rt: *srt,
            bs: *bs,
            offset: *offset,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const FACTORIAL: &str = r#"
        mov $2, 1
        read $1
        mov $3, $1
    loop:
        setgt $5, $3, 1
        beq $5, 0, exit
        mult $2, $2, $3
        subi $3, $3, 1
        jmp loop
    exit:
        prints "Factorial = "
        print $2
        halt
    "#;

    #[test]
    fn lowering_is_one_to_one_and_pools_strings() {
        let program = parse_program(FACTORIAL).unwrap();
        let d = program.decoded();
        assert_eq!(d.len(), program.len());
        assert_eq!(d.stats().ops, program.len());
        assert_eq!(d.stats().pooled_strings, 1);
        assert_eq!(d.text(0).as_ref(), "Factorial = ");
        assert_eq!(
            d.op(3),
            Some(DecodedOp::SetImm {
                cmp: Cmp::Gt,
                rd: Reg::r(5),
                rs: Reg::r(3),
                imm: 1
            })
        );
        assert_eq!(d.op(7), Some(DecodedOp::Jmp { target: 3 }));
        assert_eq!(d.op(program.len()), None);
    }

    #[test]
    fn fuses_the_setgt_beq_loop_exit_idiom() {
        let program = parse_program(FACTORIAL).unwrap();
        let d = program.decoded();
        let exit = program.label_address("exit").unwrap() as u32;
        assert_eq!(
            d.fused_at(3),
            Some(SuperOp::CmpBranch {
                cmp: Cmp::Gt,
                rd: Reg::r(5),
                rs: Reg::r(3),
                src: Operand::Imm(1),
                bcmp: Cmp::Eq,
                bimm: 0,
                target: exit,
            })
        );
        // The branch itself is not the start of another pair.
        assert_eq!(d.fused_at(4), None);
        assert!(d.stats().superinstructions >= 1);
    }

    #[test]
    fn fuses_load_op_and_op_store_pairs() {
        let program = parse_program(
            r#"
            ld $2, 0($1)
            add $3, $2, 4
            add $4, $4, 1
            st $4, 8($1)
            halt
            "#,
        )
        .unwrap();
        let d = program.decoded();
        assert!(matches!(d.fused_at(0), Some(SuperOp::LoadOp { .. })));
        assert!(matches!(d.fused_at(2), Some(SuperOp::OpStore { .. })));
        assert_eq!(d.stats().superinstructions, 2);
    }

    #[test]
    fn fusion_is_greedy_and_non_overlapping() {
        // ld; add-consuming; st-of-add-result: the ld/add pair wins, the
        // add/st pair must not also be recorded (add is already consumed).
        let program = parse_program(
            r#"
            ld $2, 0($1)
            add $3, $2, 4
            st $3, 8($1)
            halt
            "#,
        )
        .unwrap();
        let d = program.decoded();
        assert!(matches!(d.fused_at(0), Some(SuperOp::LoadOp { .. })));
        assert_eq!(d.fused_at(1), None);
        assert_eq!(d.stats().superinstructions, 1);
    }

    #[test]
    fn decode_is_deterministic_and_shared_across_clones() {
        let program = parse_program(FACTORIAL).unwrap();
        let again = DecodedProgram::decode(&program);
        assert_eq!(*program.decoded(), again);
        let clone = program.clone();
        // Clones share the cached decode (same allocation).
        assert!(std::ptr::eq(program.decoded(), clone.decoded()));
    }

    #[test]
    fn listing_mentions_fusion_and_strings() {
        let program = parse_program(FACTORIAL).unwrap();
        let listing = program.decoded().listing();
        assert!(listing.contains("; decoded program: 11 ops"));
        assert!(listing.contains("s0 = \"Factorial = \""));
        assert!(listing.contains("fused: cmp-branch with @4"));
        assert!(listing.lines().count() > 11);
    }
}
