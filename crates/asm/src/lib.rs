//! # sympl-asm — the SymPLFIED generic assembly language
//!
//! SymPLFIED (Pattabiraman et al., DSN 2008) analyzes programs expressed in a
//! *generic assembly language* that abstracts the architectural features found
//! in common RISC processors. This crate defines that language:
//!
//! * [`Reg`] — the 32-entry register file naming scheme (`$0` is hard-wired
//!   to zero, `$31` is the link register used by [`Instr::Jal`]).
//! * [`Instr`] — the instruction set: arithmetic/logic, set-compare,
//!   branches, jumps, loads/stores, native I/O (`read`/`print`/`prints`, so
//!   programs are analyzable independent of any OS), the `check` annotation
//!   that invokes an error detector, and `halt`.
//! * [`Program`] — an immutable, label-resolved instruction sequence.
//! * [`parse_program`] — a text parser for `.sasm` source files.
//! * [`mips`] — an architecture-specific front-end that translates a MIPS
//!   assembly subset into the generic language (paper §5, "Supporting Tools").
//!
//! # Example
//!
//! ```
//! use sympl_asm::parse_program;
//!
//! let program = parse_program(
//!     r#"
//!         mov $2, 1          ; product = 1
//!         read $1            ; read n from input
//!         mov $3, $1
//!     loop:
//!         setgt $5, $3, 1
//!         beq $5, 0, exit
//!         mult $2, $2, $3
//!         subi $3, $3, 1
//!         jmp loop
//!     exit:
//!         prints "Factorial = "
//!         print $2
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.len(), 11);
//! assert_eq!(program.label_address("loop"), Some(3));
//! # Ok::<(), sympl_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod instr;
mod parser;
mod program;
mod reg;
mod transform;

pub mod decoded;
pub mod mips;

pub use decoded::{DecodeStats, DecodedOp, DecodedProgram, SuperOp};
pub use error::AsmError;
pub use instr::{BinOp, Cmp, Instr, Operand};
pub use parser::parse_program;
pub use program::{Program, ProgramBuilder};
pub use reg::{Reg, LINK_REG, NUM_REGS, STACK_REG, ZERO_REG};
pub use transform::insert_before;
