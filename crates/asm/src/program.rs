//! The immutable, label-resolved program representation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::{AsmError, Cmp, DecodedProgram, Instr, Operand, Reg};

/// An assembled program: an immutable instruction sequence plus its label
/// table.
///
/// Programs are cheap to clone (the instruction vector is behind an `Arc`)
/// because the model checker and campaign runners share one program across
/// thousands of states and worker threads. The code is deliberately kept
/// *outside* the mutable machine state, exactly as the paper's Maude model
/// keeps `C` outside the state soup "to enable faster rewriting" (§5.1).
#[derive(Debug, Clone)]
pub struct Program {
    instrs: Arc<[Instr]>,
    labels: Arc<BTreeMap<String, usize>>,
    /// Reverse map from address to the labels defined there (for display).
    label_at: Arc<BTreeMap<usize, Vec<String>>>,
    /// Lazily-computed decoded IR ([`crate::decoded`]), shared across
    /// clones. Deliberately excluded from `PartialEq`/`Hash`: it is a pure
    /// function of `instrs`.
    decoded: OnceLock<Arc<DecodedProgram>>,
}

impl Program {
    /// Builds a program from raw parts, validating all code targets.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::EmptyProgram`] for an empty instruction list and
    /// [`AsmError::TargetOutOfRange`] if any branch or jump targets an
    /// address outside the program.
    pub fn new(instrs: Vec<Instr>, labels: BTreeMap<String, usize>) -> Result<Self, AsmError> {
        if instrs.is_empty() {
            return Err(AsmError::EmptyProgram);
        }
        let len = instrs.len();
        for (at, instr) in instrs.iter().enumerate() {
            if let Some(target) = instr.static_target() {
                if target >= len {
                    return Err(AsmError::TargetOutOfRange { at, target, len });
                }
            }
        }
        // A label may sit one past the last instruction (a trailing label);
        // anything further is malformed.
        if let Some((label, &addr)) = labels.iter().find(|(_, &addr)| addr > len) {
            let _ = label;
            return Err(AsmError::TargetOutOfRange {
                at: addr,
                target: addr,
                len,
            });
        }
        let mut label_at: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (name, &addr) in &labels {
            label_at.entry(addr).or_default().push(name.clone());
        }
        Ok(Program {
            instrs: instrs.into(),
            labels: Arc::new(labels),
            label_at: Arc::new(label_at),
            decoded: OnceLock::new(),
        })
    }

    /// The decoded executable form, lowered on first use and cached.
    ///
    /// Decoding is a pure, semantics-preserving function of the instruction
    /// sequence (see [`crate::decoded`]), so the cache is sound; clones of
    /// this program share the same decode.
    #[must_use]
    pub fn decoded(&self) -> &DecodedProgram {
        self.decoded
            .get_or_init(|| Arc::new(DecodedProgram::decode(self)))
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `addr`, or `None` when `addr` is not a valid code
    /// address — the machine model turns that into an "illegal instruction"
    /// exception (paper §5.1 assumptions).
    #[must_use]
    pub fn fetch(&self, addr: usize) -> Option<&Instr> {
        self.instrs.get(addr)
    }

    /// All instructions, in address order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The address a label resolves to.
    #[must_use]
    pub fn label_address(&self, label: &str) -> Option<usize> {
        self.labels.get(label).copied()
    }

    /// All labels defined at an address.
    #[must_use]
    pub fn labels_at(&self, addr: usize) -> &[String] {
        self.label_at.get(&addr).map_or(&[], Vec::as_slice)
    }

    /// Iterates over `(label, address)` pairs in label-name order.
    pub fn labels(&self) -> impl Iterator<Item = (&str, usize)> {
        self.labels.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The nearest label at or before `addr`, with the distance in
    /// instructions. Used to attribute findings to source functions.
    #[must_use]
    pub fn enclosing_label(&self, addr: usize) -> Option<(&str, usize)> {
        self.label_at
            .range(..=addr)
            .next_back()
            .and_then(|(at, names)| names.first().map(|n| (n.as_str(), addr - at)))
    }

    /// Human-readable disassembly listing.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (addr, instr) in self.instrs.iter().enumerate() {
            for label in self.labels_at(addr) {
                out.push_str(label);
                out.push_str(":\n");
            }
            out.push_str(&format!("  {addr:4}  {instr}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.instrs == other.instrs && self.labels == other.labels
    }
}

impl Eq for Program {}

/// Incremental builder for [`Program`] values, used by code that constructs
/// programs programmatically (tests, the injection engine's program
/// transformers, the MIPS front-end).
///
/// Labels may be referenced before they are defined; they are resolved when
/// [`ProgramBuilder::build`] is called.
///
/// ```
/// use sympl_asm::{ProgramBuilder, Reg, Operand, Cmp};
///
/// let mut b = ProgramBuilder::new();
/// b.mov(Reg::r(1), Operand::Imm(10));
/// b.label("loop");
/// b.subi(Reg::r(1), Reg::r(1), 1);
/// b.branch_to(Cmp::Gt, Reg::r(1), Operand::Imm(0), "loop");
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), sympl_asm::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, usize>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, String)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far (the address of the next one).
    #[must_use]
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Defines `label` at the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined; label names are expected to
    /// be unique within a compilation unit.
    pub fn label(&mut self, label: &str) -> &mut Self {
        let addr = self.here();
        let prev = self.labels.insert(label.to_owned(), addr);
        assert!(prev.is_none(), "duplicate label `{label}`");
        self
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Emits an instruction whose target is a label resolved at build time;
    /// the instruction carries a placeholder target of `usize::MAX` until then.
    fn push_labeled(&mut self, label: &str, instr: Instr) -> &mut Self {
        let at = self.here();
        self.fixups.push((at, label.to_owned()));
        self.instrs.push(instr);
        self
    }

    /// `rd <- rs + src`.
    pub fn add(&mut self, rd: Reg, rs: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Bin {
            op: crate::instr::BinOp::Add,
            rd,
            rs,
            src: src.into(),
        })
    }

    /// `rd <- rs - src`.
    pub fn sub(&mut self, rd: Reg, rs: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Bin {
            op: crate::instr::BinOp::Sub,
            rd,
            rs,
            src: src.into(),
        })
    }

    /// `rd <- rs - imm` (paper's `subi`).
    pub fn subi(&mut self, rd: Reg, rs: Reg, imm: i64) -> &mut Self {
        self.sub(rd, rs, Operand::Imm(imm))
    }

    /// `rd <- rs * src`.
    pub fn mult(&mut self, rd: Reg, rs: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Bin {
            op: crate::instr::BinOp::Mul,
            rd,
            rs,
            src: src.into(),
        })
    }

    /// `rd <- rs / src`.
    pub fn div(&mut self, rd: Reg, rs: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Bin {
            op: crate::instr::BinOp::Div,
            rd,
            rs,
            src: src.into(),
        })
    }

    /// `rd <- src` (move / load-immediate).
    pub fn mov(&mut self, rd: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Mov {
            rd,
            src: src.into(),
        })
    }

    /// `rd <- (rs cmp src) ? 1 : 0`.
    pub fn set(&mut self, cmp: Cmp, rd: Reg, rs: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Set {
            cmp,
            rd,
            rs,
            src: src.into(),
        })
    }

    /// Conditional branch to a label.
    pub fn branch_to(
        &mut self,
        cmp: Cmp,
        rs: Reg,
        src: impl Into<Operand>,
        label: &str,
    ) -> &mut Self {
        self.push_labeled(
            label,
            Instr::Branch {
                cmp,
                rs,
                src: src.into(),
                target: usize::MAX,
            },
        )
    }

    /// Unconditional jump to a label.
    pub fn jmp_to(&mut self, label: &str) -> &mut Self {
        self.push_labeled(label, Instr::Jmp { target: usize::MAX })
    }

    /// Call (jump-and-link) to a label.
    pub fn jal_to(&mut self, label: &str) -> &mut Self {
        self.push_labeled(label, Instr::Jal { target: usize::MAX })
    }

    /// Jump to the address in a register (return).
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.push(Instr::Jr { rs })
    }

    /// `rt <- mem[rs + offset]`.
    pub fn load(&mut self, rt: Reg, rs: Reg, offset: i64) -> &mut Self {
        self.push(Instr::Load { rt, rs, offset })
    }

    /// `mem[rs + offset] <- rt`.
    pub fn store(&mut self, rt: Reg, rs: Reg, offset: i64) -> &mut Self {
        self.push(Instr::Store { rt, rs, offset })
    }

    /// `rd <- input`.
    pub fn read(&mut self, rd: Reg) -> &mut Self {
        self.push(Instr::Read { rd })
    }

    /// Print a register value.
    pub fn print(&mut self, rs: Reg) -> &mut Self {
        self.push(Instr::Print { rs })
    }

    /// Print a string literal.
    pub fn prints(&mut self, text: &str) -> &mut Self {
        self.push(Instr::PrintS { text: text.into() })
    }

    /// Invoke detector `id` (the `CHECK` annotation).
    pub fn check(&mut self, id: u32) -> &mut Self {
        self.push(Instr::Check { id })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Halt.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Resolves all label fixups and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] for an unresolved reference and
    /// any validation error from [`Program::new`].
    pub fn build(mut self) -> Result<Program, AsmError> {
        for (at, label) in std::mem::take(&mut self.fixups) {
            let addr = *self
                .labels
                .get(&label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            match &mut self.instrs[at] {
                Instr::Branch { target, .. } | Instr::Jmp { target } | Instr::Jal { target } => {
                    *target = addr;
                }
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        Program::new(self.instrs, self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new();
        b.mov(Reg::r(1), 5i64);
        b.label("loop");
        b.subi(Reg::r(1), Reg::r(1), 1);
        b.branch_to(Cmp::Gt, Reg::r(1), 0i64, "loop");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.jmp_to("end"); // forward reference
        b.label("mid");
        b.nop();
        b.label("end");
        b.jmp_to("mid"); // backward reference
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0), Some(&Instr::Jmp { target: 2 }));
        assert_eq!(p.fetch(2), Some(&Instr::Jmp { target: 1 }));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.jmp_to("nowhere");
        b.halt();
        assert_eq!(
            b.build().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.nop();
        b.label("x");
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            ProgramBuilder::new().build().unwrap_err(),
            AsmError::EmptyProgram
        );
    }

    #[test]
    fn out_of_range_target_rejected() {
        let err = Program::new(vec![Instr::Jmp { target: 5 }], BTreeMap::new()).unwrap_err();
        assert_eq!(
            err,
            AsmError::TargetOutOfRange {
                at: 0,
                target: 5,
                len: 1
            }
        );
    }

    #[test]
    fn fetch_out_of_bounds_is_none() {
        let p = tiny();
        assert!(p.fetch(p.len()).is_none());
        assert!(p.fetch(0).is_some());
    }

    #[test]
    fn label_lookup_and_reverse_lookup() {
        let p = tiny();
        assert_eq!(p.label_address("loop"), Some(1));
        assert_eq!(p.labels_at(1), ["loop".to_string()]);
        assert!(p.labels_at(0).is_empty());
        assert_eq!(p.labels().count(), 1);
    }

    #[test]
    fn enclosing_label_attributes_addresses() {
        let p = tiny();
        assert_eq!(p.enclosing_label(0), None);
        assert_eq!(p.enclosing_label(1), Some(("loop", 0)));
        assert_eq!(p.enclosing_label(3), Some(("loop", 2)));
    }

    #[test]
    fn listing_mentions_labels_and_instructions() {
        let p = tiny();
        let listing = p.to_string();
        assert!(listing.contains("loop:"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn programs_share_storage_on_clone() {
        let p = tiny();
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(p.instrs.as_ptr(), q.instrs.as_ptr());
    }
}
