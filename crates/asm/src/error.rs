//! Error type for assembling and validating programs.

use std::fmt;

/// Errors produced while building, parsing, or translating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// A register index was outside the 32-entry register file.
    InvalidRegister(u8),
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined at two different addresses.
    DuplicateLabel(String),
    /// A resolved code address fell outside the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// A syntax error in `.sasm` or MIPS source text.
    Parse {
        /// 1-based source line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A MIPS instruction that the front-end does not translate.
    UnsupportedMips {
        /// 1-based source line number.
        line: usize,
        /// The mnemonic that could not be translated.
        mnemonic: String,
    },
    /// The program was empty.
    EmptyProgram,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::InvalidRegister(r) => {
                write!(f, "invalid register ${r}: register file has 32 entries")
            }
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::TargetOutOfRange { at, target, len } => write!(
                f,
                "instruction {at} targets address {target} but program has {len} instructions"
            ),
            AsmError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            AsmError::UnsupportedMips { line, mnemonic } => {
                write!(
                    f,
                    "unsupported MIPS instruction `{mnemonic}` on line {line}"
                )
            }
            AsmError::EmptyProgram => write!(f, "program contains no instructions"),
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<AsmError> = vec![
            AsmError::InvalidRegister(40),
            AsmError::UndefinedLabel("loop".into()),
            AsmError::DuplicateLabel("exit".into()),
            AsmError::TargetOutOfRange {
                at: 3,
                target: 99,
                len: 10,
            },
            AsmError::Parse {
                line: 7,
                message: "expected register".into(),
            },
            AsmError::UnsupportedMips {
                line: 2,
                mnemonic: "mfc0".into(),
            },
            AsmError::EmptyProgram,
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.is_ascii());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<AsmError>();
    }
}
