//! Text parser for `.sasm` source, the concrete syntax of the generic
//! assembly language.
//!
//! Grammar (one instruction per line, `;` or `--` starts a comment):
//!
//! ```text
//! line    ::= [label ':'] [instr] [comment]
//! instr   ::= mnemonic operand (',' operand)*
//! operand ::= '$' int        register
//!           | '#'? int       immediate (the paper writes `#1`)
//!           | ident          label reference
//!           | '"' text '"'   string literal (prints only)
//!           | int '(' '$' int ')'   offset(base) for ld/st
//! ```

use std::collections::BTreeMap;

use crate::instr::BinOp;
use crate::{AsmError, Cmp, Instr, Operand, Program, Reg};

/// Parses `.sasm` source text into a validated [`Program`].
///
/// # Errors
///
/// Returns [`AsmError::Parse`] with the offending line number on syntax
/// errors, plus any validation error from [`Program::new`].
///
/// ```
/// let p = sympl_asm::parse_program("mov $1, 3\nprint $1\nhalt")?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), sympl_asm::AsmError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, AsmError> {
    let mut instrs: Vec<Instr> = Vec::new();
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    let mut fixups: Vec<(usize, usize, String)> = Vec::new(); // (instr idx, line, label)

    for (lineno0, raw) in source.lines().enumerate() {
        let lineno = lineno0 + 1;
        let mut line = strip_comment(raw).trim();

        // Leading labels (possibly several on one line).
        while let Some(colon) = find_label_colon(line) {
            let name = line[..colon].trim();
            validate_label(name, lineno)?;
            if labels.insert(name.to_owned(), instrs.len()).is_some() {
                return Err(AsmError::DuplicateLabel(name.to_owned()));
            }
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            continue;
        }

        let (mnemonic, rest) = split_mnemonic(line);
        let instr = parse_instr(mnemonic, rest, lineno, instrs.len(), &mut fixups)?;
        instrs.push(instr);
    }

    for (at, lineno, label) in fixups {
        let addr = *labels.get(&label).ok_or_else(|| AsmError::Parse {
            line: lineno,
            message: format!("undefined label `{label}`"),
        })?;
        match &mut instrs[at] {
            Instr::Branch { target, .. } | Instr::Jmp { target } | Instr::Jal { target } => {
                *target = addr;
            }
            _ => unreachable!("fixup recorded for non-control instruction"),
        }
    }

    Program::new(instrs, labels)
}

fn strip_comment(line: &str) -> &str {
    // `;` and `--` both start comments, but not inside string literals.
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b';' if !in_str => return &line[..i],
            b'-' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'-' => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Finds the colon ending a leading label, if the line starts with one.
fn find_label_colon(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    let head = &line[..colon];
    if !head.is_empty()
        && head
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        Some(colon)
    } else {
        None
    }
}

fn validate_label(name: &str, line: usize) -> Result<(), AsmError> {
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return Err(AsmError::Parse {
            line,
            message: format!("invalid label `{name}`"),
        });
    }
    Ok(())
}

fn split_mnemonic(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    }
}

/// A parsed operand token.
enum Tok {
    Reg(Reg),
    Imm(i64),
    Label(String),
    Str(String),
    Mem { offset: i64, base: Reg },
}

fn tokenize_operands(rest: &str, line: usize) -> Result<Vec<Tok>, AsmError> {
    let mut toks = Vec::new();
    let mut chars = rest.char_indices().peekable();
    let err = |message: String| AsmError::Parse { line, message };

    while let Some(&(i, c)) = chars.peek() {
        match c {
            ' ' | '\t' | ',' => {
                chars.next();
            }
            '"' => {
                chars.next();
                let start = i + 1;
                let mut end = None;
                for (j, cj) in chars.by_ref() {
                    if cj == '"' {
                        end = Some(j);
                        break;
                    }
                }
                let end = end.ok_or_else(|| err("unterminated string literal".into()))?;
                toks.push(Tok::Str(rest[start..end].to_owned()));
            }
            _ => {
                // Scan a bare token up to whitespace/comma, except that a
                // token may contain a parenthesized base like `8($29)`.
                let start = i;
                let mut end = rest.len();
                let mut depth = 0usize;
                for (j, cj) in chars.by_ref() {
                    match cj {
                        '(' => depth += 1,
                        ')' => depth = depth.saturating_sub(1),
                        ' ' | '\t' | ',' if depth == 0 => {
                            end = j;
                            break;
                        }
                        _ => {}
                    }
                    end = rest.len();
                }
                let token = rest[start..end].trim_end_matches([',', ' ', '\t']);
                toks.push(parse_bare_token(token, line)?);
            }
        }
    }
    Ok(toks)
}

fn parse_bare_token(token: &str, line: usize) -> Result<Tok, AsmError> {
    let err = |message: String| AsmError::Parse { line, message };
    if let Some(rest) = token.strip_prefix('$') {
        let idx: u8 = rest
            .parse()
            .map_err(|_| err(format!("invalid register `{token}`")))?;
        return Ok(Tok::Reg(Reg::new(idx)?));
    }
    if let Some(rest) = token.strip_prefix('#') {
        let v: i64 = rest
            .parse()
            .map_err(|_| err(format!("invalid immediate `{token}`")))?;
        return Ok(Tok::Imm(v));
    }
    // offset(base) form: e.g. `8($29)` or `-4($2)`.
    if let Some(open) = token.find('(') {
        if token.ends_with(')') {
            let off_str = &token[..open];
            let base_str = &token[open + 1..token.len() - 1];
            let offset: i64 = if off_str.is_empty() {
                0
            } else {
                off_str
                    .parse()
                    .map_err(|_| err(format!("invalid offset `{off_str}`")))?
            };
            let base = match parse_bare_token(base_str, line)? {
                Tok::Reg(r) => r,
                _ => return Err(err(format!("memory base must be a register in `{token}`"))),
            };
            return Ok(Tok::Mem { offset, base });
        }
    }
    if let Ok(v) = token.parse::<i64>() {
        return Ok(Tok::Imm(v));
    }
    if token
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !token.is_empty()
    {
        return Ok(Tok::Label(token.to_owned()));
    }
    Err(err(format!("unrecognized operand `{token}`")))
}

fn as_reg(t: &Tok, line: usize, what: &str) -> Result<Reg, AsmError> {
    match t {
        Tok::Reg(r) => Ok(*r),
        _ => Err(AsmError::Parse {
            line,
            message: format!("expected register for {what}"),
        }),
    }
}

fn as_operand(t: &Tok, line: usize, what: &str) -> Result<Operand, AsmError> {
    match t {
        Tok::Reg(r) => Ok(Operand::Reg(*r)),
        Tok::Imm(v) => Ok(Operand::Imm(*v)),
        _ => Err(AsmError::Parse {
            line,
            message: format!("expected register or immediate for {what}"),
        }),
    }
}

fn parse_instr(
    mnemonic: &str,
    rest: &str,
    line: usize,
    at: usize,
    fixups: &mut Vec<(usize, usize, String)>,
) -> Result<Instr, AsmError> {
    let toks = tokenize_operands(rest, line)?;
    let err = |message: String| AsmError::Parse { line, message };
    let arity = |n: usize| -> Result<(), AsmError> {
        if toks.len() == n {
            Ok(())
        } else {
            Err(AsmError::Parse {
                line,
                message: format!("`{mnemonic}` expects {n} operand(s), found {}", toks.len()),
            })
        }
    };

    let bin = |op: BinOp, toks: &[Tok]| -> Result<Instr, AsmError> {
        Ok(Instr::Bin {
            op,
            rd: as_reg(&toks[0], line, "destination")?,
            rs: as_reg(&toks[1], line, "source")?,
            src: as_operand(&toks[2], line, "operand")?,
        })
    };
    let set = |cmp: Cmp, toks: &[Tok]| -> Result<Instr, AsmError> {
        Ok(Instr::Set {
            cmp,
            rd: as_reg(&toks[0], line, "destination")?,
            rs: as_reg(&toks[1], line, "comparand")?,
            src: as_operand(&toks[2], line, "comparand")?,
        })
    };

    let lower = mnemonic.to_ascii_lowercase();
    match lower.as_str() {
        "add" | "addi" => {
            arity(3)?;
            bin(BinOp::Add, &toks)
        }
        "sub" | "subi" => {
            arity(3)?;
            bin(BinOp::Sub, &toks)
        }
        "mult" | "mul" | "muli" => {
            arity(3)?;
            bin(BinOp::Mul, &toks)
        }
        "div" | "divi" => {
            arity(3)?;
            bin(BinOp::Div, &toks)
        }
        "rem" => {
            arity(3)?;
            bin(BinOp::Rem, &toks)
        }
        "and" | "andi" => {
            arity(3)?;
            bin(BinOp::And, &toks)
        }
        "or" | "ori" => {
            arity(3)?;
            bin(BinOp::Or, &toks)
        }
        "xor" | "xori" => {
            arity(3)?;
            bin(BinOp::Xor, &toks)
        }
        "sll" => {
            arity(3)?;
            bin(BinOp::Sll, &toks)
        }
        "srl" => {
            arity(3)?;
            bin(BinOp::Srl, &toks)
        }
        "mov" | "li" => {
            arity(2)?;
            Ok(Instr::Mov {
                rd: as_reg(&toks[0], line, "destination")?,
                src: as_operand(&toks[1], line, "source")?,
            })
        }
        "seteq" => {
            arity(3)?;
            set(Cmp::Eq, &toks)
        }
        "setne" => {
            arity(3)?;
            set(Cmp::Ne, &toks)
        }
        "setgt" => {
            arity(3)?;
            set(Cmp::Gt, &toks)
        }
        "setlt" => {
            arity(3)?;
            set(Cmp::Lt, &toks)
        }
        "setge" => {
            arity(3)?;
            set(Cmp::Ge, &toks)
        }
        "setle" => {
            arity(3)?;
            set(Cmp::Le, &toks)
        }
        "beq" | "bne" | "bgt" | "blt" | "bge" | "ble" => {
            arity(3)?;
            let cmp = match lower.as_str() {
                "beq" => Cmp::Eq,
                "bne" => Cmp::Ne,
                "bgt" => Cmp::Gt,
                "blt" => Cmp::Lt,
                "bge" => Cmp::Ge,
                _ => Cmp::Le,
            };
            let rs = as_reg(&toks[0], line, "comparand")?;
            let src = as_operand(&toks[1], line, "comparand")?;
            let label = match &toks[2] {
                Tok::Label(l) => l.clone(),
                _ => return Err(err("branch target must be a label".into())),
            };
            fixups.push((at, line, label));
            Ok(Instr::Branch {
                cmp,
                rs,
                src,
                target: usize::MAX,
            })
        }
        "jmp" | "j" => {
            arity(1)?;
            match &toks[0] {
                Tok::Label(l) => {
                    fixups.push((at, line, l.clone()));
                    Ok(Instr::Jmp { target: usize::MAX })
                }
                _ => Err(err("jump target must be a label".into())),
            }
        }
        "jal" | "call" => {
            arity(1)?;
            match &toks[0] {
                Tok::Label(l) => {
                    fixups.push((at, line, l.clone()));
                    Ok(Instr::Jal { target: usize::MAX })
                }
                _ => Err(err("call target must be a label".into())),
            }
        }
        "jr" | "ret" => {
            if lower == "ret" && toks.is_empty() {
                return Ok(Instr::Jr {
                    rs: crate::LINK_REG,
                });
            }
            arity(1)?;
            Ok(Instr::Jr {
                rs: as_reg(&toks[0], line, "target register")?,
            })
        }
        "ld" | "ldi" | "lw" => {
            // Forms: `ld $rt, off($rs)` or `ldi $rt, $rs, off`.
            if toks.len() == 2 {
                let rt = as_reg(&toks[0], line, "destination")?;
                match &toks[1] {
                    Tok::Mem { offset, base } => Ok(Instr::Load {
                        rt,
                        rs: *base,
                        offset: *offset,
                    }),
                    _ => Err(err("expected off($base) for load".into())),
                }
            } else {
                arity(3)?;
                let rt = as_reg(&toks[0], line, "destination")?;
                let rs = as_reg(&toks[1], line, "base")?;
                let offset = match &toks[2] {
                    Tok::Imm(v) => *v,
                    _ => return Err(err("load offset must be an immediate".into())),
                };
                Ok(Instr::Load { rt, rs, offset })
            }
        }
        "st" | "sti" | "sw" => {
            if toks.len() == 2 {
                let rt = as_reg(&toks[0], line, "source")?;
                match &toks[1] {
                    Tok::Mem { offset, base } => Ok(Instr::Store {
                        rt,
                        rs: *base,
                        offset: *offset,
                    }),
                    _ => Err(err("expected off($base) for store".into())),
                }
            } else {
                arity(3)?;
                let rt = as_reg(&toks[0], line, "source")?;
                let rs = as_reg(&toks[1], line, "base")?;
                let offset = match &toks[2] {
                    Tok::Imm(v) => *v,
                    _ => return Err(err("store offset must be an immediate".into())),
                };
                Ok(Instr::Store { rt, rs, offset })
            }
        }
        "read" => {
            arity(1)?;
            Ok(Instr::Read {
                rd: as_reg(&toks[0], line, "destination")?,
            })
        }
        "print" => {
            arity(1)?;
            Ok(Instr::Print {
                rs: as_reg(&toks[0], line, "source")?,
            })
        }
        "prints" => {
            arity(1)?;
            match &toks[0] {
                Tok::Str(s) => Ok(Instr::PrintS {
                    text: s.as_str().into(),
                }),
                _ => Err(err("prints expects a string literal".into())),
            }
        }
        "check" => {
            arity(1)?;
            match &toks[0] {
                Tok::Imm(v) if *v >= 0 && *v <= i64::from(u32::MAX) => Ok(Instr::Check {
                    id: u32::try_from(*v).expect("range-checked"),
                }),
                _ => Err(err("check expects a non-negative detector id".into())),
            }
        }
        "nop" => {
            arity(0)?;
            Ok(Instr::Nop)
        }
        "halt" => {
            arity(0)?;
            Ok(Instr::Halt)
        }
        other => Err(err(format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_factorial_program() {
        // Figure 2 of the paper, transliterated.
        let src = r#"
            ori $2 $0 #1      -- initial product p = 1
            read $1           -- read i from input
            mov $3, $1
            ori $4 $0 #1      -- for comparison purposes
        loop: setgt $5 $3 $4  -- start of loop
            beq $5 0 exit     -- loop condition: $3 > $4
            mult $2 $2 $3     -- p = p * i
            subi $3 $3 #1     -- i = i - 1
            beq $0 #0 loop    -- loop backedge
        exit: prints "Factorial = "
            print $2
            halt
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 12);
        assert_eq!(p.label_address("loop"), Some(4));
        assert_eq!(p.label_address("exit"), Some(9));
        assert!(matches!(p.fetch(4), Some(Instr::Set { cmp: Cmp::Gt, .. })));
        assert!(matches!(p.fetch(5), Some(Instr::Branch { target: 9, .. })));
        assert!(matches!(p.fetch(8), Some(Instr::Branch { target: 4, .. })));
    }

    #[test]
    fn parses_memory_operand_forms() {
        let p = parse_program(
            "mov $29, 1000\nst $1, 8($29)\nld $2, -8($29)\nldi $3, $29, 16\nsti $4, $29, 24\nhalt",
        )
        .unwrap();
        assert_eq!(
            p.fetch(1),
            Some(&Instr::Store {
                rt: Reg::r(1),
                rs: Reg::r(29),
                offset: 8
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(&Instr::Load {
                rt: Reg::r(2),
                rs: Reg::r(29),
                offset: -8
            })
        );
        assert_eq!(
            p.fetch(3),
            Some(&Instr::Load {
                rt: Reg::r(3),
                rs: Reg::r(29),
                offset: 16
            })
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_program("; header\n\nnop ; trailing\nhalt -- also trailing\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn string_literal_may_contain_comment_chars() {
        let p = parse_program("prints \"a;b--c\"\nhalt").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(&Instr::PrintS {
                text: "a;b--c".into()
            })
        );
    }

    #[test]
    fn ret_is_jr_link() {
        let p = parse_program("ret\nhalt").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(&Instr::Jr {
                rs: crate::LINK_REG
            })
        );
    }

    #[test]
    fn call_and_jal_are_synonyms() {
        let p = parse_program("f: nop\ncall f\njal f\nhalt").unwrap();
        assert_eq!(p.fetch(1), Some(&Instr::Jal { target: 0 }));
        assert_eq!(p.fetch(2), Some(&Instr::Jal { target: 0 }));
    }

    #[test]
    fn undefined_label_reports_line() {
        let e = parse_program("jmp nowhere\nhalt").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse_program("x: nop\nx: halt").unwrap_err();
        assert_eq!(e, AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = parse_program("frobnicate $1\nhalt").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_register_rejected() {
        assert!(parse_program("mov $99, 1\nhalt").is_err());
    }

    #[test]
    fn arity_errors_are_reported() {
        assert!(parse_program("add $1, $2\nhalt").is_err());
        assert!(parse_program("nop $1\nhalt").is_err());
        assert!(parse_program("read 5\nhalt").is_err());
    }

    #[test]
    fn negative_and_hash_immediates() {
        let p = parse_program("mov $1, -42\naddi $2, $1, #7\nhalt").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(&Instr::Mov {
                rd: Reg::r(1),
                src: Operand::Imm(-42)
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(&Instr::Bin {
                op: BinOp::Add,
                rd: Reg::r(2),
                rs: Reg::r(1),
                src: Operand::Imm(7)
            })
        );
    }

    #[test]
    fn multiple_labels_same_address() {
        let p = parse_program("a: b: nop\nhalt").unwrap();
        assert_eq!(p.label_address("a"), Some(0));
        assert_eq!(p.label_address("b"), Some(0));
        assert_eq!(p.labels_at(0).len(), 2);
    }

    #[test]
    fn check_parses_detector_id() {
        let p = parse_program("check 4\nhalt").unwrap();
        assert_eq!(p.fetch(0), Some(&Instr::Check { id: 4 }));
        assert!(parse_program("check -1\nhalt").is_err());
    }

    #[test]
    fn roundtrip_listing_mentions_every_mnemonic() {
        let src = "mov $1, 1\nadd $2, $1, $1\nbeq $2, 2, end\nnop\nend: halt";
        let p = parse_program(src).unwrap();
        let listing = p.listing();
        for needle in ["mov", "add", "beq", "nop", "halt", "end:"] {
            assert!(
                listing.contains(needle),
                "listing missing {needle}: {listing}"
            );
        }
    }
}
