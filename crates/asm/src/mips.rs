//! MIPS front-end: translates a MIPS assembly subset into the generic
//! SymPLFIED assembly language.
//!
//! The paper (§5, "Supporting Tools") provides "a facility to translate
//! programs written directly in the target architecture's assembly language
//! into SymPLFIED's assembly language", supporting the MIPS instruction set.
//! This module is that facility. It handles the integer subset emitted by
//! compilers for the Siemens programs: three-operand ALU ops, immediates,
//! `lw`/`sw`, `lui`, branches (including `blez`/`bgez`/`bgtz`/`bltz`),
//! `slt`-family comparisons, `j`/`jal`/`jr`, `hi/lo` multiplication
//! (`mult`+`mflo`), common pseudo-instructions (`move`, `li`, `la`, `b`,
//! `not`, `neg`), and a `syscall` convention for I/O (`$v0`=5 read int,
//! `$v0`=1 print int, `$v0`=10 exit).
//!
//! ```
//! use sympl_asm::mips::translate_mips;
//!
//! let program = translate_mips(r#"
//!     main:
//!         li   $v0, 5        # read integer syscall
//!         syscall
//!         move $t0, $v0
//!         addi $t0, $t0, 1
//!         move $a0, $t0
//!         li   $v0, 1        # print integer syscall
//!         syscall
//!         li   $v0, 10       # exit syscall
//!         syscall
//! "#)?;
//! assert!(program.len() >= 6);
//! # Ok::<(), sympl_asm::AsmError>(())
//! ```

use std::collections::BTreeMap;

use crate::instr::BinOp;
use crate::{AsmError, Cmp, Instr, Operand, Program, Reg};

/// Resolves a MIPS register name (numeric `$8` or symbolic `$t0`) to a
/// register index in the generic machine.
///
/// # Errors
///
/// Returns [`AsmError::Parse`] (with line 0) for unknown names; callers
/// replace the line number.
pub fn mips_reg(name: &str) -> Result<Reg, AsmError> {
    let body = name.strip_prefix('$').unwrap_or(name);
    if let Ok(n) = body.parse::<u8>() {
        return Reg::new(n);
    }
    let idx: u8 = match body {
        "zero" => 0,
        "at" => 1,
        "v0" => 2,
        "v1" => 3,
        "a0" => 4,
        "a1" => 5,
        "a2" => 6,
        "a3" => 7,
        "t0" => 8,
        "t1" => 9,
        "t2" => 10,
        "t3" => 11,
        "t4" => 12,
        "t5" => 13,
        "t6" => 14,
        "t7" => 15,
        "s0" => 16,
        "s1" => 17,
        "s2" => 18,
        "s3" => 19,
        "s4" => 20,
        "s5" => 21,
        "s6" => 22,
        "s7" => 23,
        "t8" => 24,
        "t9" => 25,
        "k0" => 26,
        "k1" => 27,
        "gp" => 28,
        "sp" => 29,
        "fp" | "s8" => 30,
        "ra" => 31,
        _ => {
            return Err(AsmError::Parse {
                line: 0,
                message: format!("unknown MIPS register `{name}`"),
            })
        }
    };
    Reg::new(idx)
}

/// The `hi`/`lo` special registers are modeled as two scratch memory cells
/// well above any program data; `mult`/`div` write them, `mflo`/`mfhi`
/// read them. Register-file errors therefore do not hit hi/lo, matching
/// real MIPS where they sit in the multiply unit.
const HILO_BASE: i64 = 0x7FFF_F000;

struct Translator {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<(usize, usize, String)>,
    /// Pending `$v0` value loaded by `li $v0, n`, tracked so `syscall`
    /// can be translated statically.
    last_v0_imm: Option<i64>,
}

impl Translator {
    fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    fn emit_branch(&mut self, line: usize, cmp: Cmp, rs: Reg, src: Operand, label: &str) {
        self.fixups
            .push((self.instrs.len(), line, label.to_owned()));
        self.emit(Instr::Branch {
            cmp,
            rs,
            src,
            target: usize::MAX,
        });
    }
}

/// Translates MIPS assembly text into a generic-assembly [`Program`].
///
/// Directives (`.text`, `.globl`, …) are ignored; data directives are not
/// supported (the Siemens workloads in this repository declare data by
/// stores at startup instead).
///
/// # Errors
///
/// Returns [`AsmError::UnsupportedMips`] for instructions outside the
/// supported subset and [`AsmError::Parse`] for malformed operands.
pub fn translate_mips(source: &str) -> Result<Program, AsmError> {
    let mut tr = Translator {
        instrs: Vec::new(),
        labels: BTreeMap::new(),
        fixups: Vec::new(),
        last_v0_imm: None,
    };

    for (lineno0, raw) in source.lines().enumerate() {
        let line = lineno0 + 1;
        let mut text = raw;
        if let Some(i) = text.find('#') {
            text = &text[..i];
        }
        let mut text = text.trim();

        while let Some(colon) = text.find(':') {
            let head = text[..colon].trim();
            if head.is_empty()
                || !head
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
            {
                break;
            }
            if tr.labels.insert(head.to_owned(), tr.instrs.len()).is_some() {
                return Err(AsmError::DuplicateLabel(head.to_owned()));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() || text.starts_with('.') {
            continue;
        }

        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<String> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        translate_one(&mut tr, line, mnemonic, &ops)?;
    }

    let mut instrs = tr.instrs;
    for (at, lineno, label) in tr.fixups {
        let addr = *tr.labels.get(&label).ok_or_else(|| AsmError::Parse {
            line: lineno,
            message: format!("undefined label `{label}`"),
        })?;
        match &mut instrs[at] {
            Instr::Branch { target, .. } | Instr::Jmp { target } | Instr::Jal { target } => {
                *target = addr;
            }
            _ => unreachable!(),
        }
    }
    Program::new(instrs, tr.labels)
}

fn imm(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = s.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        s.parse::<i64>().ok()
    };
    parsed.ok_or_else(|| AsmError::Parse {
        line,
        message: format!("invalid immediate `{s}`"),
    })
}

fn reg_at(ops: &[String], i: usize, line: usize) -> Result<Reg, AsmError> {
    let s = ops.get(i).ok_or_else(|| AsmError::Parse {
        line,
        message: format!("missing operand {i}"),
    })?;
    mips_reg(s).map_err(|e| match e {
        AsmError::Parse { message, .. } => AsmError::Parse { line, message },
        other => other,
    })
}

fn mem_at(ops: &[String], i: usize, line: usize) -> Result<(i64, Reg), AsmError> {
    let s = ops.get(i).ok_or_else(|| AsmError::Parse {
        line,
        message: "missing memory operand".into(),
    })?;
    let open = s.find('(').ok_or_else(|| AsmError::Parse {
        line,
        message: format!("expected off(base), found `{s}`"),
    })?;
    if !s.ends_with(')') {
        return Err(AsmError::Parse {
            line,
            message: format!("unterminated memory operand `{s}`"),
        });
    }
    let off_str = s[..open].trim();
    let offset = if off_str.is_empty() {
        0
    } else {
        imm(off_str, line)?
    };
    let base = mips_reg(s[open + 1..s.len() - 1].trim()).map_err(|e| match e {
        AsmError::Parse { message, .. } => AsmError::Parse { line, message },
        other => other,
    })?;
    Ok((offset, base))
}

#[allow(clippy::too_many_lines)]
fn translate_one(
    tr: &mut Translator,
    line: usize,
    mnemonic: &str,
    ops: &[String],
) -> Result<(), AsmError> {
    let m = mnemonic.to_ascii_lowercase();
    // Track `li $v0, imm` for the syscall convention before general handling.
    if m == "li" || m == "addiu" || m == "addi" || m == "ori" {
        if let Some(first) = ops.first() {
            if mips_reg(first).ok() == Some(Reg::r(2)) {
                if let Some(last) = ops.last() {
                    tr.last_v0_imm = imm(last, line).ok();
                }
            }
        }
    } else if m != "syscall" {
        // Any other write to $v0 invalidates the tracked immediate.
        if ops
            .first()
            .and_then(|s| mips_reg(s).ok())
            .is_some_and(|r| r == Reg::r(2))
        {
            tr.last_v0_imm = None;
        }
    }

    let rr_imm_or_reg = |tr: &mut Translator, op: BinOp| -> Result<(), AsmError> {
        let rd = reg_at(ops, 0, line)?;
        let rs = reg_at(ops, 1, line)?;
        let src = match ops.get(2) {
            Some(s) if s.starts_with('$') => Operand::Reg(mips_reg(s).map_err(|e| match e {
                AsmError::Parse { message, .. } => AsmError::Parse { line, message },
                other => other,
            })?),
            Some(s) => Operand::Imm(imm(s, line)?),
            None => {
                return Err(AsmError::Parse {
                    line,
                    message: format!("`{m}` expects 3 operands"),
                })
            }
        };
        tr.emit(Instr::Bin { op, rd, rs, src });
        Ok(())
    };

    match m.as_str() {
        "add" | "addu" | "addi" | "addiu" => rr_imm_or_reg(tr, BinOp::Add)?,
        "sub" | "subu" => rr_imm_or_reg(tr, BinOp::Sub)?,
        "and" | "andi" => rr_imm_or_reg(tr, BinOp::And)?,
        "or" | "ori" => rr_imm_or_reg(tr, BinOp::Or)?,
        "xor" | "xori" => rr_imm_or_reg(tr, BinOp::Xor)?,
        "sll" | "sllv" => rr_imm_or_reg(tr, BinOp::Sll)?,
        "srl" | "srlv" => rr_imm_or_reg(tr, BinOp::Srl)?,
        "mul" => rr_imm_or_reg(tr, BinOp::Mul)?,
        "nor" => {
            // rd = ~(rs | rt): emitted as or + xor -1.
            let rd = reg_at(ops, 0, line)?;
            let rs = reg_at(ops, 1, line)?;
            let rt = reg_at(ops, 2, line)?;
            tr.emit(Instr::Bin {
                op: BinOp::Or,
                rd,
                rs,
                src: Operand::Reg(rt),
            });
            tr.emit(Instr::Bin {
                op: BinOp::Xor,
                rd,
                rs: rd,
                src: Operand::Imm(-1),
            });
        }
        "not" => {
            let rd = reg_at(ops, 0, line)?;
            let rs = reg_at(ops, 1, line)?;
            tr.emit(Instr::Bin {
                op: BinOp::Xor,
                rd,
                rs,
                src: Operand::Imm(-1),
            });
        }
        "neg" | "negu" => {
            let rd = reg_at(ops, 0, line)?;
            let rs = reg_at(ops, 1, line)?;
            tr.emit(Instr::Bin {
                op: BinOp::Sub,
                rd,
                rs: crate::ZERO_REG,
                src: Operand::Reg(rs),
            });
        }
        "mult" | "multu" => {
            // lo <- rs*rt (hi not modeled beyond zero), via scratch cells.
            let rs = reg_at(ops, 0, line)?;
            let rt = reg_at(ops, 1, line)?;
            // Use $1 ($at, the assembler temporary) as staging, as real
            // assemblers do for pseudo-expansions.
            let at = Reg::r(1);
            tr.emit(Instr::Bin {
                op: BinOp::Mul,
                rd: at,
                rs,
                src: Operand::Reg(rt),
            });
            tr.emit(Instr::Store {
                rt: at,
                rs: crate::ZERO_REG,
                offset: HILO_BASE,
            });
        }
        "div" if ops.len() == 2 => {
            let rs = reg_at(ops, 0, line)?;
            let rt = reg_at(ops, 1, line)?;
            let at = Reg::r(1);
            tr.emit(Instr::Bin {
                op: BinOp::Div,
                rd: at,
                rs,
                src: Operand::Reg(rt),
            });
            tr.emit(Instr::Store {
                rt: at,
                rs: crate::ZERO_REG,
                offset: HILO_BASE,
            });
            tr.emit(Instr::Bin {
                op: BinOp::Rem,
                rd: at,
                rs,
                src: Operand::Reg(rt),
            });
            tr.emit(Instr::Store {
                rt: at,
                rs: crate::ZERO_REG,
                offset: HILO_BASE + 8,
            });
        }
        "div" | "divu" => rr_imm_or_reg(tr, BinOp::Div)?,
        "mflo" => {
            let rd = reg_at(ops, 0, line)?;
            tr.emit(Instr::Load {
                rt: rd,
                rs: crate::ZERO_REG,
                offset: HILO_BASE,
            });
        }
        "mfhi" => {
            let rd = reg_at(ops, 0, line)?;
            tr.emit(Instr::Load {
                rt: rd,
                rs: crate::ZERO_REG,
                offset: HILO_BASE + 8,
            });
        }
        "slt" | "sltu" => {
            let rd = reg_at(ops, 0, line)?;
            let rs = reg_at(ops, 1, line)?;
            let rt = reg_at(ops, 2, line)?;
            tr.emit(Instr::Set {
                cmp: Cmp::Lt,
                rd,
                rs,
                src: Operand::Reg(rt),
            });
        }
        "slti" | "sltiu" => {
            let rd = reg_at(ops, 0, line)?;
            let rs = reg_at(ops, 1, line)?;
            let v = imm(ops.get(2).map(String::as_str).unwrap_or(""), line)?;
            tr.emit(Instr::Set {
                cmp: Cmp::Lt,
                rd,
                rs,
                src: Operand::Imm(v),
            });
        }
        "lw" | "lb" | "lbu" | "lh" | "lhu" => {
            let rt = reg_at(ops, 0, line)?;
            let (offset, base) = mem_at(ops, 1, line)?;
            tr.emit(Instr::Load {
                rt,
                rs: base,
                offset,
            });
        }
        "sw" | "sb" | "sh" => {
            let rt = reg_at(ops, 0, line)?;
            let (offset, base) = mem_at(ops, 1, line)?;
            tr.emit(Instr::Store {
                rt,
                rs: base,
                offset,
            });
        }
        "lui" => {
            let rd = reg_at(ops, 0, line)?;
            let v = imm(ops.get(1).map(String::as_str).unwrap_or(""), line)?;
            tr.emit(Instr::Mov {
                rd,
                src: Operand::Imm(v << 16),
            });
        }
        "li" | "la" => {
            let rd = reg_at(ops, 0, line)?;
            let v = imm(ops.get(1).map(String::as_str).unwrap_or(""), line)?;
            tr.emit(Instr::Mov {
                rd,
                src: Operand::Imm(v),
            });
        }
        "move" => {
            let rd = reg_at(ops, 0, line)?;
            let rs = reg_at(ops, 1, line)?;
            tr.emit(Instr::Mov {
                rd,
                src: Operand::Reg(rs),
            });
        }
        "beq" | "bne" => {
            let rs = reg_at(ops, 0, line)?;
            let rt_str = ops.get(1).ok_or_else(|| AsmError::Parse {
                line,
                message: "missing comparand".into(),
            })?;
            let src = if rt_str.starts_with('$') {
                Operand::Reg(mips_reg(rt_str).map_err(|e| match e {
                    AsmError::Parse { message, .. } => AsmError::Parse { line, message },
                    other => other,
                })?)
            } else {
                Operand::Imm(imm(rt_str, line)?)
            };
            let label = ops.get(2).ok_or_else(|| AsmError::Parse {
                line,
                message: "missing branch target".into(),
            })?;
            let cmp = if m == "beq" { Cmp::Eq } else { Cmp::Ne };
            tr.emit_branch(line, cmp, rs, src, label);
        }
        "beqz" | "bnez" | "blez" | "bgez" | "bgtz" | "bltz" => {
            let rs = reg_at(ops, 0, line)?;
            let label = ops.get(1).ok_or_else(|| AsmError::Parse {
                line,
                message: "missing branch target".into(),
            })?;
            let cmp = match m.as_str() {
                "beqz" => Cmp::Eq,
                "bnez" => Cmp::Ne,
                "blez" => Cmp::Le,
                "bgez" => Cmp::Ge,
                "bgtz" => Cmp::Gt,
                _ => Cmp::Lt,
            };
            tr.emit_branch(line, cmp, rs, Operand::Imm(0), label);
        }
        "j" | "b" => {
            let label = ops.first().ok_or_else(|| AsmError::Parse {
                line,
                message: "missing jump target".into(),
            })?;
            tr.fixups.push((tr.instrs.len(), line, label.clone()));
            tr.emit(Instr::Jmp { target: usize::MAX });
        }
        "jal" => {
            let label = ops.first().ok_or_else(|| AsmError::Parse {
                line,
                message: "missing call target".into(),
            })?;
            tr.fixups.push((tr.instrs.len(), line, label.clone()));
            tr.emit(Instr::Jal { target: usize::MAX });
        }
        "jr" => {
            let rs = reg_at(ops, 0, line)?;
            tr.emit(Instr::Jr { rs });
        }
        "nop" => tr.emit(Instr::Nop),
        "syscall" => match tr.last_v0_imm {
            Some(5) => tr.emit(Instr::Read { rd: Reg::r(2) }), // read int -> $v0
            Some(1) => tr.emit(Instr::Print { rs: Reg::r(4) }), // print $a0
            Some(10) => tr.emit(Instr::Halt),
            _ => {
                return Err(AsmError::UnsupportedMips {
                    line,
                    mnemonic: "syscall (unknown $v0 service)".into(),
                })
            }
        },
        other => {
            return Err(AsmError::UnsupportedMips {
                line,
                mnemonic: other.to_owned(),
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_resolve() {
        assert_eq!(mips_reg("$zero").unwrap(), Reg::r(0));
        assert_eq!(mips_reg("$v0").unwrap(), Reg::r(2));
        assert_eq!(mips_reg("$a0").unwrap(), Reg::r(4));
        assert_eq!(mips_reg("$t0").unwrap(), Reg::r(8));
        assert_eq!(mips_reg("$s0").unwrap(), Reg::r(16));
        assert_eq!(mips_reg("$sp").unwrap(), Reg::r(29));
        assert_eq!(mips_reg("$ra").unwrap(), Reg::r(31));
        assert_eq!(mips_reg("$17").unwrap(), Reg::r(17));
        assert!(mips_reg("$bogus").is_err());
    }

    #[test]
    fn translates_alu_and_memory() {
        let p = translate_mips(
            "main:\n  addiu $sp, $sp, -8\n  li $t0, 7\n  sw $t0, 4($sp)\n  lw $t1, 4($sp)\n  addu $t2, $t0, $t1\n  jr $ra\n",
        )
        .unwrap();
        assert_eq!(p.label_address("main"), Some(0));
        assert!(matches!(
            p.fetch(0),
            Some(Instr::Bin { op: BinOp::Add, .. })
        ));
        assert!(matches!(p.fetch(2), Some(Instr::Store { offset: 4, .. })));
        assert!(matches!(p.fetch(3), Some(Instr::Load { offset: 4, .. })));
        assert!(matches!(p.fetch(5), Some(Instr::Jr { .. })));
    }

    #[test]
    fn translates_branches_and_zero_forms() {
        let p = translate_mips(
            "start:\n  beq $t0, $t1, start\n  bne $t0, 3, start\n  blez $t0, start\n  bgtz $t0, start\n  beqz $t0, start\n  nop\n",
        )
        .unwrap();
        assert!(matches!(
            p.fetch(0),
            Some(Instr::Branch {
                cmp: Cmp::Eq,
                target: 0,
                ..
            })
        ));
        assert!(matches!(
            p.fetch(2),
            Some(Instr::Branch {
                cmp: Cmp::Le,
                src: Operand::Imm(0),
                ..
            })
        ));
        assert!(matches!(
            p.fetch(3),
            Some(Instr::Branch { cmp: Cmp::Gt, .. })
        ));
    }

    #[test]
    fn mult_mflo_roundtrip_through_scratch() {
        let p = translate_mips("  li $t0, 6\n  li $t1, 7\n  mult $t0, $t1\n  mflo $t2\n  jr $ra\n")
            .unwrap();
        // mult expands to mul+store; mflo to load from the same cell.
        assert!(matches!(
            p.fetch(2),
            Some(Instr::Bin { op: BinOp::Mul, .. })
        ));
        let (st_off, ld_off) = match (p.fetch(3), p.fetch(4)) {
            (Some(Instr::Store { offset: a, .. }), Some(Instr::Load { offset: b, .. })) => (*a, *b),
            other => panic!("unexpected expansion {other:?}"),
        };
        assert_eq!(st_off, ld_off);
    }

    #[test]
    fn syscall_convention() {
        let p = translate_mips(
            "  li $v0, 5\n  syscall\n  move $a0, $v0\n  li $v0, 1\n  syscall\n  li $v0, 10\n  syscall\n",
        )
        .unwrap();
        let kinds: Vec<&Instr> = p.instrs().iter().collect();
        assert!(kinds.iter().any(|i| matches!(i, Instr::Read { .. })));
        assert!(kinds.iter().any(|i| matches!(i, Instr::Print { .. })));
        assert!(matches!(kinds.last().unwrap(), Instr::Halt));
    }

    #[test]
    fn unknown_syscall_service_is_unsupported() {
        let e = translate_mips("  li $v0, 99\n  syscall\n").unwrap_err();
        assert!(matches!(e, AsmError::UnsupportedMips { line: 2, .. }));
    }

    #[test]
    fn unsupported_instruction_reported_with_line() {
        let e = translate_mips("  nop\n  mfc0 $t0, $12\n").unwrap_err();
        assert!(
            matches!(e, AsmError::UnsupportedMips { line: 2, ref mnemonic } if mnemonic == "mfc0")
        );
    }

    #[test]
    fn directives_and_comments_ignored() {
        let p =
            translate_mips(".text\n.globl main\nmain: # entry\n  nop # body\n  jr $ra\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn hex_immediates() {
        let p = translate_mips("  li $t0, 0x10\n  jr $ra\n").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(&Instr::Mov {
                rd: Reg::r(8),
                src: Operand::Imm(16)
            })
        );
    }

    #[test]
    fn lui_shifts_immediate() {
        let p = translate_mips("  lui $t0, 1\n  jr $ra\n").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(&Instr::Mov {
                rd: Reg::r(8),
                src: Operand::Imm(1 << 16)
            })
        );
    }

    #[test]
    fn pseudo_not_neg_move() {
        let p =
            translate_mips("  not $t0, $t1\n  neg $t2, $t3\n  move $t4, $t5\n  jr $ra\n").unwrap();
        assert!(matches!(
            p.fetch(0),
            Some(Instr::Bin { op: BinOp::Xor, .. })
        ));
        assert!(matches!(
            p.fetch(1),
            Some(Instr::Bin { op: BinOp::Sub, .. })
        ));
        assert!(matches!(p.fetch(2), Some(Instr::Mov { .. })));
    }
}
