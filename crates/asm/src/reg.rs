//! Register naming for the generic assembly language.

use std::fmt;

use crate::AsmError;

/// Number of architectural registers in the machine model.
pub const NUM_REGS: usize = 32;

/// Register `$0`: hard-wired to zero (reads return 0, writes are discarded).
pub const ZERO_REG: Reg = Reg(0);

/// Register `$29`: by convention the stack pointer used by compiled code.
pub const STACK_REG: Reg = Reg(29);

/// Register `$31`: the link register written by [`crate::Instr::Jal`].
pub const LINK_REG: Reg = Reg(31);

/// An architectural register `$0`..`$31`.
///
/// `Reg` is a validated newtype: a value can only be constructed through
/// [`Reg::new`], which rejects indices outside the register file, so every
/// `Reg` in an instruction stream is in range by construction.
///
/// ```
/// use sympl_asm::Reg;
/// let r = Reg::new(3)?;
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "$3");
/// assert!(Reg::new(32).is_err());
/// # Ok::<(), sympl_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::InvalidRegister`] if `index >= 32`.
    pub fn new(index: u8) -> Result<Self, AsmError> {
        if usize::from(index) < NUM_REGS {
            Ok(Reg(index))
        } else {
            Err(AsmError::InvalidRegister(index))
        }
    }

    /// Creates a register, panicking on an out-of-range index.
    ///
    /// Convenience for building programs from literals.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn r(index: u8) -> Self {
        Self::new(index).expect("register index out of range")
    }

    /// The register's index within the register file.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hard-wired zero register `$0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over every register in the file, `$0` through `$31`.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl TryFrom<u8> for Reg {
    type Error = AsmError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        Reg::new(value)
    }
}

impl From<Reg> for u8 {
    fn from(value: Reg) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_all_file_registers() {
        for i in 0..32 {
            assert!(Reg::new(i).is_ok(), "register {i} should be valid");
        }
    }

    #[test]
    fn new_rejects_out_of_range() {
        for i in [32u8, 33, 100, 255] {
            assert!(matches!(Reg::new(i), Err(AsmError::InvalidRegister(n)) if n == i));
        }
    }

    #[test]
    fn display_uses_dollar_prefix() {
        assert_eq!(Reg::r(0).to_string(), "$0");
        assert_eq!(Reg::r(31).to_string(), "$31");
    }

    #[test]
    fn zero_register_identified() {
        assert!(ZERO_REG.is_zero());
        assert!(!LINK_REG.is_zero());
        assert_eq!(LINK_REG.index(), 31);
        assert_eq!(STACK_REG.index(), 29);
    }

    #[test]
    fn all_yields_32_distinct() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn conversions_roundtrip() {
        let r = Reg::try_from(7u8).unwrap();
        assert_eq!(u8::from(r), 7);
    }
}
