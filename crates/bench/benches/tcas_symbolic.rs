//! §6.2 benchmark: the catastrophic-outcome search on tcas.
//!
//! Measures one campaign unit — the `$31` return-address injection at the
//! `Non_Crossing_Biased_Climb` return, searched for the exact catastrophic
//! output `2` — and a representative data-register injection for contrast.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sympl_asm::{Instr, Reg};
use sympl_bench::campaign_limits;
use sympl_check::Predicate;
use sympl_inject::{run_point, InjectTarget, InjectionPoint};

fn ncbc_return(program: &sympl_asm::Program) -> usize {
    let epilogue = program.label_address("ncbc_done").expect("tcas label");
    let jr = epilogue + 2;
    assert!(matches!(program.fetch(jr), Some(Instr::Jr { .. })));
    jr
}

fn bench_catastrophic(c: &mut Criterion) {
    let w = sympl_apps::tcas();
    let point = InjectionPoint::new(ncbc_return(&w.program), InjectTarget::Register(Reg::r(31)));
    c.bench_function("tcas_catastrophic_search", |b| {
        b.iter(|| {
            let out = run_point(
                &w.program,
                &w.detectors,
                &w.input,
                black_box(&point),
                &Predicate::ExactOutput { output: vec![2] },
                &campaign_limits(w.max_steps),
            );
            assert!(out.found_errors());
            black_box(out.report.states_explored)
        });
    });
}

fn bench_data_register(c: &mut Criterion) {
    let w = sympl_apps::tcas();
    // An instruction inside alt_sep_test that uses $8 (the enabled
    // computation): a plain data-register error for contrast with the
    // control error above.
    let ast = w.program.label_address("alt_sep_test").expect("tcas label");
    let point = InjectionPoint::new(ast + 3, InjectTarget::Register(Reg::r(8)));
    c.bench_function("tcas_data_register_search", |b| {
        b.iter(|| {
            let out = run_point(
                &w.program,
                &w.detectors,
                &w.input,
                black_box(&point),
                &Predicate::WrongOutput { expected: vec![1] },
                &campaign_limits(w.max_steps),
            );
            black_box(out.report.states_explored)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_catastrophic, bench_data_register
}
criterion_main!(benches);
