//! Ablation (DESIGN.md ⚗4): control-error fork fan-out caps.
//!
//! The paper's model forks an erroneous jump target over *every* valid
//! code location. Capping the fan-out trades exhaustiveness (the
//! catastrophic tcas landing may be sampled away) for time. This bench
//! sweeps the cap on the §6.2 injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sympl_asm::{Instr, Reg};
use sympl_check::{Predicate, SearchLimits};
use sympl_inject::{run_point, InjectTarget, InjectionPoint};
use sympl_machine::ExecLimits;

fn bench_fanout(c: &mut Criterion) {
    let w = sympl_apps::tcas();
    let epilogue = w.program.label_address("ncbc_done").unwrap();
    let jr = epilogue + 2;
    assert!(matches!(w.program.fetch(jr), Some(Instr::Jr { .. })));
    let point = InjectionPoint::new(jr, InjectTarget::Register(Reg::r(31)));

    let mut group = c.benchmark_group("ablation_fanout");
    for cap in [Some(4usize), Some(16), Some(64), None] {
        let label = cap.map_or("all".to_string(), |c| c.to_string());
        let limits = SearchLimits {
            exec: ExecLimits {
                max_steps: w.max_steps,
                fork_jump_targets: cap,
                ..ExecLimits::default()
            },
            max_states: 500_000,
            max_solutions: 10,
            max_time: None,
            ..SearchLimits::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(&label), &limits, |b, limits| {
            b.iter(|| {
                let out = run_point(
                    &w.program,
                    &w.detectors,
                    &w.input,
                    black_box(&point),
                    &Predicate::ExactOutput { output: vec![2] },
                    limits,
                );
                black_box((out.report.states_explored, out.report.solutions.len()))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fanout
}
criterion_main!(benches);
