//! Figures 2 & 3 benchmark: symbolic search on the factorial programs.
//!
//! Measures the §4 walkthrough — the loop-counter injection on the plain
//! (Figure 2) and detector-protected (Figure 3) factorial. The injected
//! counter can loop to the watchdog, so search *time* scales with the
//! instruction bound (swept below), while the number of distinct halting
//! outcomes scales with n (the §4.1 ≤ n+1 claim, asserted by the
//! `fig2_fig3` binary) — never with the 2^k concrete value space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sympl_asm::Reg;
use sympl_check::{Predicate, SearchLimits};
use sympl_inject::{run_point, InjectTarget, InjectionPoint};
use sympl_machine::ExecLimits;

fn limits(max_steps: u64) -> SearchLimits {
    SearchLimits {
        exec: ExecLimits::with_max_steps(max_steps),
        max_solutions: 1_000,
        ..SearchLimits::default()
    }
}

fn bench_factorial(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_factorial_search");
    let w = sympl_apps::factorial().with_input(vec![5]);
    let point = InjectionPoint::new(7, InjectTarget::Register(Reg::r(3)));
    for max_steps in [250u64, 500, 1_000, 2_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_steps),
            &max_steps,
            |b, &max_steps| {
                b.iter(|| {
                    let out = run_point(
                        &w.program,
                        &w.detectors,
                        &w.input,
                        black_box(&point),
                        &Predicate::Any,
                        &limits(max_steps),
                    );
                    black_box(out.report.states_explored)
                });
            },
        );
    }
    group.finish();
}

fn bench_factorial_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_factorial_detectors");
    let w = sympl_apps::factorial_with_detectors().with_input(vec![5]);
    let point = InjectionPoint::new(10, InjectTarget::Register(Reg::r(3)));
    for max_steps in [250u64, 500, 1_000, 2_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_steps),
            &max_steps,
            |b, &max_steps| {
                b.iter(|| {
                    let out = run_point(
                        &w.program,
                        &w.detectors,
                        &w.input,
                        black_box(&point),
                        &Predicate::Detected,
                        &limits(max_steps),
                    );
                    black_box(out.report.solutions.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_factorial, bench_factorial_detectors
}
criterion_main!(benches);
