//! Table 2 benchmark: throughput of the SimpleScalar-substitute concrete
//! injection campaign on tcas (runs per second drive how many faults a
//! fixed wall budget can cover — the axis on which the paper compares
//! 6253/41082 concrete injections against the symbolic search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use sympl_machine::ExecLimits;
use sympl_ssim::{enumerate_concrete_points, run_campaign, run_injected, CampaignConfig};

fn bench_single_run(c: &mut Criterion) {
    let w = sympl_apps::tcas();
    let points = enumerate_concrete_points(&w.program);
    let point = points[points.len() / 2];
    let limits = ExecLimits::with_max_steps(w.max_steps);
    c.bench_function("ssim_single_injected_run", |b| {
        b.iter(|| {
            black_box(run_injected(
                &w.program,
                &w.detectors,
                &w.input,
                black_box(&point),
                -1,
                &limits,
            ))
        });
    });
}

fn bench_campaign(c: &mut Criterion) {
    let w = sympl_apps::tcas();
    let limits = ExecLimits::with_max_steps(w.max_steps);
    let mut group = c.benchmark_group("ssim_campaign");
    for random_per_point in [3usize, 9] {
        let config = CampaignConfig {
            random_per_point,
            ..CampaignConfig::default()
        };
        let runs = enumerate_concrete_points(&w.program).len() * (3 + random_per_point);
        group.throughput(Throughput::Elements(runs as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(random_per_point),
            &config,
            |b, config| {
                b.iter(|| {
                    let report = run_campaign(&w.program, &w.detectors, &w.input, config, &limits);
                    assert!(!report.saw_output(&[2]));
                    black_box(report.total_runs())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_run, bench_campaign
}
criterion_main!(benches);
