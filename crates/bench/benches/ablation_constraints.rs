//! Ablation (DESIGN.md ⚗1): the constraint solver on vs off.
//!
//! With the solver disabled, forked comparisons learn nothing: later
//! comparisons on the same erroneous location re-fork inconsistently, the
//! state space grows, and spurious outcomes (false positives) appear. This
//! bench measures the time cost; the companion test in `tests/` checks the
//! state-count and false-positive effects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sympl_asm::Reg;
use sympl_check::{Predicate, SearchLimits};
use sympl_inject::{run_point, InjectTarget, InjectionPoint};
use sympl_machine::ExecLimits;

fn limits(track_constraints: bool) -> SearchLimits {
    SearchLimits {
        exec: ExecLimits {
            max_steps: 1_000,
            track_constraints,
            ..ExecLimits::default()
        },
        max_states: 200_000,
        max_solutions: 1_000,
        max_time: None,
        ..SearchLimits::default()
    }
}

fn bench_constraint_ablation(c: &mut Criterion) {
    let w = sympl_apps::factorial_with_detectors().with_input(vec![6]);
    let point = InjectionPoint::new(10, InjectTarget::Register(Reg::r(3)));
    let mut group = c.benchmark_group("ablation_constraints");
    for (label, track) in [("solver_on", true), ("solver_off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &track, |b, &track| {
            b.iter(|| {
                let out = run_point(
                    &w.program,
                    &w.detectors,
                    &w.input,
                    black_box(&point),
                    &Predicate::Any,
                    &limits(track),
                );
                black_box(out.report.states_explored)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_constraint_ablation
}
criterion_main!(benches);
