//! §6.4 benchmark: symbolic injections on replace.
//!
//! Measures the paper's example scenario — corrupting the `dodash` range
//! parameter so an erroneous pattern is constructed — and a whole-function
//! sweep over `makepat`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use sympl_asm::Reg;
use sympl_check::{Predicate, SearchLimits};
use sympl_inject::{enumerate_points, run_point, ErrorClass, InjectTarget, InjectionPoint};
use sympl_machine::ExecLimits;

fn limits() -> SearchLimits {
    SearchLimits {
        exec: ExecLimits::with_max_steps(20_000),
        max_states: 60_000,
        max_solutions: 10,
        max_time: Some(Duration::from_secs(20)),
        ..SearchLimits::default()
    }
}

fn bench_dodash_injection(c: &mut Criterion) {
    let w = sympl_apps::replace();
    let golden = sympl_apps::golden(&w).output_ints();
    // dd_loop's `setgt $9, $8, $5` reads the range-end parameter $5.
    let dd = w.program.label_address("dd_loop").expect("replace label");
    let point = InjectionPoint::new(dd, InjectTarget::Register(Reg::r(5)));
    c.bench_function("replace_dodash_injection", |b| {
        b.iter(|| {
            let out = run_point(
                &w.program,
                &w.detectors,
                &w.input,
                black_box(&point),
                &Predicate::WrongOutput {
                    expected: golden.clone(),
                },
                &limits(),
            );
            black_box(out.report.states_explored)
        });
    });
}

fn bench_makepat_sweep(c: &mut Criterion) {
    let w = sympl_apps::replace();
    let golden = sympl_apps::golden(&w).output_ints();
    let makepat = w.program.label_address("makepat").unwrap();
    let getccl = w.program.label_address("getccl").unwrap();
    let points: Vec<_> = enumerate_points(&w.program, &ErrorClass::RegisterFile)
        .into_iter()
        .filter(|p| p.breakpoint >= makepat && p.breakpoint < getccl)
        .collect();
    assert!(!points.is_empty());
    c.bench_function("replace_makepat_sweep", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for point in &points {
                let out = run_point(
                    &w.program,
                    &w.detectors,
                    &w.input,
                    point,
                    &Predicate::WrongOutput {
                        expected: golden.clone(),
                    },
                    &limits(),
                );
                findings += out.report.solutions.len();
            }
            black_box(findings)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dodash_injection, bench_makepat_sweep
}
criterion_main!(benches);
