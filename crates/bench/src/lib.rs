//! # sympl-bench — shared harness code for the table/figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index); the Criterion benches under
//! `benches/` measure the same workloads. This library holds the shared
//! plumbing: ASCII table rendering, Table-2 outcome bucketing, and the
//! standard campaign configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use sympl_check::SearchLimits;
use sympl_machine::ExecLimits;
use sympl_ssim::{ConcreteOutcome, SsimReport};

/// Renders an ASCII table with a header row.
///
/// ```
/// let t = sympl_bench::render_table(
///     &["Outcome", "Count"],
///     &[vec!["1".into(), "3364".into()], vec!["2".into(), "0".into()]],
/// );
/// assert!(t.contains("Outcome"));
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{}-", "-".repeat(*w));
        }
        out.push_str("+\n");
    };
    rule(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:w$} ", h, w = widths[i]);
    }
    out.push_str("|\n");
    rule(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
        }
        out.push_str("|\n");
    }
    rule(&mut out);
    out
}

/// The Table-2 outcome buckets for tcas: printed advisory 0/1/2, any other
/// normal output, crash, hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table2Bucket {
    /// Printed exactly `0`.
    Zero,
    /// Printed exactly `1` (the correct advisory for the evaluation input).
    One,
    /// Printed exactly `2` (the catastrophic advisory).
    Two,
    /// Halted normally with any other output.
    Other,
    /// Threw an exception.
    Crash,
    /// Watchdog timeout.
    Hang,
}

impl Table2Bucket {
    /// Buckets one concrete outcome.
    #[must_use]
    pub fn classify(outcome: &ConcreteOutcome) -> Self {
        match outcome {
            ConcreteOutcome::Output(v) if v.as_slice() == [0] => Table2Bucket::Zero,
            ConcreteOutcome::Output(v) if v.as_slice() == [1] => Table2Bucket::One,
            ConcreteOutcome::Output(v) if v.as_slice() == [2] => Table2Bucket::Two,
            ConcreteOutcome::Output(_) => Table2Bucket::Other,
            ConcreteOutcome::Crash(_) => Table2Bucket::Crash,
            // Detections count as crashes for Table 2 purposes: the run
            // stopped before producing an advisory. (tcas has no
            // detectors, so this bucket stays empty there.)
            ConcreteOutcome::Detected(_) => Table2Bucket::Crash,
            ConcreteOutcome::Hang => Table2Bucket::Hang,
        }
    }

    /// The row label used in the paper's Table 2.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Table2Bucket::Zero => "0",
            Table2Bucket::One => "1",
            Table2Bucket::Two => "2",
            Table2Bucket::Other => "Other",
            Table2Bucket::Crash => "Crash",
            Table2Bucket::Hang => "Hang",
        }
    }

    /// All buckets in the paper's row order.
    pub const ALL: [Table2Bucket; 6] = [
        Table2Bucket::Zero,
        Table2Bucket::One,
        Table2Bucket::Two,
        Table2Bucket::Other,
        Table2Bucket::Crash,
        Table2Bucket::Hang,
    ];
}

/// Aggregates an ssim report into Table-2 bucket counts (paper row order).
#[must_use]
pub fn table2_counts(report: &SsimReport) -> Vec<(Table2Bucket, usize)> {
    Table2Bucket::ALL
        .iter()
        .map(|&bucket| {
            let n = report.count_where(|o| Table2Bucket::classify(o) == bucket);
            (bucket, n)
        })
        .collect()
}

/// Renders Table-2 counts with percentages, like the paper's columns.
#[must_use]
pub fn render_table2(report: &SsimReport, caption: &str) -> String {
    let total = report.total_runs().max(1);
    let rows: Vec<Vec<String>> = table2_counts(report)
        .into_iter()
        .map(|(bucket, n)| {
            vec![
                bucket.label().to_string(),
                format!("{:.2}% ({n})", 100.0 * n as f64 / total as f64),
            ]
        })
        .collect();
    format!(
        "{caption} — {} faults\n{}",
        report.total_runs(),
        render_table(&["Program Outcome", "Percentage"], &rows)
    )
}

/// Distributed-campaign plumbing shared by the campaign binaries:
/// `--workers-at` / `--spawn-workers` / `--verify-local` parsing, the
/// fault-tolerance flags (`--checkpoint` / `--resume` /
/// `--heartbeat-interval` and the chaos-injection flags the
/// `just chaos-demo` CI gate drives), the elastic-membership flags
/// (`--allow-join` / `--join-late` / `--split-idle` / `--expect-split`
/// behind `just elastic-demo`), the loopback self-spawn worker mode,
/// and the gating digest comparison the `distributed-campaign` CI job
/// (and `just cluster-demo`) rides on.
pub mod net {
    use std::net::TcpListener;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    use sympl_apps::Workload;
    use sympl_check::Predicate;
    use sympl_cluster::{run_cluster, CampaignReport, ClusterConfig};
    use sympl_inject::Campaign;
    use sympl_wire::{
        join_coordinator, run_distributed_with, spawn_loopback_workers, CampaignJob, ChaosPlan,
        DistOptions, WireError, WorkerServer, DEFAULT_HEARTBEAT_INTERVAL,
    };

    /// The hidden flag that re-runs a campaign binary as a loopback
    /// worker process (the self-spawn mode used by `--spawn-workers`).
    pub const SERVE_FLAG: &str = "--serve-loopback";

    /// The hidden flag that re-runs a campaign binary as an elastic
    /// late joiner: it dials the coordinator's join listener (the next
    /// argument), registers, and serves tasks from the live queue (the
    /// self-spawn mode used by `--join-late`).
    pub const JOIN_FLAG: &str = "--join-loopback";

    /// If the process was invoked in a self-spawn worker mode, serve
    /// distributed-campaign tasks until the coordinator's shutdown frame
    /// (or hang-up), then exit the process. Campaign binaries call this
    /// first thing in `main`. Two modes: [`SERVE_FLAG`] listens on a
    /// loopback port for the coordinator to dial in; [`JOIN_FLAG`] dials
    /// a running campaign's join listener instead.
    ///
    /// # Panics
    ///
    /// Panics if the loopback socket cannot be bound or the serve loop
    /// fails — a worker that cannot work should die loudly.
    pub fn maybe_serve_loopback() {
        let resolve = |id: &str| sympl_apps::resolve_workload(id).map(|w| (w.program, w.detectors));
        let args: Vec<String> = std::env::args().collect();
        if let Some(pos) = args.iter().position(|a| a == JOIN_FLAG) {
            let addr = args
                .get(pos + 1)
                .expect("--join-loopback expects the coordinator's join address");
            let label = format!("late-joiner-pid{}", std::process::id());
            join_coordinator(addr, &label, &resolve).expect("join the running campaign");
            std::process::exit(0);
        }
        if !args.iter().any(|a| a == SERVE_FLAG) {
            return;
        }
        let server = WorkerServer::bind("127.0.0.1:0").expect("bind a loopback port");
        server.announce().expect("announce the bound address");
        server
            .serve(&resolve)
            .expect("serve distributed-campaign tasks");
        std::process::exit(0);
    }

    /// Distribution options parsed from a campaign binary's arguments.
    #[derive(Debug, Clone, Default)]
    pub struct DistMode {
        /// Remote worker addresses from `--workers-at host:port,…`.
        pub workers_at: Vec<String>,
        /// Loopback worker processes to self-spawn (`--spawn-workers N`).
        pub spawn_workers: usize,
        /// `--verify-local`: also run the campaign in-process and gate on
        /// the two outcome digests matching.
        pub verify_local: bool,
        /// `--checkpoint <path>`: append every completed task to a
        /// checkpoint file a crashed coordinator can `--resume` from.
        pub checkpoint: Option<PathBuf>,
        /// `--resume <path>`: seed completed tasks from a checkpoint and
        /// re-queue only the missing shards.
        pub resume: Option<PathBuf>,
        /// `--heartbeat-interval <ms>`: worker heartbeat cadence (the
        /// liveness deadline derives from it); default 500 ms.
        pub heartbeat_interval: Option<Duration>,
        /// `--chaos-kill-one`: SIGKILL the first self-spawned loopback
        /// worker after the first pooled result — the
        /// kill-a-worker-mid-campaign chaos leg (needs `--spawn-workers`
        /// ≥ 2 so a survivor remains).
        pub chaos_kill_one: bool,
        /// `--chaos-abort-after <n>`: abort the coordinator (exit 0,
        /// checkpoint retained) once `n` results have been pooled — the
        /// kill-the-coordinator chaos leg a later `--resume` completes.
        pub chaos_abort_after: Option<usize>,
        /// `--allow-join`: open a join listener so freshly started
        /// workers (`symplfied serve --join HOST:PORT`) can enter the
        /// campaign while it runs.
        pub allow_join: bool,
        /// `--join-late <n>`: self-spawn `n` late-joiner processes
        /// against the join listener once the first result is pooled —
        /// the elastic-membership chaos leg (implies `--allow-join`).
        pub join_late: usize,
        /// `--split-idle`: let an idle worker steal half of the largest
        /// in-flight shard (wire-level split), when the campaign-wide
        /// exactness gate allows it.
        pub split_idle: bool,
        /// `--expect-split`: gate (exit 2) unless at least one shard
        /// split actually happened — keeps the elastic CI leg honest.
        pub expect_split: bool,
        /// `--expect-join`: gate (exit 2) unless at least one worker
        /// actually joined mid-campaign.
        pub expect_join: bool,
        /// `--client-label <name>`: the label this coordinator announces
        /// in its `ClientHello` when its campaign shares a multi-tenant
        /// worker service (shows up in the service's status lines).
        /// Default: the workload name.
        pub client_label: Option<String>,
        /// `--client-priority <n>`: the scheduling weight (≥ 1) this
        /// coordinator's tasks get on a shared service; default 1.
        pub client_priority: Option<u64>,
    }

    impl DistMode {
        /// Whether any distribution was requested.
        #[must_use]
        pub fn is_active(&self) -> bool {
            !self.workers_at.is_empty() || self.spawn_workers > 0 || self.allow_join
        }
    }

    /// Parses the distribution flags out of `args` (unknown arguments are
    /// left for the binary's own parser).
    #[must_use]
    pub fn parse_dist_mode(args: &[String]) -> DistMode {
        let mut mode = DistMode::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--workers-at" => {
                    if let Some(list) = it.next() {
                        mode.workers_at
                            .extend(list.split(',').filter(|s| !s.is_empty()).map(str::to_owned));
                    }
                }
                "--spawn-workers" => {
                    mode.spawn_workers = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--spawn-workers expects a count");
                }
                "--verify-local" => mode.verify_local = true,
                "--checkpoint" => {
                    mode.checkpoint = Some(PathBuf::from(
                        it.next().expect("--checkpoint expects a path"),
                    ));
                }
                "--resume" => {
                    mode.resume = Some(PathBuf::from(it.next().expect("--resume expects a path")));
                }
                "--heartbeat-interval" => {
                    mode.heartbeat_interval = Some(Duration::from_millis(
                        it.next()
                            .and_then(|s| s.parse().ok())
                            .expect("--heartbeat-interval expects milliseconds"),
                    ));
                }
                "--chaos-kill-one" => mode.chaos_kill_one = true,
                "--chaos-abort-after" => {
                    mode.chaos_abort_after = Some(
                        it.next()
                            .and_then(|s| s.parse().ok())
                            .expect("--chaos-abort-after expects a count"),
                    );
                }
                "--allow-join" => mode.allow_join = true,
                "--join-late" => {
                    mode.join_late = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--join-late expects a count");
                    mode.allow_join = true;
                }
                "--split-idle" => mode.split_idle = true,
                "--expect-split" => mode.expect_split = true,
                "--expect-join" => mode.expect_join = true,
                "--client-label" => {
                    mode.client_label =
                        Some(it.next().expect("--client-label expects a name").clone());
                }
                "--client-priority" => {
                    mode.client_priority = Some(
                        it.next()
                            .and_then(|s| s.parse().ok())
                            .expect("--client-priority expects a weight"),
                    );
                }
                _ => {}
            }
        }
        mode
    }

    /// Runs a campaign over the network per `mode`, and — under
    /// `--verify-local` — re-runs it in-process and gates on the two
    /// [`CampaignReport::outcome_digest`]s matching.
    ///
    /// Verification, checkpointing, resuming, and the chaos legs all
    /// force the determinism contract (sequential point searches, no
    /// task wall-clock budget) on every run involved, because a
    /// time-budgeted or schedule-dependent truncation can legitimately
    /// differ between runs — and a checkpoint's campaign key must match
    /// between the run that wrote it and the run that resumes it.
    /// Without any of those flags the config is used as given.
    ///
    /// # Panics
    ///
    /// Exits the process with a failure code when workers cannot be
    /// spawned/reached or when the gating digest comparison fails. A
    /// `--chaos-abort-after` abort exits 0 (the checkpoint is the
    /// deliverable); any other campaign error exits 1.
    #[must_use]
    pub fn run_distributed_campaign(
        workload: &Workload,
        campaign: &Campaign,
        predicate: &Predicate,
        config: &ClusterConfig,
        mode: &DistMode,
    ) -> CampaignReport {
        let mut config = config.clone();
        let force_determinism = mode.verify_local
            || mode.checkpoint.is_some()
            || mode.resume.is_some()
            || mode.chaos_kill_one
            || mode.chaos_abort_after.is_some()
            || mode.allow_join
            || mode.split_idle;
        if force_determinism {
            config.point_workers_hint = Some(1);
            config.task_budget = None;
        }
        if mode.split_idle {
            // Splitting preserves exactness only when the per-task
            // finding cap cannot bind; lift it campaign-wide. Both the
            // distributed run and the verify-local re-run share this
            // config, so the gate still compares like with like.
            config.max_findings_per_task = config
                .max_findings_per_task
                .max(campaign.len().saturating_mul(config.search.max_solutions));
        }

        let mut addrs = mode.workers_at.clone();
        let spawned = if mode.spawn_workers > 0 {
            let exe = std::env::current_exe().expect("own executable path");
            let spawned =
                spawn_loopback_workers(&exe, &[SERVE_FLAG.to_owned()], mode.spawn_workers)
                    .expect("spawn loopback workers");
            addrs.extend(spawned.addrs.iter().cloned());
            Some(spawned)
        } else {
            None
        };

        println!(
            "distributed campaign: {} worker(s) at {addrs:?}",
            addrs.len()
        );
        let job = CampaignJob {
            program: &workload.program,
            program_id: workload.name,
            input: &workload.input,
            campaign,
            predicate,
            config: &config,
        };
        // Shut workers down only when we spawned them; externally managed
        // workers (--workers-at) keep serving for the next campaign.
        let shutdown = spawned.is_some();

        // The SIGKILL chaos leg reaches into the spawned-worker set from
        // the coordinator's result callback, so the set lives behind a
        // lock; the flag makes the kill fire exactly once.
        let spawned = Mutex::new(spawned);
        let killed = AtomicBool::new(false);
        let kill_one_mid_campaign = |completed: usize| {
            if completed >= 1 && !killed.swap(true, Ordering::SeqCst) {
                let mut guard = spawned.lock().expect("spawned workers lock");
                if let Some(workers) = guard.as_mut() {
                    match workers.kill_one(0) {
                        Ok(addr) => println!("chaos: SIGKILLed loopback worker at {addr}"),
                        Err(e) => eprintln!("chaos: failed to kill worker: {e}"),
                    }
                }
            }
        };

        // Elastic membership: open the join listener up front so its
        // address exists before the campaign starts, and self-spawn the
        // late joiners from the coordinator's delayed-join hook (fires
        // once, after the first pooled result — genuinely mid-campaign).
        let join_listener = (mode.allow_join).then(|| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind the join listener");
            let addr = listener.local_addr().expect("join listener address");
            println!("elastic: join listener on {addr}");
            (listener, addr)
        });
        let joiners: Mutex<Vec<std::process::Child>> = Mutex::new(Vec::new());
        let spawn_late_joiners = || {
            let exe = std::env::current_exe().expect("own executable path");
            let (_, addr) = join_listener
                .as_ref()
                .expect("--join-late implies a join listener");
            let mut guard = joiners.lock().expect("late joiners lock");
            for _ in 0..mode.join_late {
                let child = std::process::Command::new(&exe)
                    .arg(JOIN_FLAG)
                    .arg(addr.to_string())
                    .spawn()
                    .expect("spawn a late joiner");
                guard.push(child);
            }
            println!(
                "elastic: spawned {} late joiner(s) against {addr}",
                mode.join_late
            );
        };
        let reap_joiners = || {
            let mut guard = joiners.lock().expect("late joiners lock");
            for child in guard.iter_mut() {
                // Joiners exit on the coordinator's shutdown frame or
                // hang-up; give them a grace period, then insist.
                let deadline = std::time::Instant::now() + Duration::from_secs(5);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if std::time::Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
        };

        let opts = DistOptions {
            shutdown_workers: shutdown,
            heartbeat_interval: mode
                .heartbeat_interval
                .unwrap_or(DEFAULT_HEARTBEAT_INTERVAL),
            checkpoint: mode.checkpoint.as_deref(),
            resume: mode.resume.as_deref(),
            chaos: ChaosPlan {
                abort_after_results: mode.chaos_abort_after,
                on_result: mode
                    .chaos_kill_one
                    .then_some(&kill_one_mid_campaign as &(dyn Fn(usize) + Sync)),
                delayed_join: (mode.join_late > 0)
                    .then_some((1, &spawn_late_joiners as &(dyn Fn() + Sync))),
            },
            join_listener: join_listener.as_ref().map(|(listener, _)| listener),
            split_idle: mode.split_idle,
            client_label: Some(
                mode.client_label
                    .clone()
                    .unwrap_or_else(|| workload.name.to_owned()),
            ),
            client_priority: mode.client_priority.unwrap_or(1),
        };
        let report = match run_distributed_with(&job, &addrs, &opts) {
            Ok(report) => report,
            Err(WireError::CoordinatorAborted { completed }) => {
                println!(
                    "chaos: coordinator aborted after {completed} completed task(s); \
                     the checkpoint holds them for --resume"
                );
                // `exit` skips destructors; reap the spawned workers
                // and any late joiners explicitly so none are orphaned.
                reap_joiners();
                drop(spawned.into_inner().expect("spawned workers lock"));
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("distributed campaign failed: {e}");
                reap_joiners();
                drop(spawned.into_inner().expect("spawned workers lock"));
                std::process::exit(1);
            }
        };
        reap_joiners();
        if report.resumed_tasks > 0 {
            println!(
                "resumed {} task(s) from checkpoint; {} re-run",
                report.resumed_tasks,
                report.tasks.len() - report.resumed_tasks
            );
        }
        if report.degraded {
            println!(
                "campaign finished DEGRADED: {} worker(s) lost, {} task(s) re-queued",
                report.workers_lost, report.tasks_retried
            );
        }
        if report.workers_joined > 0 || report.tasks_split > 0 {
            println!(
                "elastic: {} worker(s) joined mid-campaign, {} shard split(s)",
                report.workers_joined, report.tasks_split
            );
        }
        if mode.expect_split && report.tasks_split == 0 {
            eprintln!(
                "GATE FAILED: --expect-split was set but the campaign completed \
                 without a single shard split"
            );
            drop(spawned.into_inner().expect("spawned workers lock"));
            std::process::exit(2);
        }
        if mode.expect_join && report.workers_joined == 0 {
            eprintln!(
                "GATE FAILED: --expect-join was set but no worker was admitted \
                 mid-campaign"
            );
            drop(spawned.into_inner().expect("spawned workers lock"));
            std::process::exit(2);
        }
        if let Some(spawned) = spawned.into_inner().expect("spawned workers lock") {
            spawned.join().expect("spawned workers exit cleanly");
        }
        println!(
            "distributed outcome digest: {:#034x}",
            report.outcome_digest()
        );

        if mode.verify_local {
            let local = run_cluster(
                &workload.program,
                &workload.detectors,
                &workload.input,
                campaign,
                predicate,
                &config,
            );
            println!(
                "in-process outcome digest:  {:#034x}",
                local.outcome_digest()
            );
            if local.outcome_digest() != report.outcome_digest() {
                eprintln!(
                    "GATE FAILED: distributed campaign diverged from the in-process run\n\
                     distributed: {}\n in-process: {}",
                    report.summary(),
                    local.summary()
                );
                std::process::exit(2);
            }
            println!("verify-local: distributed report reproduces the in-process run verbatim");
        }
        report
    }
}

/// The standard per-point search limits used by the campaign binaries.
#[must_use]
pub fn campaign_limits(max_steps: u64) -> SearchLimits {
    SearchLimits {
        exec: ExecLimits::with_max_steps(max_steps),
        max_states: 300_000,
        max_solutions: 10,
        max_time: Some(std::time::Duration::from_secs(60)),
        ..SearchLimits::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_machine::Exception;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["xxx".into(), "y".into()], vec!["1".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.len() >= 5);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{t}");
    }

    #[test]
    fn buckets_classify_like_the_paper() {
        assert_eq!(
            Table2Bucket::classify(&ConcreteOutcome::Output(vec![1])),
            Table2Bucket::One
        );
        assert_eq!(
            Table2Bucket::classify(&ConcreteOutcome::Output(vec![2])),
            Table2Bucket::Two
        );
        assert_eq!(
            Table2Bucket::classify(&ConcreteOutcome::Output(vec![7])),
            Table2Bucket::Other
        );
        assert_eq!(
            Table2Bucket::classify(&ConcreteOutcome::Output(vec![1, 1])),
            Table2Bucket::Other,
            "two printed values are not a lone advisory"
        );
        assert_eq!(
            Table2Bucket::classify(&ConcreteOutcome::Crash(Exception::DivByZero)),
            Table2Bucket::Crash
        );
        assert_eq!(
            Table2Bucket::classify(&ConcreteOutcome::Hang),
            Table2Bucket::Hang
        );
    }

    #[test]
    fn table2_counts_sum_to_total() {
        let mut report = SsimReport::default();
        report.record(ConcreteOutcome::Output(vec![1]));
        report.record(ConcreteOutcome::Output(vec![1]));
        report.record(ConcreteOutcome::Hang);
        let counts = table2_counts(&report);
        let sum: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, report.total_runs());
        let rendered = render_table2(&report, "test");
        assert!(rendered.contains("66.67% (2)"));
    }
}
