//! Table 1: computation error categories and how SymPLFIED models them.
//!
//! Prints the taxonomy (fault origin → modeling procedure) and, for each
//! category, demonstrates the model on a sample program by counting the
//! injection points the campaign generator enumerates and the seed states
//! the first point produces.

use sympl_bench::render_table;
use sympl_inject::{enumerate_points, prepare, ComputationError, ErrorClass};
use sympl_machine::ExecLimits;

fn main() {
    let w = sympl_apps::tcas();
    println!("Table 1: computation error categories (demonstrated on tcas)\n");

    let mut rows = Vec::new();
    for cat in ComputationError::ALL {
        let class = ErrorClass::Computation(cat);
        let points = enumerate_points(&w.program, &class);
        let seeds = points
            .iter()
            .find_map(|pt| {
                let prep = prepare(
                    &w.program,
                    &w.detectors,
                    &w.input,
                    pt,
                    &ExecLimits::with_max_steps(w.max_steps),
                );
                prep.activated.then_some(prep.seeds.len())
            })
            .unwrap_or(0);
        rows.push(vec![
            cat.fault_origin().to_string(),
            cat.to_string(),
            cat.modeling_procedure().to_string(),
            points.len().to_string(),
            seeds.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Fault origin",
                "Error symptom",
                "Modeling procedure",
                "Points",
                "Seeds@1st",
            ],
            &rows
        )
    );
    println!(
        "Model size: {} instructions in tcas, {} error classes, \
         fork rules: comparison (2-way), jr-target (|code|+1-way), \
         load/store pointer (|memory|+1-way), divisor-zero (2-way).",
        w.program.len(),
        ErrorClass::all().len()
    );
}
