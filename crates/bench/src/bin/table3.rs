//! Table 3: the important functions of `replace`, with their entry labels,
//! sizes, and roles — regenerated from the assembled program itself.

use sympl_bench::render_table;

fn main() {
    let w = sympl_apps::replace();
    let p = &w.program;

    let functions: &[(&str, &str)] = &[
        (
            "makepat",
            "Constructs pattern to be matched from input reg exp",
        ),
        ("getccl", "Called by makepat when scanning a '[' character"),
        (
            "dodash",
            "Called by getccl for any character ranges in pattern",
        ),
        ("amatch", "Returns the position where pattern matched"),
        (
            "locate",
            "Called by amatch to find whether the pattern appears at a string index",
        ),
    ];

    // Function size = distance to the next top-level function label.
    let mut starts: Vec<(usize, &str)> = functions
        .iter()
        .filter_map(|(name, _)| p.label_address(name).map(|a| (a, *name)))
        .collect();
    starts.push((p.label_address("main").unwrap_or(0), "main"));
    starts.sort_unstable();

    let size_of = |name: &str| -> usize {
        let Some(start) = p.label_address(name) else {
            return 0;
        };
        let end = starts
            .iter()
            .map(|&(a, _)| a)
            .filter(|&a| a > start)
            .min()
            .unwrap_or(p.len());
        end - start
    };

    let rows: Vec<Vec<String>> = functions
        .iter()
        .map(|(name, role)| {
            vec![
                (*name).to_string(),
                p.label_address(name).map_or("?".into(), |a| a.to_string()),
                size_of(name).to_string(),
                (*role).to_string(),
            ]
        })
        .collect();

    println!("Table 3: important functions in replace\n");
    println!(
        "{}",
        render_table(&["Function", "Entry", "Instrs", "Role"], &rows)
    );
    println!(
        "replace: {} instructions total, golden output on default input: {:?}",
        p.len(),
        sympl_apps::golden(&w).output_ints()
    );
}
