//! Multi-tenant campaign-service demo: two concurrent campaigns, one
//! shared worker fleet, both digest-gated.
//!
//! The `cluster-demo` leg proves one coordinator can drive remote
//! workers; this leg proves the workers are a *service*. It spawns a
//! shared loopback fleet, then runs the tcas and replace register-error
//! campaigns **concurrently** against the same workers — each campaign a
//! separate coordinator session with its own `ClientHello` label and
//! scheduling priority, interleaved by the workers' fair scheduler. Both
//! campaigns run with `--verify-local` semantics: each gates (exit 2) on
//! its distributed [`sympl_cluster::CampaignReport::outcome_digest`]
//! matching its own in-process re-run, proving the determinism contract
//! is tenant-blind — sharing a fleet changes the schedule, never the
//! outcome.
//!
//! Usage: `service_demo [--workers N] [--tasks N]`
//!
//! `just service-demo` runs this as part of the `distributed-campaign`
//! CI job. See `docs/OPERATIONS.md` for the operator-facing walkthrough.

use std::time::Duration;

use sympl_bench::campaign_limits;
use sympl_bench::net::{maybe_serve_loopback, DistMode, SERVE_FLAG};
use sympl_check::Predicate;
use sympl_cluster::ClusterConfig;
use sympl_inject::{Campaign, ErrorClass};
use sympl_wire::{shutdown_worker, spawn_loopback_workers};

fn main() {
    maybe_serve_loopback();
    let args: Vec<String> = std::env::args().collect();
    let arg = |flag: &str, default: usize| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let workers = arg("--workers", 2).max(1);
    let tasks = arg("--tasks", 6).max(1);

    // One shared fleet for both campaigns; each worker is a multiplexed
    // service, so neither coordinator owns it.
    let exe = std::env::current_exe().expect("own executable path");
    let fleet = spawn_loopback_workers(&exe, &[SERVE_FLAG.to_owned()], workers)
        .expect("spawn the shared loopback fleet");
    println!(
        "service demo: shared fleet of {} worker(s) at {:?}",
        workers, fleet.addrs
    );

    let dist_mode = |label: &str, priority: u64| DistMode {
        workers_at: fleet.addrs.clone(),
        verify_local: true,
        client_label: Some(label.to_owned()),
        client_priority: Some(priority),
        ..DistMode::default()
    };

    // Campaign A: tcas, quick budgets scaled down for CI.
    let run_tcas = || {
        let w = sympl_apps::tcas();
        let golden = sympl_apps::golden(&w).output_ints();
        let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
        let config = ClusterConfig {
            tasks,
            search: campaign_limits(6_000),
            max_findings_per_task: 10,
            ..ClusterConfig::default()
        };
        let predicate = Predicate::WrongOutput { expected: golden };
        sympl_bench::net::run_distributed_campaign(
            &w,
            &campaign,
            &predicate,
            &config,
            &dist_mode("tcas", 1),
        )
    };

    // Campaign B: replace, a different tenant at double priority.
    let run_replace = || {
        let w = sympl_apps::replace();
        let golden = sympl_apps::golden(&w).output_ints();
        let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
        let mut search = campaign_limits(6_000);
        search.max_states = 20_000;
        search.max_time = Some(Duration::from_secs(5));
        let config = ClusterConfig {
            tasks,
            search,
            max_findings_per_task: 10,
            ..ClusterConfig::default()
        };
        let predicate = Predicate::WrongOutput { expected: golden };
        sympl_bench::net::run_distributed_campaign(
            &w,
            &campaign,
            &predicate,
            &config,
            &dist_mode("replace", 2),
        )
    };

    // Both coordinators run concurrently against the same fleet. The
    // digest gates live inside run_distributed_campaign (verify_local):
    // any divergence from the in-process run exits 2 before we get here.
    let (tcas_report, replace_report) = std::thread::scope(|scope| {
        let a = scope.spawn(run_tcas);
        let b = scope.spawn(run_replace);
        (
            a.join().expect("tcas campaign thread"),
            b.join().expect("replace campaign thread"),
        )
    });

    // Drain the shared fleet explicitly — no single coordinator owns it.
    for addr in &fleet.addrs {
        shutdown_worker(addr).expect("drain a shared worker");
    }
    fleet.join().expect("shared workers exit cleanly");

    println!(
        "\nservice demo PASSED: tcas ({} tasks, {} findings) and replace \
         ({} tasks, {} findings) shared one fleet; both reproduced their \
         in-process outcome digests verbatim",
        tcas_report.tasks.len(),
        tcas_report.findings.len(),
        replace_report.tasks.len(),
        replace_report.findings.len(),
    );
}
