//! Table 2: SimpleScalar-substitute fault-injection results on tcas.
//!
//! The paper injected 6253 and then 41082 concrete register faults
//! (3 extreme + 3 random values per source/destination register of every
//! instruction) and *never* observed the catastrophic outcome `2`.
//! This binary reruns both campaigns (the extended one with more random
//! values per point) and prints the paper-format table.
//!
//! Usage: `table2 [--quick]` (quick mode shrinks the extended campaign).

use sympl_bench::render_table2;
use sympl_machine::ExecLimits;
use sympl_ssim::{run_campaign, CampaignConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let w = sympl_apps::tcas();
    let limits = ExecLimits::with_max_steps(w.max_steps);

    // Base campaign: the paper's recipe (3 extremes + 3 random per point).
    let base = run_campaign(
        &w.program,
        &w.detectors,
        &w.input,
        &CampaignConfig::default(),
        &limits,
    );
    println!(
        "{}",
        render_table2(&base, "Table 2, column 1 (base campaign)")
    );
    println!();

    // Extended campaign: scale the random values per point to approach the
    // paper's 41k-run follow-up.
    let random_per_point = if quick { 9 } else { 37 };
    let extended = run_campaign(
        &w.program,
        &w.detectors,
        &w.input,
        &CampaignConfig {
            seed: 0xC0FFEE,
            random_per_point,
            ..CampaignConfig::default()
        },
        &limits,
    );
    println!(
        "{}",
        render_table2(&extended, "Table 2, column 2 (extended campaign)")
    );

    let saw_two = base.saw_output(&[2]) || extended.saw_output(&[2]);
    println!(
        "\nCatastrophic outcome '2' observed by concrete injection: {}",
        if saw_two {
            "YES (!)"
        } else {
            "no — as in the paper"
        }
    );
}
