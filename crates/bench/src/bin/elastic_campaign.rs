//! Elastic-membership demo campaign: the register-error sweep on the
//! synthetic `spin` workload, whose per-point symbolic searches are slow
//! enough (tens of milliseconds) for dynamic-membership events to land
//! mid-campaign. The paper workloads exhaust their searches in
//! microseconds per point, so a late joiner or a wire-level shard split
//! would always lose the race against campaign completion; this binary
//! exists so `just elastic-demo` can gate on those events actually
//! happening (`--expect-split`), not merely being permitted.
//!
//! Usage: `elastic_campaign [--tasks N] [--spin N] [--max-states N]
//!                          [--workers-at host:port,…] [--spawn-workers N] [--verify-local]
//!                          [--checkpoint PATH] [--resume PATH] [--heartbeat-interval MS]
//!                          [--chaos-kill-one] [--chaos-abort-after N]
//!                          [--allow-join] [--join-late N] [--split-idle] [--expect-split]`
//!
//! `--spin N` overrides the workload's loop bound (default 60; keep
//! `3·N²` under the 20 000-step watchdog so the golden run halts). The
//! distribution, fault-tolerance, and elasticity flags are the shared
//! set from `sympl_bench::net` — see `tcas_campaign` for their
//! semantics.

use sympl_bench::campaign_limits;
use sympl_bench::net::{maybe_serve_loopback, parse_dist_mode, run_distributed_campaign};
use sympl_check::Predicate;
use sympl_cluster::{run_cluster, ClusterConfig};
use sympl_inject::{Campaign, ErrorClass};

fn arg<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn main() {
    maybe_serve_loopback();
    let args: Vec<String> = std::env::args().collect();
    let dist = parse_dist_mode(&args);
    let tasks: usize = arg(&args, "--tasks").unwrap_or(2);
    let spin: i64 = arg(&args, "--spin").unwrap_or(60);

    let mut w = sympl_apps::spin();
    w.input = vec![spin];
    println!(
        "spin: {} instructions, loop bound {spin} ({} golden steps)",
        w.program.len(),
        sympl_apps::golden(&w).steps()
    );

    let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    println!(
        "register-error campaign: {} injection points, {tasks} tasks\n",
        campaign.len()
    );

    let mut search = campaign_limits(w.max_steps);
    // The stressor's whole point is long per-point searches: let each
    // one run to a deep (but schedule-independent) state-cap truncation
    // instead of the paper binaries' quick exhaustion. 250k states puts
    // a shard at hundreds of milliseconds — many network round-trips.
    search.max_states = arg(&args, "--max-states").unwrap_or(250_000);
    search.max_time = None;
    let config = ClusterConfig {
        tasks,
        search,
        task_budget: None,
        max_findings_per_task: 10,
        point_workers_hint: Some(1),
        ..ClusterConfig::default()
    };
    let predicate = Predicate::OutputContainsErr;

    let report = if dist.is_active() {
        run_distributed_campaign(&w, &campaign, &predicate, &config, &dist)
    } else {
        run_cluster(
            &w.program,
            &w.detectors,
            &w.input,
            &campaign,
            &predicate,
            &config,
        )
    };
    println!("{}", report.summary());
}
