//! Figures 2 & 3: the factorial walkthrough of paper §4.
//!
//! Part 1 (Figure 2): inject `err` into the loop counter `$3` right after
//! the decrement, at every dynamic iteration, and enumerate the outcomes —
//! the paper's 1!, 2!, …, n! prefix products, plus err prints and the
//! watchdog timeout.
//!
//! Part 2 (Figure 3): the same error against the detector-protected
//! program: the searches show which forks the detectors catch and which
//! escape, with the constraints under which each happens.
//!
//! Part 3 (§4.1 complexity claim): SymPLFIED explores O(n) cases where
//! concrete injection would need up to 2^k values.

use sympl_asm::Reg;
use sympl_bench::render_table;
use sympl_check::{Predicate, SearchLimits};
use sympl_inject::{run_point, InjectTarget, InjectionPoint};
use sympl_machine::{ExecLimits, Status};

fn main() {
    let n: i64 = 5;
    println!("Figures 2 & 3: factorial under a loop-counter error (input {n})\n");

    // --- Figure 2: unprotected program -------------------------------
    let w = sympl_apps::factorial().with_input(vec![n]);
    let subi = 7; // `subi $3 $3 #1`, the paper's line 8
    let limits = SearchLimits {
        exec: ExecLimits::with_max_steps(400),
        max_solutions: 100,
        ..SearchLimits::default()
    };

    let mut rows = Vec::new();
    let mut total_states = 0usize;
    let mut engine_workers = 0usize;
    let mut engine_steals = 0usize;
    let sweep_start = std::time::Instant::now();
    for occurrence in 1..=u32::try_from(n).unwrap_or(1) {
        let point =
            InjectionPoint::new(subi, InjectTarget::Register(Reg::r(3))).at_occurrence(occurrence);
        let outcome = run_point(
            &w.program,
            &w.detectors,
            &w.input,
            &point,
            &Predicate::Any,
            &limits,
        );
        total_states += outcome.report.states_explored;
        engine_workers = engine_workers.max(outcome.report.workers);
        engine_steals += outcome.report.steals;
        let mut printed: Vec<String> = outcome
            .report
            .solutions
            .iter()
            .filter(|s| s.state.status() == &Status::Halted)
            .map(|s| s.state.rendered_output())
            .collect();
        printed.sort();
        printed.dedup();
        let hangs = outcome
            .report
            .solutions
            .iter()
            .filter(|s| s.state.status() == &Status::TimedOut)
            .count();
        rows.push(vec![
            occurrence.to_string(),
            printed.join(" | "),
            hangs.to_string(),
            outcome.report.states_explored.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Injected iteration", "Halting outputs", "Hangs", "States"],
            &rows
        )
    );
    println!(
        "All n={n} iterations: {total_states} states explored at {:.0} states/s \
         ({}-way engine, {engine_steals} steals) vs 2^64 candidate concrete \
         values per injection (§4.1).\n",
        sympl_check::SearchReport::throughput(total_states, sweep_start.elapsed()),
        engine_workers.max(1),
    );

    // --- Figure 3: with detectors -------------------------------------
    let wd = sympl_apps::factorial_with_detectors().with_input(vec![n]);
    let subi_det = 10; // `subi $3 $3 #1` in the detector version
    let mut rows = Vec::new();
    for occurrence in 1..=u32::try_from(n).unwrap_or(1) {
        let point = InjectionPoint::new(subi_det, InjectTarget::Register(Reg::r(3)))
            .at_occurrence(occurrence);
        let outcome = run_point(
            &wd.program,
            &wd.detectors,
            &wd.input,
            &point,
            &Predicate::Any,
            &limits,
        );
        let detected = outcome
            .report
            .solutions
            .iter()
            .filter(|s| matches!(s.state.status(), Status::Detected(_)))
            .count();
        let escaped_wrong = outcome
            .report
            .solutions
            .iter()
            .filter(|s| s.state.status() == &Status::Halted && s.state.output_ints() != vec![120])
            .count();
        let constraints: Vec<String> = outcome
            .report
            .solutions
            .iter()
            .find(|s| matches!(s.state.status(), Status::Detected(_)))
            .map(|s| {
                s.state
                    .constraints()
                    .iter()
                    .map(|(loc, set)| format!("{loc}: {set}"))
                    .collect()
            })
            .unwrap_or_default();
        rows.push(vec![
            occurrence.to_string(),
            detected.to_string(),
            escaped_wrong.to_string(),
            constraints.join("; "),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Injected iteration",
                "Detected forks",
                "Escaping wrong outputs",
                "Detection constraints (example)",
            ],
            &rows
        )
    );
    println!(
        "The detected branches carry the constraints under which the \
         detectors fire — the §4.2 explanation of which errors escape."
    );
}
