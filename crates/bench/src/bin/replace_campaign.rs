//! §6.4: the symbolic register-error campaign on replace.
//!
//! The paper decomposed the replace search into 312 tasks; 202 completed
//! within the 30-minute budget, 148 of those found only benign/crashing
//! errors, and 54 found errors leading to an incorrect program outcome
//! (e.g. the dodash delimiter corruption that makes the substitution
//! silently not happen). This binary reruns that campaign, scaled to the
//! local machine, and reports the same statistics plus an example scenario.
//!
//! Usage: `replace_campaign [--tasks N] [--quick]
//!                          [--workers-at host:port,…] [--spawn-workers N] [--verify-local]
//!                          [--checkpoint PATH] [--resume PATH] [--heartbeat-interval MS]
//!                          [--chaos-kill-one] [--chaos-abort-after N]
//!                          [--allow-join] [--join-late N] [--split-idle] [--expect-split]`
//!
//! The `--workers-at` / `--spawn-workers` flags run the campaign over the
//! network through `sympl_wire`; `--verify-local` gates on the
//! distributed and in-process outcome digests matching. The remaining
//! flags are the fault-tolerance and elasticity set shared with
//! `tcas_campaign`: checkpoint/resume across coordinator crashes,
//! heartbeat cadence, the chaos-injection legs of `just chaos-demo`,
//! and the elastic-membership legs of `just elastic-demo`
//! (`--allow-join`/`--join-late` admit workers mid-campaign,
//! `--split-idle`/`--expect-split` exercise wire-level shard stealing).

use std::time::Duration;

use sympl_bench::net::{maybe_serve_loopback, parse_dist_mode, run_distributed_campaign};
use sympl_bench::{campaign_limits, render_table};
use sympl_check::Predicate;
use sympl_cluster::{run_cluster, ClusterConfig};
use sympl_inject::{Campaign, ErrorClass};

fn main() {
    maybe_serve_loopback();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dist = parse_dist_mode(&args);
    let tasks = args
        .iter()
        .position(|a| a == "--tasks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(312);

    let w = sympl_apps::replace();
    let golden = sympl_apps::golden(&w).output_ints();
    println!(
        "replace: {} instructions, golden output `{}`",
        w.program.len(),
        sympl_apps::replace_input::decode(&golden)
    );

    let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    println!(
        "register-error campaign: {} injection points, {} tasks\n",
        campaign.len(),
        tasks
    );

    let mut search = campaign_limits(if quick { 6_000 } else { w.max_steps });
    search.max_states = if quick { 20_000 } else { 120_000 };
    search.max_time = Some(Duration::from_secs(if quick { 5 } else { 30 }));
    let config = ClusterConfig {
        tasks,
        search,
        task_budget: Some(Duration::from_secs(if quick { 10 } else { 90 })),
        max_findings_per_task: 10,
        ..ClusterConfig::default()
    };

    let predicate = Predicate::WrongOutput {
        expected: golden.clone(),
    };
    let report = if dist.is_active() {
        run_distributed_campaign(&w, &campaign, &predicate, &config, &dist)
    } else {
        run_cluster(
            &w.program,
            &w.detectors,
            &w.input,
            &campaign,
            &predicate,
            &config,
        )
    };

    println!("{}", report.summary());
    println!(
        "point engine: {}-way work-stealing searches, {} steals, {:.0} states/s aggregate\n",
        report.point_workers().max(1),
        report.steals(),
        report.states_per_second()
    );
    println!(
        "{}",
        render_table(
            &["Statistic", "This run", "Paper (§6.4)"],
            &[
                vec![
                    "search tasks".into(),
                    report.tasks.len().to_string(),
                    "312".into()
                ],
                vec![
                    "completed in budget".into(),
                    report.tasks_completed().to_string(),
                    "202".into(),
                ],
                vec![
                    "completed, benign/crash only".into(),
                    report.tasks_without_findings().to_string(),
                    "148".into(),
                ],
                vec![
                    "completed, incorrect outcome".into(),
                    report.tasks_with_findings().to_string(),
                    "54".into(),
                ],
            ]
        )
    );

    // Example scenario: a finding whose output is the original string
    // without the substitution (the paper's dodash example).
    let original: Vec<i64> = {
        let input = &w.input;
        // The line is the last length-prefixed block of the input stream.
        let pat_len = input[0] as usize;
        let sub_len = input[1 + pat_len] as usize;
        let line_start = 2 + pat_len + sub_len + 1;
        input[line_start..].to_vec()
    };
    if let Some(f) = report
        .findings
        .iter()
        .find(|f| f.solution.state.output_ints() == original)
    {
        let (label, off) = w
            .program
            .enclosing_label(f.point.breakpoint)
            .unwrap_or(("?", 0));
        println!(
            "\nExample scenario (paper §6.4): {} inside {label}+{off} makes the \
             pattern erroneous; the program returns the original string \
             `{}` without substitution.",
            f.point,
            sympl_apps::replace_input::decode(&f.solution.state.output_ints())
        );
    } else {
        println!(
            "\n(no original-string-returned finding under these budgets; \
             {} other incorrect outcomes found)",
            report.findings.len()
        );
    }
}
