//! Engine-throughput trajectory: writes `BENCH_explore.json`.
//!
//! For each paper workload (factorial, tcas, replace) plus the bubble/gcd
//! kernels, this binary builds one **pooled full-sweep search** — the seed
//! states of *every* register-file injection point, deduplicated by the
//! engine — and runs it twice at identical budgets: once on the sequential
//! `Explorer`, once on the work-stealing `ParallelExplorer`. Each run
//! becomes one JSON entry `{workload, states, seconds, states_per_second,
//! workers, steals, peak_frontier_len, peak_frontier_bytes,
//! spilled_states, exhausted}`, so BENCH_explore.json tracks raw engine
//! speed, the parallel speedup, and frontier memory across revisions.
//! `spill_frontier_tcas` / `spill_frontier_replace` rows rerun the
//! tcas/replace sweeps under a small (512 KiB) in-RAM frontier window, so
//! the disk-spilling path's throughput is tracked alongside.
//!
//! Two extra micro-bench rows time `MachineState::fingerprint()` itself on
//! a bulky state: `fingerprint_rolling` (the O(1) cached-fold mix the
//! engines call per enqueued successor) against `fingerprint_scratch` (the
//! O(|state|) full-walk reference), with `states_per_second` holding
//! digests/sec. The ratio is the visited-set digest win the rolling scheme
//! buys.
//!
//! `decode_<workload>` rows time the one-off lowering of each bundled
//! program into its dense [`sympl_asm::DecodedProgram`] IR (the cost the
//! engines pay once per search): `states` holds the ops emitted, `seconds`
//! the mean decode time, `states_per_second` ops lowered per second, and
//! `peak_frontier_len` the superinstruction pairs fused.
//!
//! `memo_cold_<workload>` / `memo_warm_<workload>` rows run the full
//! register-error campaign through the cluster layer against one
//! cross-campaign [`sympl_check::MemoStore`] — cold populating it, warm
//! served from it: `states_per_second` holds injection points per second,
//! `peak_frontier_len` the memo hits, and `peak_frontier_bytes` the
//! states served from the store instead of re-expanded.
//!
//! Usage: `bench_json [--quick] [--workers N] [--out PATH] [--only P,..]`
//!
//! `--quick` shrinks the budgets for CI smoke runs; `--workers N` pins the
//! parallel engine's worker count (default: one per hardware thread, min 2
//! so the parallel path is exercised even on single-core runners);
//! `--only` keeps only row groups whose names start with one of the given
//! comma-separated prefixes (e.g. `--only tcas,decode_` — CI smoke uses it
//! to skip the micro-benches).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use sympl_apps::Workload;
use sympl_check::{Explorer, MemoStore, ParallelExplorer, Predicate, SearchLimits, SearchReport};
use sympl_cluster::{memo_preserves_outcome, run_cluster_with_memo, ClusterConfig};
use sympl_inject::{enumerate_points, prepare, Campaign, ErrorClass};
use sympl_machine::{ExecLimits, MachineState, OutItem};
use sympl_symbolic::{Constraint, Location, Value};

struct Entry {
    workload: String,
    states: usize,
    seconds: f64,
    states_per_second: f64,
    workers: usize,
    steals: usize,
    peak_frontier_len: usize,
    peak_frontier_bytes: usize,
    spilled_states: usize,
    exhausted: bool,
}

impl Entry {
    fn from_report(workload: impl Into<String>, report: &SearchReport) -> Self {
        Entry {
            workload: workload.into(),
            states: report.states_explored,
            seconds: report.elapsed.as_secs_f64(),
            states_per_second: report.states_per_second,
            workers: report.workers,
            steals: report.steals,
            peak_frontier_len: report.peak_frontier_len,
            peak_frontier_bytes: report.peak_frontier_bytes,
            spilled_states: report.spilled_states,
            exhausted: report.exhausted,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"states\": {}, \"seconds\": {:.6}, \
             \"states_per_second\": {:.1}, \"workers\": {}, \"steals\": {}, \
             \"peak_frontier_len\": {}, \"peak_frontier_bytes\": {}, \
             \"spilled_states\": {}, \"exhausted\": {}}}",
            self.workload,
            self.states,
            self.seconds,
            self.states_per_second,
            self.workers,
            self.steals,
            self.peak_frontier_len,
            self.peak_frontier_bytes,
            self.spilled_states,
            self.exhausted
        )
    }
}

/// Seeds of every register-file injection point of `w`, pooled into one
/// giant search (the engine deduplicates overlapping frontiers).
fn pooled_register_seeds(w: &Workload, exec: &ExecLimits) -> Vec<MachineState> {
    let mut seeds = Vec::new();
    for point in enumerate_points(&w.program, &ErrorClass::RegisterFile) {
        seeds.extend(prepare(&w.program, &w.detectors, &w.input, &point, exec).seeds);
    }
    seeds
}

/// Times the rolling `fingerprint()` against the from-scratch reference on
/// a state with campaign-scale bulk (a few hundred memory words, symbolic
/// registers, constraints, output) — the shape tcas/replace states take
/// deep into a sweep, where a full-walk digest hurts most.
fn fingerprint_micro_bench(quick: bool) -> Vec<Entry> {
    let mut s = MachineState::with_input(vec![3, 1, 4, 1, 5, 9, 2, 6]);
    s.load_memory((0..512u64).map(|i| (i * 8, (i as i64) * 3 - 64)));
    for r in [3u8, 5, 8, 11] {
        s.set_reg(sympl_asm::Reg::r(r), Value::Err);
        let _ = s
            .constraints_mut()
            .constrain(Location::reg(r), Constraint::Gt(-(i64::from(r))));
    }
    for i in 0..16 {
        s.push_output(OutItem::Val(Value::Int(i)));
    }
    assert_eq!(
        s.fingerprint(),
        s.fingerprint_from_scratch(),
        "micro-bench state must have a consistent rolling digest"
    );

    let iters: u32 = if quick { 20_000 } else { 500_000 };
    let timed = |f: &dyn Fn(&MachineState) -> sympl_machine::Fingerprint| {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f(black_box(&s)));
        }
        start.elapsed()
    };
    // From-scratch first so cache warmth, if anything, favours the
    // reference.
    let scratch = timed(&MachineState::fingerprint_from_scratch);
    let rolling = timed(&MachineState::fingerprint);

    let entry = |name: &'static str, elapsed: std::time::Duration| Entry {
        workload: name.into(),
        states: iters as usize,
        seconds: elapsed.as_secs_f64(),
        states_per_second: f64::from(iters) / elapsed.as_secs_f64().max(1e-9),
        workers: 1,
        steals: 0,
        peak_frontier_len: 0,
        peak_frontier_bytes: 0,
        spilled_states: 0,
        exhausted: true,
    };
    let rolling = entry("fingerprint_rolling", rolling);
    let scratch = entry("fingerprint_scratch", scratch);
    println!(
        "fingerprint: rolling {:>12.0} digests/s vs from-scratch {:>12.0} digests/s ({:.1}x)",
        rolling.states_per_second,
        scratch.states_per_second,
        rolling.states_per_second / scratch.states_per_second.max(1e-9)
    );
    vec![rolling, scratch]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let workers: usize = flag("--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(2, usize::from)
                .max(2)
        });
    // An oversubscribed pool (more workers than hardware threads — the
    // forced min-2 on a 1-CPU runner, for instance) measures scheduler
    // churn, not engine speedup: its parallel rows legitimately trail the
    // sequential ones. Flag it so a regression hunt starts at the host's
    // shape, not at the engine.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if workers > cores {
        eprintln!(
            "warning: {workers} workers on {cores} hardware thread(s): parallel rows are \
             oversubscribed and will under-report speedup"
        );
    }
    let out_path = flag("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_explore.json".into());
    // Row filter: `--only tcas,decode_` keeps only rows whose name starts
    // with one of the prefixes. An absent/empty flag keeps everything.
    let only: Vec<String> = flag("--only")
        .map(|s| {
            s.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    let wanted = |name: &str| only.is_empty() || only.iter().any(|p| name.starts_with(p.as_str()));

    // (workload, exec-step bound, state budget): fixed budgets so entries
    // are comparable across revisions.
    let configs: Vec<(Workload, u64, usize)> = vec![
        {
            let w = sympl_apps::factorial().with_input(vec![6]);
            let (steps, states) = if quick {
                (800, 5_000)
            } else {
                (1_500, 100_000)
            };
            (w, steps, states)
        },
        {
            let w = sympl_apps::tcas();
            let steps = if quick {
                w.max_steps.min(2_000)
            } else {
                w.max_steps
            };
            let states = if quick { 8_000 } else { 150_000 };
            (w, steps, states)
        },
        {
            let w = sympl_apps::replace();
            let steps = if quick { 2_000 } else { 6_000 };
            let states = if quick { 8_000 } else { 100_000 };
            (w, steps, states)
        },
        {
            let w = sympl_apps::bubble_sort();
            let steps = if quick { 1_000 } else { 3_000 };
            let states = if quick { 8_000 } else { 100_000 };
            (w, steps, states)
        },
        {
            let w = sympl_apps::gcd();
            let steps = if quick { 800 } else { 1_500 };
            let states = if quick { 5_000 } else { 50_000 };
            (w, steps, states)
        },
    ];

    let mut entries: Vec<Entry> = if wanted("fingerprint_") {
        fingerprint_micro_bench(quick)
    } else {
        Vec::new()
    };

    // Decode-time rows: the one-off cost of lowering each bundled program
    // into the dense IR every engine dispatches over. Schema mapping (the
    // Entry shape is fixed across all rows): `states` = ops emitted,
    // `seconds` = mean decode wall time, `states_per_second` = ops lowered
    // per second, `peak_frontier_len` = superinstruction pairs fused.
    let decode_iters: u32 = if quick { 200 } else { 2_000 };
    for w in sympl_apps::all_workloads() {
        let name = format!("decode_{}", w.name);
        if !wanted(&name) {
            continue;
        }
        // Call the lowering directly: `Program::decoded()` memoizes, which
        // is exactly what this row must not measure.
        let start = Instant::now();
        for _ in 0..decode_iters {
            black_box(sympl_asm::DecodedProgram::decode(black_box(&w.program)));
        }
        let seconds = start.elapsed().as_secs_f64() / f64::from(decode_iters);
        let stats = w.program.decoded().stats();
        println!(
            "{name}: {} ops, {} superinstructions in {:.1}us ({:.0} ops/s)",
            stats.ops,
            stats.superinstructions,
            seconds * 1e6,
            stats.ops as f64 / seconds.max(1e-9)
        );
        entries.push(Entry {
            workload: name,
            states: stats.ops,
            seconds,
            states_per_second: stats.ops as f64 / seconds.max(1e-9),
            workers: 1,
            steals: 0,
            peak_frontier_len: stats.superinstructions,
            peak_frontier_bytes: 0,
            spilled_states: 0,
            exhausted: true,
        });
    }

    for (w, steps, max_states) in &configs {
        if !wanted(w.name) {
            continue;
        }
        let exec = ExecLimits::with_max_steps(*steps);
        let limits = SearchLimits {
            exec: exec.clone(),
            max_states: *max_states,
            max_solutions: usize::MAX,
            max_time: None,
            ..SearchLimits::default()
        };
        let prep_start = Instant::now();
        let seeds = pooled_register_seeds(w, &exec);
        println!(
            "{}: {} pooled seeds from the register full-sweep ({:?} prep)",
            w.name,
            seeds.len(),
            prep_start.elapsed()
        );

        let sequential = Explorer::new(&w.program, &w.detectors)
            .with_limits(limits.clone())
            .explore(seeds.clone(), &Predicate::Any);
        entries.push(Entry::from_report(w.name, &sequential));

        let parallel = ParallelExplorer::new(&w.program, &w.detectors)
            .with_limits(limits)
            .with_workers(workers)
            .explore(seeds, &Predicate::Any);
        entries.push(Entry::from_report(w.name, &parallel));

        let speedup = if parallel.elapsed.as_secs_f64() > 0.0 {
            sequential.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64()
        } else {
            0.0
        };
        println!(
            "  sequential: {:>8} states in {:>8.3}s ({:>9.0} states/s)",
            sequential.states_explored,
            sequential.elapsed.as_secs_f64(),
            sequential.states_per_second
        );
        println!(
            "  parallel  : {:>8} states in {:>8.3}s ({:>9.0} states/s, {} workers, {} steals) — {:.2}x",
            parallel.states_explored,
            parallel.elapsed.as_secs_f64(),
            parallel.states_per_second,
            parallel.workers,
            parallel.steals,
            speedup
        );
        if sequential.exhausted && parallel.exhausted {
            assert_eq!(
                sequential.terminals, parallel.terminals,
                "{}: engines must agree on exhausted sweeps",
                w.name
            );
        }
    }

    // Disk-spilling sweep rows: the same tcas/replace full sweeps under a
    // deliberately small in-RAM frontier window, so BENCH_explore.json
    // tracks the spill path's throughput (and its overhead vs the
    // unbounded rows above) across revisions.
    let spill_window: usize = 512 * 1024;
    let spill_configs: Vec<(Workload, u64, usize)> = vec![
        {
            let w = sympl_apps::tcas();
            let steps = if quick {
                w.max_steps.min(2_000)
            } else {
                w.max_steps
            };
            let states = if quick { 8_000 } else { 150_000 };
            (w, steps, states)
        },
        {
            let w = sympl_apps::replace();
            let steps = if quick { 2_000 } else { 6_000 };
            let states = if quick { 8_000 } else { 100_000 };
            (w, steps, states)
        },
    ];
    for (w, steps, max_states) in &spill_configs {
        if !wanted(&format!("spill_frontier_{}", w.name)) {
            continue;
        }
        let exec = ExecLimits::with_max_steps(*steps);
        let limits = SearchLimits {
            exec: exec.clone(),
            max_states: *max_states,
            max_solutions: usize::MAX,
            max_time: None,
            max_frontier_bytes: Some(spill_window),
            ..SearchLimits::default()
        };
        let seeds = pooled_register_seeds(w, &exec);
        let spilling = Explorer::new(&w.program, &w.detectors)
            .with_limits(limits)
            .explore(seeds, &Predicate::Any);
        println!(
            "spill_frontier_{}: {:>8} states in {:>8.3}s ({:>9.0} states/s, \
             peak {} states / ~{} bytes in RAM, {} spilled)",
            w.name,
            spilling.states_explored,
            spilling.elapsed.as_secs_f64(),
            spilling.states_per_second,
            spilling.peak_frontier_len,
            spilling.peak_frontier_bytes,
            spilling.spilled_states
        );
        entries.push(Entry::from_report(
            format!("spill_frontier_{}", w.name),
            &spilling,
        ));
    }

    // Cross-campaign memoization rows: the full register-error campaign
    // through the cluster layer against one shared store — cold populating
    // it, warm served from it — under the memo exactness gate (no task
    // budget, sequential point searches). Schema mapping: `states` =
    // campaign states explored, `seconds` = campaign wall time,
    // `states_per_second` = injection points per second,
    // `peak_frontier_len` = memo hits, `peak_frontier_bytes` = states
    // served from the store, `exhausted` = every task completed.
    let memo_configs: Vec<(Workload, u64)> = vec![
        {
            let w = sympl_apps::tcas();
            let steps = if quick {
                w.max_steps.min(2_000)
            } else {
                w.max_steps
            };
            (w, steps)
        },
        {
            let w = sympl_apps::replace();
            (w, if quick { 2_000 } else { 6_000 })
        },
    ];
    for (w, steps) in &memo_configs {
        if !wanted(&format!("memo_cold_{}", w.name)) && !wanted(&format!("memo_warm_{}", w.name)) {
            continue;
        }
        let config = ClusterConfig {
            workers,
            tasks: 64,
            search: SearchLimits {
                exec: ExecLimits::with_max_steps(*steps),
                max_states: if quick { 8_000 } else { 100_000 },
                max_solutions: 10,
                max_time: None,
                ..SearchLimits::default()
            },
            task_budget: None,
            max_findings_per_task: 10,
            point_workers_hint: Some(1),
        };
        assert!(memo_preserves_outcome(&config));
        let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
        let store = MemoStore::for_campaign(&w.program, &w.detectors);
        let mut digests = Vec::new();
        for leg in ["cold", "warm"] {
            let name = format!("memo_{leg}_{}", w.name);
            let report = run_cluster_with_memo(
                &w.program,
                &w.detectors,
                &w.input,
                &campaign,
                &Predicate::Any,
                &config,
                Some(&store),
            );
            let points: usize = report.tasks.iter().map(|t| t.points_examined).sum();
            let seconds = report.elapsed.as_secs_f64();
            println!(
                "{name}: {points} points in {seconds:.3}s ({:.0} points/s), \
                 {} hit(s) served {} of {} states ({:.0}% hit rate)",
                points as f64 / seconds.max(1e-9),
                report.memo_hits(),
                report.memo_states_skipped(),
                report.states_explored(),
                100.0 * report.memo_states_skipped() as f64
                    / report.states_explored().max(1) as f64
            );
            digests.push(report.outcome_digest());
            if wanted(&name) {
                entries.push(Entry {
                    workload: name,
                    states: report.states_explored(),
                    seconds,
                    states_per_second: points as f64 / seconds.max(1e-9),
                    workers: config.workers,
                    steals: report.steals(),
                    peak_frontier_len: report.memo_hits(),
                    peak_frontier_bytes: report.memo_states_skipped(),
                    spilled_states: report.spilled_states(),
                    exhausted: report.tasks_completed() == report.tasks.len(),
                });
            }
        }
        assert_eq!(
            digests[0], digests[1],
            "{}: warm campaign must reproduce the cold outcome digest",
            w.name
        );
    }

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "  {}{}",
            e.to_json(),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    json.push_str("]\n");
    std::fs::write(&out_path, json).expect("failed to write the benchmark JSON");
    println!("\nwrote {} entries to {out_path}", entries.len());
}
