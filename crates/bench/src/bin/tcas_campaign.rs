//! §6.2: the full symbolic register-error campaign on tcas.
//!
//! Reproduces the paper's evaluation: for every register used by every
//! instruction, inject `err` just before the use, and search for runs that
//! throw no exception and print a value other than the correct advisory 1.
//! The campaign is sharded into tasks over a worker pool (the paper's 150
//! cluster nodes), each task capped at 10 findings and a wall budget.
//!
//! Usage: `tcas_campaign [--tasks N] [--quick]
//!                       [--workers-at host:port,…] [--spawn-workers N] [--verify-local]
//!                       [--checkpoint PATH] [--resume PATH] [--heartbeat-interval MS]
//!                       [--chaos-kill-one] [--chaos-abort-after N]
//!                       [--allow-join] [--join-late N] [--split-idle] [--expect-split]
//!                       [--memo-path FILE] [--expect-memo-warm]
//!                       [--mutate-program] [--expect-stale-memo]`
//!
//! The `--workers-at` / `--spawn-workers` flags run the campaign over the
//! network through `sympl_wire` instead of in-process threads;
//! `--verify-local` additionally re-runs it in-process and gates on the
//! two outcome digests matching (the distributed-campaign CI job).
//! `--checkpoint` / `--resume` persist and recover completed shards
//! across a coordinator crash, `--heartbeat-interval` tunes the worker
//! liveness cadence, and the `--chaos-*` flags drive the fault-injection
//! legs of `just chaos-demo` (SIGKILL a spawned worker mid-run; abort
//! the coordinator after N results for a later `--resume`). The elastic
//! flags drive `just elastic-demo`: `--allow-join` opens a join listener
//! for `symplfied serve --join`, `--join-late N` self-spawns N late
//! joiners mid-campaign, `--split-idle` lets idle workers steal half of
//! the largest in-flight shard, and `--expect-split` gates on at least
//! one split actually happening.
//!
//! The memo flags drive `just memo-demo`: `--memo-path` persists the
//! cross-campaign memo store (forcing the deterministic configuration the
//! store's exactness gate requires: no task budget, sequential point
//! searches); `--expect-memo-warm` gates on the run being served warm —
//! memo hits present, ≥ 50% of states skipped, and an outcome digest
//! identical to an in-process memo-off run. `--mutate-program` appends a
//! dead instruction to tcas before running, and `--expect-stale-memo`
//! gates on the now-stale store being *refused* at load (the
//! incremental-recheck contract: a program edit invalidates the store).

use std::path::Path;
use std::process::exit;
use std::time::Duration;

use sympl_bench::net::{maybe_serve_loopback, parse_dist_mode, run_distributed_campaign};
use sympl_bench::{campaign_limits, render_table};
use sympl_check::{memo_key, MemoError, MemoStore, Predicate};
use sympl_cluster::{memo_preserves_outcome, run_cluster, run_cluster_with_memo, ClusterConfig};
use sympl_inject::{Campaign, ErrorClass};
use sympl_machine::Status;

fn main() {
    maybe_serve_loopback();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dist = parse_dist_mode(&args);
    let tasks = args
        .iter()
        .position(|a| a == "--tasks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let memo_path = args
        .iter()
        .position(|a| a == "--memo-path")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let expect_memo_warm = args.iter().any(|a| a == "--expect-memo-warm");
    let mutate_program = args.iter().any(|a| a == "--mutate-program");
    let expect_stale_memo = args.iter().any(|a| a == "--expect-stale-memo");

    let mut w = sympl_apps::tcas();
    if mutate_program {
        // The incremental-recheck scenario: one edit anywhere in the
        // program must change the memo key. A dead `halt` after the final
        // instruction leaves every reachable outcome untouched but moves
        // the key (appending never shifts existing addresses).
        let mut b = sympl_asm::ProgramBuilder::new();
        for instr in w.program.instrs() {
            b.push(instr.clone());
        }
        b.halt();
        w.program = b.build().expect("mutated tcas still builds");
        println!(
            "mutated tcas: appended a dead halt ({} instructions)",
            w.program.len()
        );
    }
    if expect_stale_memo {
        let Some(path) = &memo_path else {
            eprintln!("--expect-stale-memo requires --memo-path");
            exit(2);
        };
        let key = memo_key(&w.program, &w.detectors);
        match MemoStore::load(Path::new(path), Some(key)) {
            Err(MemoError::StaleKey { .. }) => {
                println!("stale memo store refused as expected: {path} keys a different program");
                return;
            }
            Err(e) => {
                eprintln!("FAIL: expected a StaleKey refusal for {path}, got: {e}");
                exit(2);
            }
            Ok(_) => {
                eprintln!("FAIL: stale memo store {path} was accepted");
                exit(2);
            }
        }
    }
    let golden = sympl_apps::golden(&w).output_ints();
    println!(
        "tcas: {} instructions, golden output {:?} (upward advisory)",
        w.program.len(),
        golden
    );

    let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    println!(
        "register-error campaign: {} injection points, {} tasks\n",
        campaign.len(),
        tasks
    );

    let mut search = campaign_limits(w.max_steps);
    if quick {
        search.max_states = 50_000;
    }
    let mut config = ClusterConfig {
        tasks,
        search,
        task_budget: Some(Duration::from_secs(if quick { 10 } else { 120 })),
        max_findings_per_task: 10,
        ..ClusterConfig::default()
    };

    // Load (or create) the memo store, forcing the deterministic
    // configuration its exactness gate requires: without it the store
    // would be silently ignored (`memo_preserves_outcome`).
    let memo_store = memo_path.as_ref().map(|path| {
        config.task_budget = None;
        config.point_workers_hint = Some(1);
        assert!(memo_preserves_outcome(&config));
        let key = memo_key(&w.program, &w.detectors);
        let file = Path::new(path);
        if file.exists() {
            match MemoStore::load(file, Some(key)) {
                Ok((store, truncated)) => {
                    if truncated {
                        eprintln!("warning: {path} had a truncated tail; kept the intact prefix");
                    }
                    println!("memo store loaded: {} entr(ies) from {path}", store.len());
                    store
                }
                Err(e) => {
                    eprintln!("error: cannot use memo store {path}: {e}");
                    exit(2);
                }
            }
        } else {
            println!("memo store: starting cold at {path}");
            MemoStore::new(key)
        }
    });

    let predicate = Predicate::WrongOutput {
        expected: golden.clone(),
    };
    let report = if dist.is_active() {
        run_distributed_campaign(&w, &campaign, &predicate, &config, &dist)
    } else {
        run_cluster_with_memo(
            &w.program,
            &w.detectors,
            &w.input,
            &campaign,
            &predicate,
            &config,
            memo_store.as_ref(),
        )
    };

    println!("{}", report.summary());
    println!(
        "point engine: {}-way work-stealing searches, {} steals, {:.0} states/s aggregate\n",
        report.point_workers().max(1),
        report.steals(),
        report.states_per_second()
    );

    if let (Some(path), Some(store)) = (&memo_path, &memo_store) {
        if let Err(e) = store.save(Path::new(path)) {
            eprintln!("error: cannot save memo store {path}: {e}");
            exit(2);
        }
        let digest = report.outcome_digest();
        println!(
            "memo: {} entr(ies) at {path}; {} hit(s) served {} of {} states; \
             prefix cache saved {} step(s); outcome digest {digest:032x}",
            store.len(),
            report.memo_hits(),
            report.memo_states_skipped(),
            report.states_explored(),
            report.prefix_steps_saved()
        );
        if expect_memo_warm {
            // The gate: the run must have been served warm, and the memoized
            // outcome must be indistinguishable from a memo-off run.
            let off = run_cluster(
                &w.program,
                &w.detectors,
                &w.input,
                &campaign,
                &predicate,
                &config,
            );
            let hits_ok = report.memo_hits() > 0;
            let rate_ok = report.memo_states_skipped() * 2 >= report.states_explored().max(1);
            let digest_ok = off.outcome_digest() == digest;
            if !(hits_ok && rate_ok && digest_ok) {
                eprintln!(
                    "FAIL: warm memo expectations not met \
                     (hits={}, skipped={}/{}, digest match={digest_ok})",
                    report.memo_hits(),
                    report.memo_states_skipped(),
                    report.states_explored()
                );
                exit(2);
            }
            println!(
                "warm memo gate passed: {} hit(s), {:.0}% of states served, digest matches memo-off",
                report.memo_hits(),
                100.0 * report.memo_states_skipped() as f64 / report.states_explored().max(1) as f64
            );
        }
    }

    // Bucket the findings by printed outcome, as §6.2 discusses them.
    let mut catastrophic = 0usize; // printed exactly 2
    let mut unresolved = 0usize; // printed exactly 0
    let mut out_of_range = 0usize; // any other printed value(s)
    let mut err_prints = 0usize; // printed the err symbol
    for f in &report.findings {
        if f.solution.state.output_contains_err() {
            err_prints += 1;
        } else {
            match f.solution.state.output_ints().as_slice() {
                [2] => catastrophic += 1,
                [0] => unresolved += 1,
                _ => out_of_range += 1,
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["Escaping outcome", "Findings"],
            &[
                vec!["advisory 2 (catastrophic)".into(), catastrophic.to_string()],
                vec!["advisory 0 (unresolved)".into(), unresolved.to_string()],
                vec!["out-of-range value".into(), out_of_range.to_string()],
                vec!["err printed".into(), err_prints.to_string()],
            ]
        )
    );

    if let Some(f) = report.findings.iter().find(|f| {
        f.solution.state.output_ints() == vec![2] && !f.solution.state.output_contains_err()
    }) {
        let (label, off) = w
            .program
            .enclosing_label(f.point.breakpoint)
            .unwrap_or(("?", 0));
        println!(
            "\nCatastrophic witness: {} (inside {label}+{off})\n  status: {}\n  trace: {}",
            f.point,
            f.solution.state.status(),
            f.solution.trace_summary(16)
        );
        assert_eq!(f.solution.state.status(), &Status::Halted);
    } else {
        println!("\nNo catastrophic (advisory-2) witness found under these budgets.");
    }
}
