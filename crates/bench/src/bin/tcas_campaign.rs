//! §6.2: the full symbolic register-error campaign on tcas.
//!
//! Reproduces the paper's evaluation: for every register used by every
//! instruction, inject `err` just before the use, and search for runs that
//! throw no exception and print a value other than the correct advisory 1.
//! The campaign is sharded into tasks over a worker pool (the paper's 150
//! cluster nodes), each task capped at 10 findings and a wall budget.
//!
//! Usage: `tcas_campaign [--tasks N] [--quick]
//!                       [--workers-at host:port,…] [--spawn-workers N] [--verify-local]
//!                       [--checkpoint PATH] [--resume PATH] [--heartbeat-interval MS]
//!                       [--chaos-kill-one] [--chaos-abort-after N]
//!                       [--allow-join] [--join-late N] [--split-idle] [--expect-split]`
//!
//! The `--workers-at` / `--spawn-workers` flags run the campaign over the
//! network through `sympl_wire` instead of in-process threads;
//! `--verify-local` additionally re-runs it in-process and gates on the
//! two outcome digests matching (the distributed-campaign CI job).
//! `--checkpoint` / `--resume` persist and recover completed shards
//! across a coordinator crash, `--heartbeat-interval` tunes the worker
//! liveness cadence, and the `--chaos-*` flags drive the fault-injection
//! legs of `just chaos-demo` (SIGKILL a spawned worker mid-run; abort
//! the coordinator after N results for a later `--resume`). The elastic
//! flags drive `just elastic-demo`: `--allow-join` opens a join listener
//! for `symplfied serve --join`, `--join-late N` self-spawns N late
//! joiners mid-campaign, `--split-idle` lets idle workers steal half of
//! the largest in-flight shard, and `--expect-split` gates on at least
//! one split actually happening.

use std::time::Duration;

use sympl_bench::net::{maybe_serve_loopback, parse_dist_mode, run_distributed_campaign};
use sympl_bench::{campaign_limits, render_table};
use sympl_check::Predicate;
use sympl_cluster::{run_cluster, ClusterConfig};
use sympl_inject::{Campaign, ErrorClass};
use sympl_machine::Status;

fn main() {
    maybe_serve_loopback();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dist = parse_dist_mode(&args);
    let tasks = args
        .iter()
        .position(|a| a == "--tasks")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);

    let w = sympl_apps::tcas();
    let golden = sympl_apps::golden(&w).output_ints();
    println!(
        "tcas: {} instructions, golden output {:?} (upward advisory)",
        w.program.len(),
        golden
    );

    let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    println!(
        "register-error campaign: {} injection points, {} tasks\n",
        campaign.len(),
        tasks
    );

    let mut search = campaign_limits(w.max_steps);
    if quick {
        search.max_states = 50_000;
    }
    let config = ClusterConfig {
        tasks,
        search,
        task_budget: Some(Duration::from_secs(if quick { 10 } else { 120 })),
        max_findings_per_task: 10,
        ..ClusterConfig::default()
    };

    let predicate = Predicate::WrongOutput {
        expected: golden.clone(),
    };
    let report = if dist.is_active() {
        run_distributed_campaign(&w, &campaign, &predicate, &config, &dist)
    } else {
        run_cluster(
            &w.program,
            &w.detectors,
            &w.input,
            &campaign,
            &predicate,
            &config,
        )
    };

    println!("{}", report.summary());
    println!(
        "point engine: {}-way work-stealing searches, {} steals, {:.0} states/s aggregate\n",
        report.point_workers().max(1),
        report.steals(),
        report.states_per_second()
    );

    // Bucket the findings by printed outcome, as §6.2 discusses them.
    let mut catastrophic = 0usize; // printed exactly 2
    let mut unresolved = 0usize; // printed exactly 0
    let mut out_of_range = 0usize; // any other printed value(s)
    let mut err_prints = 0usize; // printed the err symbol
    for f in &report.findings {
        if f.solution.state.output_contains_err() {
            err_prints += 1;
        } else {
            match f.solution.state.output_ints().as_slice() {
                [2] => catastrophic += 1,
                [0] => unresolved += 1,
                _ => out_of_range += 1,
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["Escaping outcome", "Findings"],
            &[
                vec!["advisory 2 (catastrophic)".into(), catastrophic.to_string()],
                vec!["advisory 0 (unresolved)".into(), unresolved.to_string()],
                vec!["out-of-range value".into(), out_of_range.to_string()],
                vec!["err printed".into(), err_prints.to_string()],
            ]
        )
    );

    if let Some(f) = report.findings.iter().find(|f| {
        f.solution.state.output_ints() == vec![2] && !f.solution.state.output_contains_err()
    }) {
        let (label, off) = w
            .program
            .enclosing_label(f.point.breakpoint)
            .unwrap_or(("?", 0));
        println!(
            "\nCatastrophic witness: {} (inside {label}+{off})\n  status: {}\n  trace: {}",
            f.point,
            f.solution.state.status(),
            f.solution.trace_summary(16)
        );
        assert_eq!(f.solution.state.status(), &Status::Halted);
    } else {
        println!("\nNo catastrophic (advisory-2) witness found under these budgets.");
    }
}
