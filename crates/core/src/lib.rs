//! # SymPLFIED — Symbolic Program-Level Fault Injection and Error Detection
//!
//! A Rust reproduction of *SymPLFIED* (Pattabiraman, Nakka, Kalbarczyk,
//! Iyer — DSN 2008): a program-level framework that accepts a program in a
//! generic assembly language, error detectors embedded through `check`
//! annotations, and a class of transient hardware errors, and
//! **exhaustively enumerates all errors in that class that evade detection
//! and lead to program failure** — or proves (within bounds) that none do.
//!
//! Every erroneous value is represented by the single abstract symbol
//! `err`; execution forks at each non-deterministic use of `err`
//! (comparisons, branches, corrupted jump targets and pointers), learned
//! constraints prune infeasible forks, and a breadth-first model checker
//! sweeps the resulting state space.
//!
//! ## Quick start
//!
//! ```
//! use symplfied::prelude::*;
//!
//! // A program that should print input+1; verify whether a register error
//! // can silently corrupt the output.
//! let program = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt")?;
//! let framework = Framework::new(program).with_input(vec![41]);
//! let verdict = framework.enumerate_undetected(ErrorClass::RegisterFile);
//!
//! // No detectors in the program, so errors escape:
//! assert!(!verdict.is_resilient());
//! for finding in verdict.findings.iter().take(3) {
//!     println!("{}: {}", finding.point, finding.solution.state.rendered_output());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | Component | Crate (re-exported here) |
//! |---|---|
//! | assembly language, parser, MIPS front-end | [`asm`] |
//! | `err` domain, constraints, solver | [`symbolic`] |
//! | machine model, symbolic executor | [`machine`] |
//! | detector model | [`detect`] |
//! | model checker | [`check`] |
//! | error model & campaigns | [`inject`] |
//! | concrete-injection baseline | [`ssim`] |
//! | parallel campaign runner | [`cluster`] |
//! | network wire protocol + TCP transport | [`wire`] |
//! | evaluation workloads | [`apps`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sympl_apps as apps;
pub use sympl_asm as asm;
pub use sympl_check as check;
pub use sympl_cluster as cluster;
pub use sympl_detect as detect;
pub use sympl_inject as inject;
pub use sympl_machine as machine;
pub use sympl_ssim as ssim;
pub use sympl_symbolic as symbolic;
pub use sympl_wire as wire;

mod framework;

pub use framework::{Framework, Verdict};

/// The commonly used names, for `use symplfied::prelude::*`.
pub mod prelude {
    pub use crate::framework::{Framework, Verdict};
    pub use sympl_asm::{parse_program, Cmp, Instr, Operand, Program, ProgramBuilder, Reg};
    pub use sympl_check::{
        search, FrontierPolicy, ParallelExplorer, Predicate, PriorityHeuristic, SearchLimits,
        SearchReport,
    };
    pub use sympl_cluster::{run_cluster, CampaignReport, ClusterConfig};
    pub use sympl_detect::{Detector, DetectorSet};
    pub use sympl_inject::{
        enumerate_points, run_point, Campaign, ComputationError, ErrorClass, InjectTarget,
        InjectionPoint,
    };
    pub use sympl_machine::{run_concrete, Exception, ExecLimits, MachineState, OutItem, Status};
    pub use sympl_ssim::{run_campaign as run_ssim_campaign, CampaignConfig, ConcreteOutcome};
    pub use sympl_symbolic::{Constraint, ConstraintMap, ConstraintSet, Location, Value};
}
