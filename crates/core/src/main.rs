//! `symplfied` — command-line front-end for the framework.
//!
//! ```text
//! symplfied run    <prog.sasm> [--mips] [--input 1,2,3] [--detectors dets.txt]
//! symplfied disasm <prog.sasm> [--mips]
//! symplfied verify <prog.sasm> [--mips] [--input …] [--detectors dets.txt]
//!                  [--class register|memory|pc|fetch] [--max-steps N]
//!                  [--max-solutions N]
//! symplfied ssim   <prog.sasm> [--mips] [--input …] [--random N] [--seed N]
//! symplfied serve  [--listen HOST:PORT | --join HOST:PORT]
//!                  [--max-clients N] [--status-interval SECS]
//! ```

use std::process::ExitCode;

use symplfied::check::{FrontierPolicy, PriorityHeuristic, SearchLimits};
use symplfied::inject::ComputationError;
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;
use symplfied::ssim;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  symplfied run    <prog> [--mips] [--input 1,2,3] [--detectors FILE] [--max-steps N]
  symplfied disasm <prog> [--mips]
  symplfied verify <prog> [--mips] [--input 1,2,3] [--detectors FILE]
                   [--class register|memory|pc|fetch] [--max-steps N] [--max-solutions N]
                   [--frontier bfs|dfs|priority-constraints|priority-depth|priority-output|iddfs]
                   [--max-frontier-bytes N] [--memo-path FILE]
  symplfied ssim   <prog> [--mips] [--input 1,2,3] [--random N] [--seed N]
  symplfied serve  [--listen HOST:PORT | --join HOST:PORT]
                   [--max-clients N] [--status-interval SECS]

--frontier picks the search's frontier policy (exhausted searches agree
under every policy; see each policy's determinism contract in the docs);
--max-frontier-bytes bounds the in-RAM frontier for bfs/dfs, spilling
overflow to disk so exhaustive searches larger than RAM still complete.

--memo-path persists the cross-campaign memo store: point searches
recorded on one verify are served without re-expansion on the next,
making repeated verification incremental. The store is keyed to the
exact program + detectors — after an edit the stale file is refused
(delete it to start fresh).

serve starts a distributed-campaign worker: it listens for campaign
coordinators (tcas_campaign/replace_campaign --workers-at), announces
its bound address as `sympl-wire listening on HOST:PORT`, resolves
tasks' program ids against the bundled workloads, and exits when a
coordinator sends a shutdown frame and the last session drains.
--listen defaults to 127.0.0.1:0 (loopback, OS-assigned port). The
worker is a multi-tenant campaign service: up to --max-clients
(default 16) coordinators run concurrently, their tasks scheduled by
priority-weighted round-robin; a full service refuses new clients with
a typed error frame. --status-interval SECS logs a per-client
accounting line (queued/completed per client, fairness ratio) at that
cadence. With --join the direction flips: the worker dials a *running*
campaign's join listener (the coordinator's --allow-join port),
registers, and serves tasks from the live queue until the coordinator
shuts it down. See docs/OPERATIONS.md for the full operator manual.";

struct Opts {
    program_path: String,
    mips: bool,
    input: Vec<i64>,
    detectors: DetectorSet,
    class: ErrorClass,
    max_steps: u64,
    max_solutions: usize,
    policy: FrontierPolicy,
    max_frontier_bytes: Option<usize>,
    memo_path: Option<String>,
    random: usize,
    seed: u64,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        program_path: String::new(),
        mips: false,
        input: Vec::new(),
        detectors: DetectorSet::new(),
        class: ErrorClass::RegisterFile,
        max_steps: 100_000,
        max_solutions: 10,
        policy: FrontierPolicy::default(),
        max_frontier_bytes: None,
        memo_path: None,
        random: 3,
        seed: 0x5151_F1ED,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--mips" => opts.mips = true,
            "--input" => {
                opts.input = value("--input")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|_| format!("bad input `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--detectors" => {
                let path = value("--detectors")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                opts.detectors = DetectorSet::parse(&text).map_err(|e| e.to_string())?;
            }
            "--class" => {
                opts.class = match value("--class")?.as_str() {
                    "register" => ErrorClass::RegisterFile,
                    "memory" => ErrorClass::Memory,
                    "pc" => ErrorClass::ProgramCounter,
                    "fetch" => ErrorClass::Computation(ComputationError::Fetch),
                    other => return Err(format!("unknown error class `{other}`")),
                };
            }
            "--max-steps" => {
                opts.max_steps = value("--max-steps")?
                    .parse()
                    .map_err(|_| "bad --max-steps")?;
            }
            "--max-solutions" => {
                opts.max_solutions = value("--max-solutions")?
                    .parse()
                    .map_err(|_| "bad --max-solutions")?;
            }
            "--frontier" => {
                opts.policy = match value("--frontier")?.as_str() {
                    "bfs" => FrontierPolicy::Bfs,
                    "dfs" => FrontierPolicy::Dfs,
                    "priority-constraints" => {
                        FrontierPolicy::Priority(PriorityHeuristic::ConstraintMapSize)
                    }
                    "priority-depth" => FrontierPolicy::Priority(PriorityHeuristic::Depth),
                    "priority-output" => FrontierPolicy::Priority(PriorityHeuristic::OutputLen),
                    "iddfs" => FrontierPolicy::iterative_deepening(),
                    other => return Err(format!("unknown frontier policy `{other}`")),
                };
            }
            "--max-frontier-bytes" => {
                opts.max_frontier_bytes = Some(
                    value("--max-frontier-bytes")?
                        .parse()
                        .map_err(|_| "bad --max-frontier-bytes")?,
                );
            }
            "--memo-path" => {
                opts.memo_path = Some(value("--memo-path")?.clone());
            }
            "--random" => {
                opts.random = value("--random")?.parse().map_err(|_| "bad --random")?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?;
            }
            other if opts.program_path.is_empty() && !other.starts_with('-') => {
                opts.program_path = other.to_owned();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.program_path.is_empty() {
        return Err("missing program file".into());
    }
    Ok(opts)
}

fn load_program(opts: &Opts) -> Result<Program, String> {
    let source = std::fs::read_to_string(&opts.program_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.program_path))?;
    if opts.mips {
        symplfied::asm::mips::translate_mips(&source).map_err(|e| e.to_string())
    } else {
        parse_program(&source).map_err(|e| e.to_string())
    }
}

/// Resolves a wire task's program id against the bundled workloads.
fn resolve_workload(id: &str) -> Option<(Program, DetectorSet)> {
    symplfied::apps::resolve_workload(id).map(|w| (w.program, w.detectors))
}

/// The `serve` subcommand: a distributed-campaign worker agent.
fn serve(args: &[String]) -> Result<(), String> {
    let mut listen = String::from("127.0.0.1:0");
    let mut join: Option<String> = None;
    let mut opts = symplfied::wire::ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                listen = it.next().ok_or("--listen expects a value")?.clone();
            }
            "--join" => {
                join = Some(it.next().ok_or("--join expects a value")?.clone());
            }
            "--max-clients" => {
                opts.max_clients = it
                    .next()
                    .ok_or("--max-clients expects a value")?
                    .parse()
                    .map_err(|_| "bad --max-clients")?;
                if opts.max_clients == 0 {
                    return Err("--max-clients must be at least 1".into());
                }
            }
            "--status-interval" => {
                let secs: u64 = it
                    .next()
                    .ok_or("--status-interval expects a value")?
                    .parse()
                    .map_err(|_| "bad --status-interval")?;
                if secs == 0 {
                    return Err("--status-interval must be at least 1 second".into());
                }
                opts.status_interval = Some(std::time::Duration::from_secs(secs));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if let Some(addr) = join {
        // Elastic membership: dial a *running* campaign's join listener
        // and serve tasks until the coordinator hangs up.
        let label = format!("joiner-pid{}", std::process::id());
        return symplfied::wire::join_coordinator(&addr, &label, &resolve_workload)
            .map_err(|e| e.to_string());
    }
    let server = symplfied::wire::WorkerServer::bind(&listen)
        .map_err(|e| format!("cannot bind {listen}: {e}"))?;
    server.announce().map_err(|e| e.to_string())?;
    let stats = server
        .serve_with(&resolve_workload, &opts)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "sympl-wire service: drained after serving {} client(s)",
        stats.clients.len()
    );
    Ok(())
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    if command == "serve" {
        return serve(rest);
    }
    let opts = parse_opts(rest)?;
    let program = load_program(&opts)?;

    match command.as_str() {
        "run" => {
            let mut state = MachineState::with_input(opts.input.clone());
            run_concrete(
                &mut state,
                &program,
                &opts.detectors,
                &ExecLimits::with_max_steps(opts.max_steps),
            )
            .map_err(|e| e.to_string())?;
            println!("status: {}", state.status());
            println!("output: {}", state.rendered_output());
            println!("steps:  {}", state.steps());
            Ok(())
        }
        "disasm" => {
            print!("{}", program.listing());
            Ok(())
        }
        "verify" => {
            let mut framework = Framework::new(program)
                .with_detectors(opts.detectors.clone())
                .with_input(opts.input.clone())
                .with_limits(SearchLimits {
                    exec: ExecLimits::with_max_steps(opts.max_steps),
                    max_solutions: opts.max_solutions,
                    policy: opts.policy,
                    max_frontier_bytes: opts.max_frontier_bytes,
                    ..SearchLimits::default()
                });
            // Load (or create) the cross-campaign memo store. A file whose
            // key does not match this exact program + detector set is
            // refused — a stale store must never be probed.
            let store = match &opts.memo_path {
                Some(path) => {
                    let key =
                        symplfied::check::memo_key(framework.program(), framework.detectors());
                    let file = std::path::Path::new(path);
                    let store = if file.exists() {
                        let (store, truncated) = symplfied::check::MemoStore::load(file, Some(key))
                            .map_err(|e| format!("cannot use memo store {path}: {e}"))?;
                        if truncated {
                            eprintln!(
                                "warning: memo store {path} had a truncated tail; \
                                 kept the intact prefix"
                            );
                        }
                        store
                    } else {
                        symplfied::check::MemoStore::new(key)
                    };
                    Some(std::sync::Arc::new(store))
                }
                None => None,
            };
            if let Some(store) = &store {
                framework = framework.with_memo(std::sync::Arc::clone(store));
            }
            let verdict = framework.enumerate_undetected(opts.class);
            println!("{}", verdict.summary());
            for f in &verdict.findings {
                println!(
                    "  {} -> {} `{}`",
                    f.point,
                    f.solution.state.status(),
                    f.solution.state.rendered_output()
                );
                println!("      trace: {}", f.solution.trace_summary(12));
            }
            if let (Some(path), Some(store)) = (&opts.memo_path, &store) {
                store
                    .save(std::path::Path::new(path))
                    .map_err(|e| format!("cannot save memo store {path}: {e}"))?;
                println!(
                    "memo store: {} entr(ies) at {path} ({} served this run)",
                    store.len(),
                    store.hits()
                );
            }
            Ok(())
        }
        "ssim" => {
            let report = ssim::run_campaign(
                &program,
                &opts.detectors,
                &opts.input,
                &CampaignConfig {
                    seed: opts.seed,
                    random_per_point: opts.random,
                    ..CampaignConfig::default()
                },
                &ExecLimits::with_max_steps(opts.max_steps),
            );
            println!(
                "{} runs ({} not activated)",
                report.total_runs(),
                report.not_activated
            );
            for (outcome, n) in &report.counts {
                println!("  {n:>6}  {outcome}");
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
