//! The one-call framework API of Figure 1: program + detectors + error
//! class in; proof of resilience or enumeration of escaping errors out.

use std::sync::Arc;

use sympl_asm::Program;
use sympl_check::{Explorer, MemoStore, Predicate, SearchLimits};
use sympl_cluster::Finding;
use sympl_detect::DetectorSet;
use sympl_inject::{enumerate_points, golden_run, run_point_cached, ErrorClass, PrefixCache};

/// The SymPLFIED framework: holds the program under analysis, its
/// detectors, the reference input, and the search budgets.
///
/// Mirrors the paper's Figure-1 flow: the inputs are (1) a program in the
/// generic assembly language, (2) detectors embedded via `check`
/// annotations, (3) an error class; the output is either a proof that the
/// program is resilient to the class or a comprehensive set of errors that
/// evade detection and lead to failure.
#[derive(Debug, Clone)]
pub struct Framework {
    program: Program,
    detectors: DetectorSet,
    input: Vec<i64>,
    limits: SearchLimits,
    memo: Option<Arc<MemoStore>>,
}

impl Framework {
    /// Wraps a program with no detectors, empty input, default budgets.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Framework {
            program,
            detectors: DetectorSet::new(),
            input: Vec::new(),
            limits: SearchLimits::default(),
            memo: None,
        }
    }

    /// Sets the detector set the program's `check` instructions reference.
    #[must_use]
    pub fn with_detectors(mut self, detectors: DetectorSet) -> Self {
        self.detectors = detectors;
        self
    }

    /// Sets the input stream for the analyzed executions.
    #[must_use]
    pub fn with_input(mut self, input: Vec<i64>) -> Self {
        self.input = input;
        self
    }

    /// Sets the search budgets (watchdog bound, state/solution caps).
    #[must_use]
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches a cross-campaign [`MemoStore`]: every point search probes
    /// the store before expanding and records its exhausted result after,
    /// so a store warmed by a previous `enumerate_*` call (or loaded from
    /// disk) serves repeated searches without re-expansion. The caller is
    /// responsible for keying the store to this framework's program and
    /// detectors ([`MemoStore::for_campaign`]) — the CLI refuses a stale
    /// on-disk store at load time.
    #[must_use]
    pub fn with_memo(mut self, memo: Arc<MemoStore>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The program under analysis.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The detector set embedded in the analyzed executions.
    #[must_use]
    pub fn detectors(&self) -> &DetectorSet {
        &self.detectors
    }

    /// The golden (error-free) output for the configured input.
    #[must_use]
    pub fn golden_output(&self) -> Vec<i64> {
        golden_run(
            &self.program,
            &self.detectors,
            &self.input,
            &self.limits.exec,
        )
        .output_ints()
    }

    /// Enumerates every error of `class` that evades the detectors and
    /// leads to an *incorrect output* (normal halt, wrong printed values) —
    /// the paper's §6.1 query. Crashes and hangs are considered detected by
    /// the environment (exception handlers / watchdog).
    #[must_use]
    pub fn enumerate_undetected(&self, class: ErrorClass) -> Verdict {
        let expected = self.golden_output();
        self.enumerate_matching(class, &Predicate::WrongOutput { expected })
    }

    /// Enumerates every error of `class` whose outcome satisfies an
    /// arbitrary predicate (the generic `search ... such that` command).
    #[must_use]
    pub fn enumerate_matching(&self, class: ErrorClass, predicate: &Predicate) -> Verdict {
        let start = std::time::Instant::now();
        let points = enumerate_points(&self.program, &class);
        // One shared engine configuration for the whole enumeration; each
        // point's search is routed by budget to the sequential or the
        // work-stealing parallel engine (`Explorer::explore_auto`).
        let explorer = Explorer::new(&self.program, &self.detectors)
            .with_limits(self.limits.clone())
            .with_memo(self.memo.as_deref());
        // One error-free-prefix sweep for the whole enumeration: every
        // point's prepare phase is served from first-arrival snapshots.
        let cache = PrefixCache::new(
            &self.program,
            &self.detectors,
            &self.input,
            &self.limits.exec,
        );
        let mut findings = Vec::new();
        let mut complete = true;
        let mut states_explored = 0usize;
        let mut points_activated = 0usize;
        let mut point_workers = 0usize;
        let mut steals = 0usize;
        let mut peak_frontier_len = 0usize;
        let mut peak_frontier_bytes = 0usize;
        let mut spilled_states = 0usize;
        let mut memo_hits = 0usize;
        let mut memo_states_skipped = 0usize;
        for point in &points {
            let outcome = run_point_cached(&explorer, &cache, point, predicate);
            if outcome.activated {
                points_activated += 1;
            }
            states_explored += outcome.report.states_explored;
            point_workers = point_workers.max(outcome.report.workers);
            steals += outcome.report.steals;
            peak_frontier_len = peak_frontier_len.max(outcome.report.peak_frontier_len);
            peak_frontier_bytes = peak_frontier_bytes.max(outcome.report.peak_frontier_bytes);
            spilled_states += outcome.report.spilled_states;
            memo_hits += outcome.report.memo_hits;
            memo_states_skipped += outcome.report.memo_states_skipped;
            if !outcome.report.completed() && outcome.activated {
                complete = false;
            }
            for solution in outcome.report.solutions {
                findings.push(Finding {
                    task_id: 0,
                    point: *point,
                    solution,
                });
            }
        }
        let elapsed = start.elapsed();
        Verdict {
            class,
            points_examined: points.len(),
            points_activated,
            states_explored,
            states_per_second: sympl_check::SearchReport::throughput(states_explored, elapsed),
            point_workers,
            steals,
            peak_frontier_len,
            peak_frontier_bytes,
            spilled_states,
            memo_hits,
            memo_states_skipped,
            prefix_steps_saved: cache.steps_saved(),
            complete,
            findings,
        }
    }
}

/// The framework's answer for one error class.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The error class examined.
    pub class: ErrorClass,
    /// Injection points enumerated.
    pub points_examined: usize,
    /// Points whose fault was activated on the configured input.
    pub points_activated: usize,
    /// Total states the searches explored.
    pub states_explored: usize,
    /// Engine throughput over the whole enumeration (states per wall-clock
    /// second).
    pub states_per_second: f64,
    /// Widest engine that ran any point search: 1 when every point stayed
    /// sequential, N when a big-budget point engaged the N-way
    /// work-stealing engine (0 if no search ran).
    pub point_workers: usize,
    /// Work-steal operations across all parallel point searches.
    pub steals: usize,
    /// Largest frontier (in states, including any spilled to disk) any
    /// point search held at once.
    pub peak_frontier_len: usize,
    /// Largest approximate in-RAM frontier footprint (bytes) any point
    /// search held at once — the figure a
    /// `SearchLimits::max_frontier_bytes` budget bounds.
    pub peak_frontier_bytes: usize,
    /// Frontier states spilled to disk across all point searches.
    pub spilled_states: usize,
    /// Point searches served whole from the attached [`MemoStore`]
    /// (0 without one). Served searches replay their recorded statistics,
    /// so `states_explored` already includes the skipped states.
    pub memo_hits: usize,
    /// States the memo hits did not have to re-expand.
    pub memo_states_skipped: usize,
    /// Concrete error-free prefix steps served from the enumeration's
    /// prefix cache instead of re-executed per point.
    pub prefix_steps_saved: u64,
    /// Whether every activated point's search ran to completion.
    pub complete: bool,
    /// All predicate-matching outcomes (empty for a resilient program).
    pub findings: Vec<Finding>,
}

impl Verdict {
    /// Whether this is a *proof* of resilience: complete exploration with
    /// no escaping error (paper output 1: "proof that the program with the
    /// embedded detectors is resilient to the error class considered").
    #[must_use]
    pub fn is_resilient(&self) -> bool {
        self.complete && self.findings.is_empty()
    }

    /// Human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut frontier = if self.spilled_states > 0 {
            format!(
                ", frontier peak {} states / ~{} bytes in RAM ({} spilled)",
                self.peak_frontier_len, self.peak_frontier_bytes, self.spilled_states
            )
        } else {
            format!(
                ", frontier peak {} states / ~{} bytes",
                self.peak_frontier_len, self.peak_frontier_bytes
            )
        };
        if self.memo_hits > 0 {
            frontier.push_str(&format!(
                ", memo served {} search(es) / {} states",
                self.memo_hits, self.memo_states_skipped
            ));
        }
        if self.is_resilient() {
            format!(
                "PROOF: resilient to {} ({} points, {} activated, {} states explored \
                 at {:.0} states/s, {}-way engine{frontier})",
                self.class,
                self.points_examined,
                self.points_activated,
                self.states_explored,
                self.states_per_second,
                self.point_workers.max(1)
            )
        } else {
            format!(
                "{} escaping error(s) found for {} ({} points, {} activated, {} states \
                 at {:.0} states/s, {}-way engine{frontier}{})",
                self.findings.len(),
                self.class,
                self.points_examined,
                self.points_activated,
                self.states_explored,
                self.states_per_second,
                self.point_workers.max(1),
                if self.complete {
                    ""
                } else {
                    "; search truncated"
                }
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;
    use sympl_detect::Detector;
    use sympl_machine::ExecLimits;

    #[test]
    fn undetected_errors_found_without_detectors() {
        let p = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let fw = Framework::new(p).with_input(vec![41]);
        assert_eq!(fw.golden_output(), vec![42]);
        let verdict = fw.enumerate_undetected(ErrorClass::RegisterFile);
        assert!(!verdict.is_resilient());
        assert!(!verdict.findings.is_empty());
        assert!(verdict.summary().contains("escaping"));
    }

    #[test]
    fn detection_window_after_check_is_exposed() {
        // The detector pins $1 = 7, but an error striking *between* the
        // check and the print still escapes — exactly the corner case
        // SymPLFIED exists to expose.
        let p = parse_program("mov $1, 7\ncheck 1\nprint $1\nhalt").unwrap();
        let mut detectors = DetectorSet::new();
        detectors.insert(Detector::parse("det(1, $(1), ==, (7))").unwrap());
        let fw = Framework::new(p).with_detectors(detectors);
        let verdict = fw.enumerate_undetected(ErrorClass::RegisterFile);
        assert!(!verdict.is_resilient());
        assert_eq!(verdict.findings.len(), 1);
        assert_eq!(
            verdict.findings[0].point.breakpoint, 2,
            "the only escaping error strikes at the print, after the check"
        );
    }

    #[test]
    fn program_without_register_dependent_output_is_resilient() {
        // The stored value is checked and never printed: register errors
        // cannot corrupt the output, and the framework proves it.
        let p = parse_program("mov $1, 7\ncheck 1\nst $1, 100($0)\nprints \"ok\"\nhalt").unwrap();
        let mut detectors = DetectorSet::new();
        detectors.insert(Detector::parse("det(1, $(1), ==, (7))").unwrap());
        let fw = Framework::new(p).with_detectors(detectors);
        let verdict = fw.enumerate_undetected(ErrorClass::RegisterFile);
        assert!(verdict.is_resilient(), "{}", verdict.summary());
        assert!(verdict.summary().contains("PROOF"));
    }

    #[test]
    fn memoized_framework_reruns_are_served() {
        let p = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let fw = Framework::new(p).with_input(vec![41]);
        let store = Arc::new(MemoStore::for_campaign(fw.program(), fw.detectors()));
        let fw = fw.with_memo(Arc::clone(&store));
        let cold = fw.enumerate_undetected(ErrorClass::RegisterFile);
        let warm = fw.enumerate_undetected(ErrorClass::RegisterFile);
        assert_eq!(cold.memo_hits, 0, "first enumeration finds an empty store");
        assert!(!store.is_empty(), "exhausted searches were recorded");
        assert!(warm.memo_hits > 0, "rerun is served from the store");
        assert_eq!(cold.findings, warm.findings, "served results are exact");
        assert_eq!(cold.states_explored, warm.states_explored);
        assert!(warm.prefix_steps_saved > 0, "prefix cache is always on");
        assert!(warm.summary().contains("memo served"));
    }

    #[test]
    fn custom_predicate_enumeration() {
        let p = parse_program("read $1\nprint $1\nhalt").unwrap();
        let fw = Framework::new(p)
            .with_input(vec![3])
            .with_limits(SearchLimits {
                exec: ExecLimits::with_max_steps(100),
                ..SearchLimits::default()
            });
        let verdict =
            fw.enumerate_matching(ErrorClass::RegisterFile, &Predicate::OutputContainsErr);
        assert_eq!(
            verdict.points_examined, 1,
            "only `print $1` reads a register"
        );
        assert_eq!(verdict.findings.len(), 1);
    }
}
