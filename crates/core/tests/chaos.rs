//! Chaos acceptance suite: real `symplfied serve` worker *processes*
//! under injected faults. Four scenarios, all gated on reproducing the
//! in-process `CampaignReport::outcome_digest` verbatim:
//!
//! 1. **Kill a worker mid-campaign** — SIGKILL one of three worker
//!    processes after the first pooled result; the survivors absorb its
//!    re-queued work and the campaign finishes degraded but correct.
//! 2. **Kill the coordinator, then resume** — a checkpointing
//!    coordinator aborts mid-campaign (the deterministic stand-in for a
//!    coordinator crash); a fresh coordinator resumes from the
//!    checkpoint, re-running only the missing shards, and merges to the
//!    identical digest.
//! 3. **Elastic membership under fire** — SIGKILL a worker after the
//!    first result while two fresh `serve --join` processes enter the
//!    running campaign through its join listener, with idle-worker
//!    shard splitting armed.
//! 4. **Resume under a different fleet** — the checkpoint written by
//!    one fleet is resumed by an entirely fresh, larger fleet (the
//!    original processes are dead); the campaign key is fleet-blind, so
//!    the merge still lands on the in-process digest.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use symplfied::check::{Predicate, SearchLimits};
use symplfied::cluster::{run_cluster, ClusterConfig};
use symplfied::inject::{Campaign, ErrorClass};
use symplfied::machine::ExecLimits;
use symplfied::wire::{
    run_distributed_with, spawn_loopback_workers, CampaignJob, ChaosPlan, DistOptions, WireError,
};

/// The deterministic campaign configuration: sequential point searches
/// (`point_workers_hint = Some(1)`) and no wall-clock budgets, so even
/// truncated searches explore a schedule-independent prefix and every
/// run must agree bit-for-bit on outcomes.
fn deterministic_config(max_steps: u64, tasks: usize) -> ClusterConfig {
    ClusterConfig {
        workers: 2,
        tasks,
        search: SearchLimits {
            exec: ExecLimits::with_max_steps(max_steps),
            max_states: 20_000,
            ..SearchLimits::default()
        },
        task_budget: None,
        max_findings_per_task: 10,
        point_workers_hint: Some(1),
    }
}

fn serve_args() -> Vec<String> {
    ["serve", "--listen", "127.0.0.1:0"]
        .map(String::from)
        .to_vec()
}

#[test]
fn sigkilled_worker_mid_campaign_still_reproduces_the_in_process_digest() {
    let w = symplfied::apps::tcas();
    let golden = symplfied::apps::golden(&w).output_ints();
    let mut campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    campaign.points.truncate(48);
    let predicate = Predicate::WrongOutput { expected: golden };
    let config = deterministic_config(w.max_steps, 6);

    let local = run_cluster(
        &w.program,
        &w.detectors,
        &w.input,
        &campaign,
        &predicate,
        &config,
    );

    let exe = Path::new(env!("CARGO_BIN_EXE_symplfied"));
    let workers = spawn_loopback_workers(exe, &serve_args(), 3).expect("spawn 3 worker processes");
    let addrs = workers.addrs.clone();

    let job = CampaignJob {
        program: &w.program,
        program_id: "tcas",
        input: &w.input,
        campaign: &campaign,
        predicate: &predicate,
        config: &config,
    };
    // SIGKILL the first worker process once the first result lands —
    // mid-campaign, with its own task very likely in flight.
    let workers = Mutex::new(workers);
    let killed = AtomicBool::new(false);
    let kill_one = |completed: usize| {
        if completed >= 1 && !killed.swap(true, Ordering::SeqCst) {
            workers
                .lock()
                .expect("workers lock")
                .kill_one(0)
                .expect("SIGKILL a worker process");
        }
    };
    let opts = DistOptions {
        shutdown_workers: true,
        chaos: ChaosPlan {
            on_result: Some(&kill_one),
            ..ChaosPlan::default()
        },
        ..DistOptions::default()
    };
    let distributed = run_distributed_with(&job, &addrs, &opts).expect("degraded campaign");
    assert!(killed.load(Ordering::SeqCst), "the chaos kill must fire");
    workers
        .into_inner()
        .expect("workers lock")
        .join()
        .expect("surviving workers exit cleanly after shutdown");

    assert_eq!(
        distributed.outcome_digest(),
        local.outcome_digest(),
        "a campaign that lost a worker to SIGKILL must still reproduce \
         the in-process outcome digest"
    );
    assert_eq!(distributed.tasks.len(), local.tasks.len());
    assert_eq!(distributed.findings, local.findings);
    assert!(
        distributed.degraded,
        "losing a worker must be reported as degradation"
    );
    assert!(distributed.workers_lost >= 1);
}

#[test]
fn killed_coordinator_resumes_from_checkpoint_to_the_in_process_digest() {
    let w = symplfied::apps::tcas();
    let golden = symplfied::apps::golden(&w).output_ints();
    let mut campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    campaign.points.truncate(48);
    let predicate = Predicate::WrongOutput { expected: golden };
    let config = deterministic_config(w.max_steps, 6);

    let local = run_cluster(
        &w.program,
        &w.detectors,
        &w.input,
        &campaign,
        &predicate,
        &config,
    );

    let exe = Path::new(env!("CARGO_BIN_EXE_symplfied"));
    let workers = spawn_loopback_workers(exe, &serve_args(), 2).expect("spawn 2 worker processes");
    let addrs = workers.addrs.clone();
    let job = CampaignJob {
        program: &w.program,
        program_id: "tcas",
        input: &w.input,
        campaign: &campaign,
        predicate: &predicate,
        config: &config,
    };
    let ck = std::env::temp_dir().join(format!(
        "symplfied-chaos-resume-{}.checkpoint",
        std::process::id()
    ));

    // Leg 1: the checkpointing coordinator "crashes" after two results.
    // The worker processes survive (no shutdown frame is sent on abort).
    let leg1 = DistOptions {
        checkpoint: Some(&ck),
        chaos: ChaosPlan {
            abort_after_results: Some(2),
            ..ChaosPlan::default()
        },
        ..DistOptions::default()
    };
    let err = run_distributed_with(&job, &addrs, &leg1).expect_err("the abort leg must fail");
    assert!(
        matches!(err, WireError::CoordinatorAborted { completed } if completed >= 2),
        "{err}"
    );

    // Leg 2: a fresh coordinator resumes the same worker processes from
    // the checkpoint — only the missing shards are re-run.
    let leg2 = DistOptions {
        shutdown_workers: true,
        resume: Some(&ck),
        ..DistOptions::default()
    };
    let resumed = run_distributed_with(&job, &addrs, &leg2).expect("resumed campaign");
    workers.join().expect("workers exit cleanly after shutdown");
    let _ = std::fs::remove_file(&ck);

    assert!(
        resumed.resumed_tasks >= 2,
        "the checkpointed shards must be seeded, not re-run"
    );
    assert!(
        resumed.resumed_tasks < local.tasks.len(),
        "the missing shards must actually be re-run"
    );
    assert_eq!(
        resumed.outcome_digest(),
        local.outcome_digest(),
        "checkpointed + re-run shards must merge to the uninterrupted \
         in-process outcome digest"
    );
    assert_eq!(resumed.tasks.len(), local.tasks.len());
    assert_eq!(resumed.findings, local.findings);
}

#[test]
fn elastic_campaign_with_kill_late_joins_and_splitting_reproduces_the_digest() {
    let w = symplfied::apps::tcas();
    let golden = symplfied::apps::golden(&w).output_ints();
    let mut campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    campaign.points.truncate(48);
    let predicate = Predicate::WrongOutput { expected: golden };
    let mut config = deterministic_config(w.max_steps, 6);
    // Splitting preserves exactness only when the per-task finding cap
    // cannot bind; lift it so the split gate opens (both runs share the
    // config, so the comparison is still like-for-like).
    config.max_findings_per_task = campaign.len() * config.search.max_solutions;

    let local = run_cluster(
        &w.program,
        &w.detectors,
        &w.input,
        &campaign,
        &predicate,
        &config,
    );

    let exe = Path::new(env!("CARGO_BIN_EXE_symplfied"));
    let workers = spawn_loopback_workers(exe, &serve_args(), 2).expect("spawn 2 worker processes");
    let addrs = workers.addrs.clone();
    let join_listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind a join listener");
    let join_addr = join_listener.local_addr().expect("join listener address");

    let job = CampaignJob {
        program: &w.program,
        program_id: "tcas",
        input: &w.input,
        campaign: &campaign,
        predicate: &predicate,
        config: &config,
    };

    // After the first pooled result: SIGKILL one of the original workers
    // and send two fresh `serve --join` processes into the breach.
    let workers = Mutex::new(workers);
    let killed = AtomicBool::new(false);
    let kill_one = |completed: usize| {
        if completed >= 1 && !killed.swap(true, Ordering::SeqCst) {
            workers
                .lock()
                .expect("workers lock")
                .kill_one(0)
                .expect("SIGKILL a worker process");
        }
    };
    let joiners: Mutex<Vec<std::process::Child>> = Mutex::new(Vec::new());
    let spawn_joiners = || {
        let mut guard = joiners.lock().expect("joiners lock");
        for _ in 0..2 {
            let child = std::process::Command::new(exe)
                .args(["serve", "--join", &join_addr.to_string()])
                .spawn()
                .expect("spawn a late-joining worker process");
            guard.push(child);
        }
    };
    let opts = DistOptions {
        shutdown_workers: true,
        join_listener: Some(&join_listener),
        split_idle: true,
        chaos: ChaosPlan {
            on_result: Some(&kill_one),
            delayed_join: Some((1, &spawn_joiners)),
            ..ChaosPlan::default()
        },
        ..DistOptions::default()
    };
    let distributed = run_distributed_with(&job, &addrs, &opts).expect("elastic campaign");
    assert!(killed.load(Ordering::SeqCst), "the chaos kill must fire");
    workers
        .into_inner()
        .expect("workers lock")
        .join()
        .expect("surviving pre-listed workers exit cleanly");
    // Joiners exit on the coordinator's shutdown frame (or its hang-up);
    // give them a grace period, then insist.
    for mut child in joiners.into_inner().expect("joiners lock") {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match child.try_wait().expect("poll a joiner process") {
                Some(status) => {
                    assert!(status.success(), "joiner exited with {status}");
                    break;
                }
                None if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                None => {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("a late joiner did not exit after the campaign");
                }
            }
        }
    }

    assert_eq!(
        distributed.outcome_digest(),
        local.outcome_digest(),
        "a campaign that lost a worker, admitted two late joiners, and \
         may have split shards must still reproduce the in-process digest"
    );
    assert_eq!(distributed.tasks.len(), local.tasks.len());
    assert_eq!(distributed.findings, local.findings);
    assert!(
        distributed.workers_joined >= 1,
        "at least one late joiner must have been admitted mid-campaign \
         (joined: {})",
        distributed.workers_joined
    );
    assert!(
        distributed.degraded,
        "the SIGKILL must register as degradation"
    );
}

#[test]
fn checkpoint_written_by_one_fleet_resumes_under_a_different_fleet() {
    let w = symplfied::apps::tcas();
    let golden = symplfied::apps::golden(&w).output_ints();
    let mut campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    campaign.points.truncate(48);
    let predicate = Predicate::WrongOutput { expected: golden };
    let config = deterministic_config(w.max_steps, 6);

    let local = run_cluster(
        &w.program,
        &w.detectors,
        &w.input,
        &campaign,
        &predicate,
        &config,
    );

    let exe = Path::new(env!("CARGO_BIN_EXE_symplfied"));
    let job = CampaignJob {
        program: &w.program,
        program_id: "tcas",
        input: &w.input,
        campaign: &campaign,
        predicate: &predicate,
        config: &config,
    };
    let ck = std::env::temp_dir().join(format!(
        "symplfied-elastic-refleet-{}.checkpoint",
        std::process::id()
    ));

    // Leg 1: fleet A (two workers) checkpoints, then the coordinator
    // aborts. Fleet A is then destroyed entirely — dropping the handle
    // SIGKILLs the processes — so nothing of the original fleet can
    // leak into the resume.
    {
        let fleet_a =
            spawn_loopback_workers(exe, &serve_args(), 2).expect("spawn fleet A (2 workers)");
        let leg1 = DistOptions {
            checkpoint: Some(&ck),
            chaos: ChaosPlan {
                abort_after_results: Some(2),
                ..ChaosPlan::default()
            },
            ..DistOptions::default()
        };
        let err =
            run_distributed_with(&job, &fleet_a.addrs, &leg1).expect_err("the abort leg must fail");
        assert!(
            matches!(err, WireError::CoordinatorAborted { completed } if completed >= 2),
            "{err}"
        );
    }

    // Leg 2: fleet B — three *fresh* workers on different ports — picks
    // the checkpoint up. The campaign key is a pure function of the job,
    // never of the fleet, so the seeded shards are accepted verbatim.
    let fleet_b = spawn_loopback_workers(exe, &serve_args(), 3).expect("spawn fleet B (3 workers)");
    let leg2 = DistOptions {
        shutdown_workers: true,
        resume: Some(&ck),
        ..DistOptions::default()
    };
    let resumed = run_distributed_with(&job, &fleet_b.addrs, &leg2).expect("resumed campaign");
    fleet_b
        .join()
        .expect("fleet B exits cleanly after shutdown");
    let _ = std::fs::remove_file(&ck);

    assert!(
        resumed.resumed_tasks >= 2,
        "fleet B must seed the shards fleet A completed, not re-run them"
    );
    assert_eq!(
        resumed.outcome_digest(),
        local.outcome_digest(),
        "a checkpoint written under one fleet must resume under a \
         different fleet to the identical in-process digest"
    );
    assert_eq!(resumed.tasks.len(), local.tasks.len());
    assert_eq!(resumed.findings, local.findings);
}
