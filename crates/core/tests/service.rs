//! Multi-tenant campaign-service acceptance: two *concurrent* campaigns
//! (tcas + replace) driven by separate coordinators through one shared
//! fleet of real `symplfied serve` worker processes must each reproduce
//! their in-process `CampaignReport` verbatim — the tenant-blindness half
//! of the determinism contract the `service-demo` CI leg gates on.

use std::path::Path;

use symplfied::check::{Predicate, SearchLimits};
use symplfied::cluster::{run_cluster, CampaignReport, ClusterConfig};
use symplfied::inject::{Campaign, ErrorClass};
use symplfied::machine::ExecLimits;
use symplfied::wire::{
    run_distributed_with, shutdown_worker, spawn_loopback_workers, CampaignJob, DistOptions,
};

/// The deterministic campaign configuration: sequential point searches
/// (`point_workers_hint = Some(1)`) and no wall-clock budgets, so the
/// outcome is schedule-independent no matter how the service interleaves
/// the two tenants' tasks.
fn deterministic_config(max_steps: u64, tasks: usize) -> ClusterConfig {
    ClusterConfig {
        workers: 2,
        tasks,
        search: SearchLimits {
            exec: ExecLimits::with_max_steps(max_steps),
            max_states: 20_000,
            ..SearchLimits::default()
        },
        task_budget: None,
        max_findings_per_task: 10,
        point_workers_hint: Some(1),
    }
}

fn assert_verbatim(distributed: &CampaignReport, local: &CampaignReport, which: &str) {
    assert_eq!(
        distributed.findings, local.findings,
        "{which}: findings must match verbatim"
    );
    assert_eq!(distributed.tasks.len(), local.tasks.len(), "{which}");
    assert_eq!(
        distributed.outcome_digest(),
        local.outcome_digest(),
        "{which}: the shared-service campaign must reproduce the in-process outcome digest"
    );
    assert!(distributed.states_explored() > 0, "{which} did real work");
}

#[test]
fn two_concurrent_campaigns_share_a_fleet_and_reproduce_their_digests() {
    // Tenant A: a truncated tcas register campaign.
    let tcas = symplfied::apps::tcas();
    let tcas_golden = symplfied::apps::golden(&tcas).output_ints();
    let mut tcas_campaign = Campaign::new(&tcas.program, ErrorClass::RegisterFile);
    tcas_campaign.points.truncate(48);
    let tcas_predicate = Predicate::WrongOutput {
        expected: tcas_golden,
    };
    let tcas_config = deterministic_config(tcas.max_steps, 6);

    // Tenant B: a truncated replace register campaign at double priority.
    let replace = symplfied::apps::replace();
    let replace_golden = symplfied::apps::golden(&replace).output_ints();
    let mut replace_campaign = Campaign::new(&replace.program, ErrorClass::RegisterFile);
    replace_campaign.points.truncate(24);
    let replace_predicate = Predicate::WrongOutput {
        expected: replace_golden,
    };
    let replace_config = deterministic_config(6_000, 4);

    let tcas_local = run_cluster(
        &tcas.program,
        &tcas.detectors,
        &tcas.input,
        &tcas_campaign,
        &tcas_predicate,
        &tcas_config,
    );
    let replace_local = run_cluster(
        &replace.program,
        &replace.detectors,
        &replace.input,
        &replace_campaign,
        &replace_predicate,
        &replace_config,
    );

    // One shared 2-worker fleet; both coordinators dial the same addrs.
    let exe = Path::new(env!("CARGO_BIN_EXE_symplfied"));
    let serve_args: Vec<String> = ["serve", "--listen", "127.0.0.1:0"]
        .map(String::from)
        .to_vec();
    let workers = spawn_loopback_workers(exe, &serve_args, 2).expect("spawn 2 worker processes");
    let addrs = workers.addrs.clone();

    let tcas_job = CampaignJob {
        program: &tcas.program,
        program_id: "tcas",
        input: &tcas.input,
        campaign: &tcas_campaign,
        predicate: &tcas_predicate,
        config: &tcas_config,
    };
    let replace_job = CampaignJob {
        program: &replace.program,
        program_id: "replace",
        input: &replace.input,
        campaign: &replace_campaign,
        predicate: &replace_predicate,
        config: &replace_config,
    };
    let opts_for = |label: &str, priority: u64| DistOptions {
        // Neither coordinator owns the shared fleet; it is drained
        // explicitly below once both campaigns are done.
        shutdown_workers: false,
        client_label: Some(label.to_owned()),
        client_priority: priority,
        ..DistOptions::default()
    };

    let (tcas_dist, replace_dist) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_distributed_with(&tcas_job, &addrs, &opts_for("tcas", 1)));
        let b = scope.spawn(|| run_distributed_with(&replace_job, &addrs, &opts_for("replace", 2)));
        (
            a.join().expect("tcas coordinator thread"),
            b.join().expect("replace coordinator thread"),
        )
    });
    let tcas_dist = tcas_dist.expect("tcas campaign over the shared fleet");
    let replace_dist = replace_dist.expect("replace campaign over the shared fleet");

    for addr in &addrs {
        shutdown_worker(addr).expect("drain a shared worker");
    }
    workers
        .join()
        .expect("workers exit cleanly after the drain");

    assert_verbatim(&tcas_dist, &tcas_local, "tcas");
    assert_verbatim(&replace_dist, &replace_local, "replace");
}
