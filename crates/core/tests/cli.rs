//! Integration tests for the `symplfied` command-line front-end.

use std::io::Write;
use std::process::Command;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("symplfied-cli-test-{name}"));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_symplfied"))
}

#[test]
fn run_executes_a_program() {
    let prog = write_temp("run.sasm", "read $1\naddi $2, $1, 1\nprint $2\nhalt\n");
    let out = cli()
        .args(["run", prog.to_str().unwrap(), "--input", "41"])
        .output()
        .expect("spawn CLI");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("status: halted"), "{stdout}");
    assert!(stdout.contains("output: 42"), "{stdout}");
}

#[test]
fn disasm_lists_instructions() {
    let prog = write_temp("disasm.sasm", "mov $1, 3\nloop: jmp loop\n");
    let out = cli()
        .args(["disasm", prog.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("loop:"), "{stdout}");
    assert!(stdout.contains("jmp"), "{stdout}");
}

#[test]
fn verify_reports_escaping_errors() {
    let prog = write_temp("verify.sasm", "read $1\nprint $1\nhalt\n");
    let out = cli()
        .args([
            "verify",
            prog.to_str().unwrap(),
            "--input",
            "7",
            "--class",
            "register",
            "--max-steps",
            "500",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("escaping error"), "{stdout}");
    assert!(stdout.contains("trace:"), "{stdout}");
}

#[test]
fn verify_with_detectors_file() {
    let prog = write_temp(
        "verify-det.sasm",
        "mov $1, 7\ncheck 1\nst $1, 100($0)\nprints \"ok\"\nhalt\n",
    );
    let dets = write_temp("verify-det.txt", "det(1, $(1), ==, (7))\n");
    let out = cli()
        .args([
            "verify",
            prog.to_str().unwrap(),
            "--detectors",
            dets.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PROOF"), "{stdout}");
}

#[test]
fn ssim_prints_outcome_histogram() {
    let prog = write_temp("ssim.sasm", "read $1\nmult $2, $1, $1\nprint $2\nhalt\n");
    let out = cli()
        .args([
            "ssim",
            prog.to_str().unwrap(),
            "--input",
            "3",
            "--random",
            "1",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("runs"), "{stdout}");
    assert!(stdout.contains("output"), "{stdout}");
}

#[test]
fn mips_flag_translates() {
    let prog = write_temp(
        "mips.s",
        "main:\n  li $v0, 5\n  syscall\n  move $a0, $v0\n  li $v0, 1\n  syscall\n  li $v0, 10\n  syscall\n",
    );
    let out = cli()
        .args(["run", prog.to_str().unwrap(), "--mips", "--input", "9"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("output: 9"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_message() {
    for args in [
        vec!["run"],
        vec!["frobnicate", "/nonexistent"],
        vec!["run", "/nonexistent-file.sasm"],
        vec!["verify", "/nonexistent-file.sasm", "--class", "quantum"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert!(!out.status.success(), "args {args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{stderr}");
        assert!(stderr.contains("usage:"), "{stderr}");
    }
}
