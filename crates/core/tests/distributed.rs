//! End-to-end distributed campaign: a loopback coordinator driving two
//! real `symplfied serve` worker *processes* must reproduce the
//! in-process cluster's `CampaignReport` verbatim — the acceptance
//! criterion the `distributed-campaign` CI job gates on.

use std::path::Path;

use symplfied::check::{Predicate, SearchLimits};
use symplfied::cluster::{run_cluster, ClusterConfig};
use symplfied::inject::{Campaign, ErrorClass};
use symplfied::machine::ExecLimits;
use symplfied::wire::{run_distributed, spawn_loopback_workers, CampaignJob};

/// The deterministic campaign configuration: sequential point searches
/// (`point_workers_hint = Some(1)`) and no wall-clock budgets, so even
/// truncated searches explore a schedule-independent prefix and the two
/// runs must agree bit-for-bit on outcomes.
fn deterministic_config(max_steps: u64, tasks: usize) -> ClusterConfig {
    ClusterConfig {
        workers: 2,
        tasks,
        search: SearchLimits {
            exec: ExecLimits::with_max_steps(max_steps),
            max_states: 20_000,
            ..SearchLimits::default()
        },
        task_budget: None,
        max_findings_per_task: 10,
        point_workers_hint: Some(1),
    }
}

#[test]
fn two_worker_processes_reproduce_the_in_process_tcas_campaign() {
    let w = symplfied::apps::tcas();
    let golden = symplfied::apps::golden(&w).output_ints();
    let mut campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    // A prefix of the register campaign keeps the test to seconds while
    // still sweeping real injection points through real processes.
    campaign.points.truncate(48);
    let predicate = Predicate::WrongOutput { expected: golden };
    let config = deterministic_config(w.max_steps, 6);

    let local = run_cluster(
        &w.program,
        &w.detectors,
        &w.input,
        &campaign,
        &predicate,
        &config,
    );

    let exe = Path::new(env!("CARGO_BIN_EXE_symplfied"));
    let serve_args: Vec<String> = ["serve", "--listen", "127.0.0.1:0"]
        .map(String::from)
        .to_vec();
    let workers = spawn_loopback_workers(exe, &serve_args, 2).expect("spawn 2 worker processes");
    let addrs = workers.addrs.clone();

    let job = CampaignJob {
        program: &w.program,
        program_id: "tcas",
        input: &w.input,
        campaign: &campaign,
        predicate: &predicate,
        config: &config,
    };
    let distributed = run_distributed(&job, &addrs, true).expect("distributed campaign");
    workers.join().expect("workers exit cleanly after shutdown");

    // The determinism contract: outcome counts and solution sets verbatim.
    assert_eq!(
        distributed.findings, local.findings,
        "findings must match verbatim"
    );
    assert_eq!(distributed.tasks.len(), local.tasks.len());
    for (d, l) in distributed.tasks.iter().zip(&local.tasks) {
        assert_eq!(d.id, l.id);
        assert_eq!(d.points_examined, l.points_examined);
        assert_eq!(d.points_total, l.points_total);
        assert_eq!(d.activated, l.activated);
        assert_eq!(d.findings, l.findings);
        assert_eq!(d.completed, l.completed);
        assert_eq!(d.states_explored, l.states_explored);
        assert_eq!(d.point_workers, l.point_workers);
        assert_eq!(d.spilled_states, l.spilled_states);
    }
    assert_eq!(
        distributed.outcome_digest(),
        local.outcome_digest(),
        "distributed campaign must reproduce the in-process outcome digest"
    );
    // Sanity: the campaign actually did work.
    assert!(distributed.states_explored() > 0);
    assert!(!distributed.tasks.is_empty());
}
