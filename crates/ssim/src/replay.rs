//! Replaying symbolic findings with concrete witness values (§6.2).
//!
//! The paper verified that the catastrophic tcas error reported by
//! SymPLFIED "corresponds to a real error and is not a false-positive by
//! injecting these faults into the augmented Simplescalar simulator". This
//! module provides that cross-validation: take a symbolic injection point
//! and a witness value (from the solution state's constraint set), run the
//! concrete machine, and compare outcomes.

use sympl_asm::{Program, Reg};
use sympl_detect::DetectorSet;
use sympl_machine::{run_concrete, run_concrete_to_breakpoint, ExecLimits, MachineState};
use sympl_symbolic::Value;

use crate::ConcreteOutcome;

/// The result of replaying a witness value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayResult {
    /// The injected value.
    pub value: i64,
    /// The concrete outcome it produced.
    pub outcome: ConcreteOutcome,
}

/// Replays a register-error finding: runs to the breakpoint, writes the
/// witness value into the register, and executes to termination.
///
/// Returns `None` if the breakpoint is off the concrete path.
#[must_use]
#[allow(clippy::too_many_arguments)] // the replay is fully determined by these eight facts
pub fn replay_register_witness(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    breakpoint: usize,
    occurrence: u32,
    reg: Reg,
    value: i64,
    limits: &ExecLimits,
) -> Option<ReplayResult> {
    let mut state = MachineState::with_input(input.to_vec());
    let reached = run_concrete_to_breakpoint(
        &mut state, program, detectors, limits, breakpoint, occurrence,
    )
    .expect("pre-injection execution is concrete");
    if !reached {
        return None;
    }
    state.set_reg(reg, Value::Int(value));
    run_concrete(&mut state, program, detectors, limits).expect("replayed state is concrete");
    Some(ReplayResult {
        value,
        outcome: ConcreteOutcome::classify(&state),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;

    #[test]
    fn replay_reproduces_symbolic_finding() {
        // Symbolic analysis of this program finds that an error in $1 at
        // the branch can flip the output from 7 to 9 iff $1 == 1; replaying
        // the witness value 1 must reproduce output 9.
        let p = parse_program(
            "read $1\nbeq $1, 1, bad\nmov $2, 7\nprint $2\nhalt\nbad: mov $2, 9\nprint $2\nhalt",
        )
        .unwrap();
        let result = replay_register_witness(
            &p,
            &DetectorSet::new(),
            &[5],
            1,
            1,
            Reg::r(1),
            1,
            &ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(result.outcome, ConcreteOutcome::Output(vec![9]));
        // A non-witness value keeps the golden output.
        let benign = replay_register_witness(
            &p,
            &DetectorSet::new(),
            &[5],
            1,
            1,
            Reg::r(1),
            3,
            &ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(benign.outcome, ConcreteOutcome::Output(vec![7]));
    }

    #[test]
    fn replay_off_path_returns_none() {
        let p = parse_program("halt\nnop").unwrap();
        assert!(replay_register_witness(
            &p,
            &DetectorSet::new(),
            &[],
            1,
            1,
            Reg::r(1),
            0,
            &ExecLimits::default(),
        )
        .is_none());
    }
}

/// Replays a *permanent* (stuck-at) register fault: the register is forced
/// back to `value` after every instruction, modeling a permanently failed
/// register cell rather than a transient flip. Permanent errors are listed
/// as future work in the paper's conclusion; this concrete implementation
/// complements the transient model.
///
/// Returns `None` if the activation breakpoint is off the concrete path.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn replay_permanent_register_fault(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    breakpoint: usize,
    reg: Reg,
    value: i64,
    limits: &ExecLimits,
) -> Option<ReplayResult> {
    let mut state = MachineState::with_input(input.to_vec());
    let reached = run_concrete_to_breakpoint(&mut state, program, detectors, limits, breakpoint, 1)
        .expect("pre-injection execution is concrete");
    if !reached {
        return None;
    }
    state.set_reg(reg, Value::Int(value));
    while !state.status().is_terminal() {
        sympl_machine::step_concrete(&mut state, program, detectors, limits)
            .expect("stuck-at replay stays concrete");
        // The stuck cell overrides whatever the instruction wrote.
        if !state.status().is_terminal() {
            state.set_reg(reg, Value::Int(value));
        }
    }
    Some(ReplayResult {
        value,
        outcome: ConcreteOutcome::classify(&state),
    })
}

#[cfg(test)]
mod permanent_tests {
    use super::*;
    use sympl_asm::parse_program;

    #[test]
    fn stuck_at_register_defeats_recomputation() {
        // The program recomputes $2 after the fault window; a transient
        // error is erased, a permanent one persists to the output.
        let p = parse_program("mov $2, 7\nmov $2, 7\nprint $2\nhalt").unwrap();
        let transient = replay_register_witness(
            &p,
            &DetectorSet::new(),
            &[],
            1,
            1,
            Reg::r(2),
            99,
            &ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(
            transient.outcome,
            ConcreteOutcome::Output(vec![7]),
            "the rewrite masks the transient error"
        );
        let permanent = replay_permanent_register_fault(
            &p,
            &DetectorSet::new(),
            &[],
            1,
            Reg::r(2),
            99,
            &ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(
            permanent.outcome,
            ConcreteOutcome::Output(vec![99]),
            "a stuck-at cell survives rewrites"
        );
    }

    #[test]
    fn stuck_at_loop_counter_hangs() {
        let p = parse_program("mov $1, 3\nloop: subi $1, $1, 1\nbgt $1, 0, loop\nhalt").unwrap();
        let result = replay_permanent_register_fault(
            &p,
            &DetectorSet::new(),
            &[],
            1,
            Reg::r(1),
            5,
            &ExecLimits::with_max_steps(200),
        )
        .unwrap();
        assert_eq!(result.outcome, ConcreteOutcome::Hang);
    }
}
