//! Symbolic cross-validation of concrete injections (§3.2 / §6.2).
//!
//! The paper replays *symbolic* findings concretely to show they are real.
//! This module provides the opposite direction on the shared exploration
//! engine: take a concrete injection (point + value), run it on the
//! SimpleScalar-substitute, and check that the symbolic search from the
//! same point **covers** the observed outcome — the paper's §3.2 soundness
//! claim ("it will never miss an outcome that may occur in the program due
//! to the error"), made executable. Campaigns use it to spot-audit the
//! model; the suite's property tests sweep it across workloads.

use sympl_check::{Explorer, Predicate};
use sympl_machine::{run_concrete_to_breakpoint, step_concrete, MachineState, OutItem, Status};
use sympl_symbolic::Value;

use crate::{run_injected, ConcreteOutcome, ConcretePoint, RegSlot};

/// Whether one symbolic terminal state covers a concrete outcome: the same
/// status class, and each printed value either equal or abstracted to
/// `err`.
#[must_use]
pub fn covers(symbolic: &MachineState, concrete: &ConcreteOutcome) -> bool {
    match (symbolic.status(), concrete) {
        (Status::Halted, ConcreteOutcome::Output(values)) => {
            let printed: Vec<&OutItem> = symbolic
                .output()
                .iter()
                .filter(|o| matches!(o, OutItem::Val(_)))
                .collect();
            printed.len() == values.len()
                && printed.iter().zip(values).all(|(item, v)| match item {
                    OutItem::Val(Value::Int(i)) => i == v,
                    OutItem::Val(Value::Err) => true,
                    OutItem::Str(_) => false,
                })
        }
        (Status::Exception(_), ConcreteOutcome::Crash(_)) => true,
        (Status::TimedOut, ConcreteOutcome::Hang) => true,
        (Status::Detected(a), ConcreteOutcome::Detected(b)) => a == b,
        _ => false,
    }
}

/// Runs the concrete injection `(point, value)` and checks whether the
/// symbolic search from the same point, driven on `explorer`, covers the
/// concrete outcome.
///
/// The solution cap is lifted internally (coverage needs *every* terminal,
/// not the first few), so only the explorer's state/time budgets can
/// truncate the search. Returns:
///
/// * `None` — nothing to conclude: the breakpoint is off the golden path
///   (the fault is never activated), or the state/time budgets truncated
///   the search before the outcome was covered.
/// * `Some(true)` — a symbolic terminal covers the concrete outcome.
/// * `Some(false)` — the search ran to exhaustion and *no* terminal
///   covers the outcome: a genuine §3.2 soundness violation.
#[must_use]
pub fn concrete_outcome_covered(
    explorer: &Explorer<'_>,
    input: &[i64],
    point: &ConcretePoint,
    value: i64,
) -> Option<bool> {
    let program = explorer.program();
    let detectors = explorer.detectors();
    let limits = explorer.exec_limits();

    let concrete = run_injected(program, detectors, input, point, value, limits)?;

    // Prepare the symbolic twin: same prefix, `err` planted where the
    // concrete value went.
    let mut seed = MachineState::with_input(input.to_vec());
    let reached =
        run_concrete_to_breakpoint(&mut seed, program, detectors, limits, point.breakpoint, 1)
            .expect("pre-injection execution is concrete");
    if !reached {
        return None;
    }
    match point.slot {
        RegSlot::Source => seed.set_reg(point.reg, Value::Err),
        RegSlot::Destination => {
            step_concrete(&mut seed, program, detectors, limits).expect("concrete execution");
            if seed.status().is_terminal() {
                // The run ended before the corruption landed; the concrete
                // outcome is the uncorrupted one and is trivially covered.
                return Some(covers(&seed, &concrete));
            }
            seed.set_reg(point.reg, Value::Err);
        }
    }

    // Lift the solution cap: the default budgets stop collecting after a
    // handful of terminals, which would mistake truncation for a missing
    // outcome. State/time budgets still apply.
    let mut limits = explorer.limits().clone();
    limits.max_solutions = usize::MAX;
    let report = explorer
        .clone()
        .with_limits(limits)
        .explore(vec![seed], &Predicate::Any);

    if report.solutions.iter().any(|s| covers(&s.state, &concrete)) {
        Some(true)
    } else if report.exhausted {
        Some(false)
    } else {
        // Truncated by a state/time budget before any covering terminal
        // appeared: no verdict either way.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::{parse_program, Reg};
    use sympl_check::SearchLimits;
    use sympl_detect::DetectorSet;
    use sympl_machine::ExecLimits;

    #[test]
    fn symbolic_search_covers_concrete_injections() {
        let p = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let dets = DetectorSet::new();
        let explorer = Explorer::new(&p, &dets).with_limits(SearchLimits {
            exec: ExecLimits::with_max_steps(200),
            max_solutions: 10_000,
            ..SearchLimits::default()
        });
        let point = ConcretePoint {
            breakpoint: 1,
            reg: Reg::r(1),
            slot: RegSlot::Source,
        };
        for value in [0, 7, -1, i64::MAX, i64::MIN] {
            assert_eq!(
                concrete_outcome_covered(&explorer, &[41], &point, value),
                Some(true),
                "symbolic search must cover value {value}"
            );
        }
    }

    #[test]
    fn solution_caps_do_not_fabricate_violations() {
        // Under default limits (max_solutions = 10) a point with many
        // terminal forks used to truncate the coverage search and report a
        // spurious Some(false). The cap is lifted internally now.
        let p = parse_program(
            "read $1\nbeq $1, 0, a\nnop\na: beq $1, 1, b\nnop\nb: beq $1, 2, c\nnop\n\
             c: beq $1, 3, d\nnop\nd: beq $1, 4, e\nnop\ne: print $1\nhalt",
        )
        .unwrap();
        let dets = DetectorSet::new();
        let explorer = Explorer::new(&p, &dets); // default limits
        let point = ConcretePoint {
            breakpoint: 1,
            reg: Reg::r(1),
            slot: RegSlot::Source,
        };
        assert_eq!(
            concrete_outcome_covered(&explorer, &[2], &point, 77),
            Some(true),
            "every concrete value must stay covered under default budgets"
        );
    }

    #[test]
    fn truncated_search_is_inconclusive_not_a_violation() {
        let p = parse_program("read $1\nprint $1\nhalt").unwrap();
        let dets = DetectorSet::new();
        let explorer = Explorer::new(&p, &dets).with_limits(SearchLimits {
            max_states: 1, // guarantees truncation before any terminal
            ..SearchLimits::default()
        });
        let point = ConcretePoint {
            breakpoint: 1,
            reg: Reg::r(1),
            slot: RegSlot::Source,
        };
        assert_eq!(
            concrete_outcome_covered(&explorer, &[5], &point, 9),
            None,
            "a budget-truncated search must not claim a soundness violation"
        );
    }

    #[test]
    fn unreached_breakpoint_is_none() {
        let p = parse_program("halt\nmov $1, 1").unwrap();
        let dets = DetectorSet::new();
        let explorer = Explorer::new(&p, &dets);
        let point = ConcretePoint {
            breakpoint: 1,
            reg: Reg::r(1),
            slot: RegSlot::Source,
        };
        assert_eq!(concrete_outcome_covered(&explorer, &[], &point, 3), None);
    }

    #[test]
    fn covers_matches_status_classes() {
        let mut halted = MachineState::new();
        halted.push_output(OutItem::Val(Value::Int(7)));
        halted.set_status(Status::Halted);
        assert!(covers(&halted, &ConcreteOutcome::Output(vec![7])));
        assert!(!covers(&halted, &ConcreteOutcome::Output(vec![8])));
        assert!(!covers(&halted, &ConcreteOutcome::Hang));

        let mut err_out = MachineState::new();
        err_out.push_output(OutItem::Val(Value::Err));
        err_out.set_status(Status::Halted);
        assert!(
            covers(&err_out, &ConcreteOutcome::Output(vec![123])),
            "err abstracts any printed value"
        );

        let mut hung = MachineState::new();
        hung.set_status(Status::TimedOut);
        assert!(covers(&hung, &ConcreteOutcome::Hang));
    }
}
