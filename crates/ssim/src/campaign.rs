//! The concrete injection campaign (paper §6.1/§6.3).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
#[allow(unused_imports)]
use rand::RngCore;
use rand::{Rng, SeedableRng};
use sympl_asm::{Program, Reg};
use sympl_detect::DetectorSet;
use sympl_machine::{
    run_concrete, run_concrete_to_breakpoint, step_concrete, ExecLimits, MachineState,
};
use sympl_symbolic::Value;

use crate::ConcreteOutcome;

/// Whether a register is injected as a source (before the instruction) or
/// a destination (after it) — the paper injects both, one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegSlot {
    /// Corrupt before execution (data the instruction reads).
    Source,
    /// Corrupt after execution (data the instruction wrote).
    Destination,
}

/// One concrete injection point: instruction, register, slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConcretePoint {
    /// Static instruction address.
    pub breakpoint: usize,
    /// Register to corrupt.
    pub reg: Reg,
    /// Source or destination slot.
    pub slot: RegSlot,
}

/// Campaign configuration: which values to inject per point.
///
/// Defaults to the paper's recipe — three extreme values in the integer
/// range plus three seeded-random values — so a default campaign performs
/// `6 × (number of points)` runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Deterministic seed for the random values.
    pub seed: u64,
    /// The extreme values injected at every point.
    pub extremes: Vec<i64>,
    /// How many random values to inject at every point.
    pub random_per_point: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x5151_F1ED,
            extremes: vec![i64::MAX, i64::MIN, -1],
            random_per_point: 3,
        }
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SsimReport {
    /// Outcome histogram over all performed runs.
    pub counts: BTreeMap<ConcreteOutcome, usize>,
    /// Injections whose breakpoint was never reached (fault not activated).
    pub not_activated: usize,
}

impl SsimReport {
    /// Total runs performed (activated injections).
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.counts.values().sum()
    }

    /// Count of runs whose outcome classifies into the given bucket
    /// according to `f`.
    pub fn count_where(&self, mut f: impl FnMut(&ConcreteOutcome) -> bool) -> usize {
        self.counts
            .iter()
            .filter(|(o, _)| f(o))
            .map(|(_, n)| n)
            .sum()
    }

    /// Whether any run halted normally printing exactly `output`.
    #[must_use]
    pub fn saw_output(&self, output: &[i64]) -> bool {
        self.counts
            .keys()
            .any(|o| matches!(o, ConcreteOutcome::Output(v) if v == output))
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: ConcreteOutcome) {
        *self.counts.entry(outcome).or_insert(0) += 1;
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: SsimReport) {
        for (o, n) in other.counts {
            *self.counts.entry(o).or_insert(0) += n;
        }
        self.not_activated += other.not_activated;
    }
}

/// Enumerates every (instruction, register, slot) concrete injection point,
/// as the paper's augmented SimpleScalar does.
#[must_use]
pub fn enumerate_concrete_points(program: &Program) -> Vec<ConcretePoint> {
    let mut points = Vec::new();
    for (addr, instr) in program.instrs().iter().enumerate() {
        for reg in instr.source_regs() {
            if !reg.is_zero() {
                points.push(ConcretePoint {
                    breakpoint: addr,
                    reg,
                    slot: RegSlot::Source,
                });
            }
        }
        if let Some(rd) = instr.dest_reg() {
            if !rd.is_zero() {
                points.push(ConcretePoint {
                    breakpoint: addr,
                    reg: rd,
                    slot: RegSlot::Destination,
                });
            }
        }
    }
    points
}

/// Performs one injected run: execute to the breakpoint, plant `value` in
/// the register (before or after the instruction per the slot), run to a
/// terminal status, classify. Returns `None` when the breakpoint is not on
/// the execution path (the fault is never activated).
#[must_use]
pub fn run_injected(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    point: &ConcretePoint,
    value: i64,
    limits: &ExecLimits,
) -> Option<ConcreteOutcome> {
    let mut state = MachineState::with_input(input.to_vec());
    let reached =
        run_concrete_to_breakpoint(&mut state, program, detectors, limits, point.breakpoint, 1)
            .expect("pre-injection execution is concrete");
    if !reached {
        return None;
    }
    match point.slot {
        RegSlot::Source => {
            state.set_reg(point.reg, Value::Int(value));
        }
        RegSlot::Destination => {
            step_concrete(&mut state, program, detectors, limits).expect("concrete execution");
            if state.status().is_terminal() {
                return Some(ConcreteOutcome::classify(&state));
            }
            state.set_reg(point.reg, Value::Int(value));
        }
    }
    run_concrete(&mut state, program, detectors, limits)
        .expect("post-injection state is still concrete: the injected value is an integer");
    Some(ConcreteOutcome::classify(&state))
}

/// Runs the full campaign: every point × every configured value.
///
/// Deterministic for a fixed seed: random values are drawn from a seeded
/// PRNG in point order.
#[must_use]
pub fn run_campaign(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    config: &CampaignConfig,
    limits: &ExecLimits,
) -> SsimReport {
    // Decode once up front: every injected run below dispatches over the
    // cached IR instead of re-lowering the program per point × value.
    let _ = program.decoded();
    let points = enumerate_concrete_points(program);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = SsimReport::default();
    for point in &points {
        let mut values = config.extremes.clone();
        values.extend((0..config.random_per_point).map(|_| rng.gen::<i64>()));
        for value in values {
            match run_injected(program, detectors, input, point, value, limits) {
                Some(outcome) => report.record(outcome),
                None => report.not_activated += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;

    fn dets() -> DetectorSet {
        DetectorSet::new()
    }

    #[test]
    fn points_cover_sources_and_destinations() {
        let p = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let points = enumerate_concrete_points(&p);
        // read: dest $1; addi: src $1, dest $2; print: src $2.
        assert_eq!(points.len(), 4);
        assert!(points.iter().any(|pt| pt.slot == RegSlot::Source));
        assert!(points.iter().any(|pt| pt.slot == RegSlot::Destination));
    }

    #[test]
    fn source_injection_changes_output() {
        let p = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let point = ConcretePoint {
            breakpoint: 1,
            reg: Reg::r(1),
            slot: RegSlot::Source,
        };
        let out = run_injected(&p, &dets(), &[10], &point, 100, &ExecLimits::default()).unwrap();
        assert_eq!(out, ConcreteOutcome::Output(vec![101]));
    }

    #[test]
    fn destination_injection_applies_after_execution() {
        let p = parse_program("mov $1, 5\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let point = ConcretePoint {
            breakpoint: 1,
            reg: Reg::r(2),
            slot: RegSlot::Destination,
        };
        let out = run_injected(&p, &dets(), &[], &point, 77, &ExecLimits::default()).unwrap();
        assert_eq!(out, ConcreteOutcome::Output(vec![77]));
    }

    #[test]
    fn unreached_breakpoint_returns_none() {
        let p = parse_program("halt\nmov $1, 1").unwrap();
        let point = ConcretePoint {
            breakpoint: 1,
            reg: Reg::r(1),
            slot: RegSlot::Source,
        };
        assert!(run_injected(&p, &dets(), &[], &point, 1, &ExecLimits::default()).is_none());
    }

    #[test]
    fn campaign_is_deterministic_for_fixed_seed() {
        let p = parse_program("read $1\nmult $2, $1, $1\nprint $2\nhalt").unwrap();
        let cfg = CampaignConfig::default();
        let a = run_campaign(&p, &dets(), &[6], &cfg, &ExecLimits::default());
        let b = run_campaign(&p, &dets(), &[6], &cfg, &ExecLimits::default());
        assert_eq!(a, b);
        assert_eq!(a.total_runs() + a.not_activated, 6 * 4);
    }

    #[test]
    fn different_seeds_may_differ() {
        let p = parse_program("read $1\nmult $2, $1, $1\nprint $2\nhalt").unwrap();
        let a = run_campaign(
            &p,
            &dets(),
            &[6],
            &CampaignConfig {
                seed: 1,
                ..CampaignConfig::default()
            },
            &ExecLimits::default(),
        );
        // Seeds change which wrong outputs appear, not the run count.
        assert_eq!(a.total_runs(), 24);
    }

    #[test]
    fn report_helpers() {
        let mut r = SsimReport::default();
        r.record(ConcreteOutcome::Output(vec![1]));
        r.record(ConcreteOutcome::Output(vec![1]));
        r.record(ConcreteOutcome::Hang);
        assert_eq!(r.total_runs(), 3);
        assert!(r.saw_output(&[1]));
        assert!(!r.saw_output(&[2]));
        assert_eq!(r.count_where(|o| o.is_benign(&[1])), 2);
        let mut other = SsimReport::default();
        other.record(ConcreteOutcome::Hang);
        other.not_activated = 2;
        r.merge(other);
        assert_eq!(r.counts[&ConcreteOutcome::Hang], 2);
        assert_eq!(r.not_activated, 2);
    }

    #[test]
    fn crash_outcomes_classified() {
        // Injecting a giant value into the address register crashes loads.
        let p =
            parse_program("mov $29, 64\nmov $1, 5\nst $1, 0($29)\nld $2, 0($29)\nprint $2\nhalt")
                .unwrap();
        let point = ConcretePoint {
            breakpoint: 3,
            reg: Reg::r(29),
            slot: RegSlot::Source,
        };
        let out = run_injected(&p, &dets(), &[], &point, i64::MAX, &ExecLimits::default()).unwrap();
        assert!(matches!(out, ConcreteOutcome::Crash(_)), "{out}");
    }
}
