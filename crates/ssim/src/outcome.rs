//! Outcome classification for concrete injection runs (Table 2).

use std::fmt;

use sympl_machine::{Exception, MachineState, Status};

/// The outcome of one concrete injected run, in the categories of the
/// paper's Table 2: the printed output on a normal halt, or crash / hang /
/// detected.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConcreteOutcome {
    /// Normal halt with the printed integer sequence.
    Output(Vec<i64>),
    /// An exception was thrown.
    Crash(Exception),
    /// The watchdog bound was exceeded.
    Hang,
    /// A detector fired.
    Detected(u32),
}

impl ConcreteOutcome {
    /// Classifies a terminal machine state.
    ///
    /// # Panics
    ///
    /// Panics if the state is still running (callers classify only after
    /// the executor reports a terminal status).
    #[must_use]
    pub fn classify(state: &MachineState) -> Self {
        match state.status() {
            Status::Halted => ConcreteOutcome::Output(state.output_ints()),
            Status::Exception(e) => ConcreteOutcome::Crash(*e),
            Status::TimedOut => ConcreteOutcome::Hang,
            Status::Detected(id) => ConcreteOutcome::Detected(*id),
            Status::Running => panic!("cannot classify a running state"),
        }
    }

    /// Whether the run produced the same output as the golden run (a
    /// *benign* fault).
    #[must_use]
    pub fn is_benign(&self, golden: &[i64]) -> bool {
        matches!(self, ConcreteOutcome::Output(out) if out == golden)
    }

    /// The first printed integer, when the program halted with output —
    /// tcas-style programs print a single advisory value.
    #[must_use]
    pub fn first_value(&self) -> Option<i64> {
        match self {
            ConcreteOutcome::Output(v) => v.first().copied(),
            _ => None,
        }
    }
}

impl fmt::Display for ConcreteOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcreteOutcome::Output(v) => {
                write!(f, "output ")?;
                let strs: Vec<String> = v.iter().map(ToString::to_string).collect();
                write!(f, "[{}]", strs.join(", "))
            }
            ConcreteOutcome::Crash(e) => write!(f, "crash ({e})"),
            ConcreteOutcome::Hang => f.write_str("hang"),
            ConcreteOutcome::Detected(id) => write!(f, "detected ({id})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_machine::OutItem;
    use sympl_symbolic::Value;

    #[test]
    fn classify_all_statuses() {
        let mut s = MachineState::new();
        s.push_output(OutItem::Val(Value::Int(1)));
        s.set_status(Status::Halted);
        assert_eq!(
            ConcreteOutcome::classify(&s),
            ConcreteOutcome::Output(vec![1])
        );
        s.set_status(Status::Exception(Exception::DivByZero));
        assert_eq!(
            ConcreteOutcome::classify(&s),
            ConcreteOutcome::Crash(Exception::DivByZero)
        );
        s.set_status(Status::TimedOut);
        assert_eq!(ConcreteOutcome::classify(&s), ConcreteOutcome::Hang);
        s.set_status(Status::Detected(9));
        assert_eq!(ConcreteOutcome::classify(&s), ConcreteOutcome::Detected(9));
    }

    #[test]
    fn benign_comparison() {
        let o = ConcreteOutcome::Output(vec![1]);
        assert!(o.is_benign(&[1]));
        assert!(!o.is_benign(&[2]));
        assert!(!ConcreteOutcome::Hang.is_benign(&[1]));
    }

    #[test]
    fn first_value_extracts_advisory() {
        assert_eq!(ConcreteOutcome::Output(vec![2, 9]).first_value(), Some(2));
        assert_eq!(ConcreteOutcome::Output(vec![]).first_value(), None);
        assert_eq!(ConcreteOutcome::Hang.first_value(), None);
    }

    #[test]
    #[should_panic(expected = "running")]
    fn classify_running_panics() {
        let s = MachineState::new();
        let _ = ConcreteOutcome::classify(&s);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            ConcreteOutcome::Output(vec![1, 2]).to_string(),
            "output [1, 2]"
        );
        assert!(ConcreteOutcome::Crash(Exception::IllegalAddress)
            .to_string()
            .contains("illegal addr"));
    }
}
