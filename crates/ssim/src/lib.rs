//! # sympl-ssim — the SimpleScalar-substitute concrete fault injector
//!
//! The paper validates SymPLFIED against a conventional fault-injection
//! campaign: a SimpleScalar simulator "augmented with the capability to
//! inject errors into the source and destination registers of all
//! instructions, one at a time", injecting "three extreme values in the
//! integer range as well as three random values" per register (§6.1), more
//! than 6000 (and later 41000) runs in total — which still never found the
//! catastrophic tcas outcome (Table 2).
//!
//! This crate is that baseline, rebuilt on the same generic assembly
//! machine: a deterministic, seeded campaign of concrete-value injections
//! with Table-2 outcome classification, plus the replay facility used to
//! confirm that symbolic findings are real errors and not false positives
//! (§6.2).
//!
//! ```
//! use sympl_asm::parse_program;
//! use sympl_detect::DetectorSet;
//! use sympl_machine::ExecLimits;
//! use sympl_ssim::{CampaignConfig, run_campaign};
//!
//! let program = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt")?;
//! let report = run_campaign(
//!     &program,
//!     &DetectorSet::new(),
//!     &[41],
//!     &CampaignConfig::default(),
//!     &ExecLimits::default(),
//! );
//! assert!(report.total_runs() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod confirm;
mod outcome;
mod replay;

pub use campaign::{
    enumerate_concrete_points, run_campaign, run_injected, CampaignConfig, ConcretePoint, RegSlot,
    SsimReport,
};
pub use confirm::{concrete_outcome_covered, covers};
pub use outcome::ConcreteOutcome;
pub use replay::{replay_permanent_register_fault, replay_register_witness, ReplayResult};
