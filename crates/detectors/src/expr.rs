//! The detector expression grammar (paper §5.3).

use std::fmt;
use sympl_asm::Reg;

/// Arithmetic operators allowed in detector expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl fmt::Display for ExprOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExprOp::Add => "+",
            ExprOp::Sub => "-",
            ExprOp::Mul => "*",
            ExprOp::Div => "/",
        })
    }
}

/// A detector right-hand-side expression:
///
/// ```text
/// Expr ::= Expr + Expr | Expr - Expr | Expr * Expr | Expr / Expr
///        | (c) | (RegName) | *(memory address)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer constant `(c)`.
    Const(i64),
    /// A register value `(RegName)`.
    Reg(Reg),
    /// A memory word `*(address)`.
    Mem(u64),
    /// A binary operation on two sub-expressions.
    Bin {
        /// Operator.
        op: ExprOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

#[allow(clippy::should_implement_trait)] // the paper's Expr grammar names its operators add/sub/mul/div
impl Expr {
    /// Constant expression.
    #[must_use]
    pub fn constant(c: i64) -> Self {
        Expr::Const(c)
    }

    /// Register expression.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn reg(index: u8) -> Self {
        Expr::Reg(Reg::r(index))
    }

    /// Memory expression.
    #[must_use]
    pub fn mem(addr: u64) -> Self {
        Expr::Mem(addr)
    }

    /// `self + rhs`.
    #[must_use]
    pub fn add(self, rhs: Expr) -> Self {
        Expr::Bin {
            op: ExprOp::Add,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self - rhs`.
    #[must_use]
    pub fn sub(self, rhs: Expr) -> Self {
        Expr::Bin {
            op: ExprOp::Sub,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self * rhs`.
    #[must_use]
    pub fn mul(self, rhs: Expr) -> Self {
        Expr::Bin {
            op: ExprOp::Mul,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self / rhs`.
    #[must_use]
    pub fn div(self, rhs: Expr) -> Self {
        Expr::Bin {
            op: ExprOp::Div,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// Every register the expression reads.
    #[must_use]
    pub fn registers(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Reg(r) = e {
                if !out.contains(r) {
                    out.push(*r);
                }
            }
        });
        out
    }

    /// Every memory address the expression reads.
    #[must_use]
    pub fn memory_addresses(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Mem(a) = e {
                if !out.contains(a) {
                    out.push(*a);
                }
            }
        });
        out
    }

    fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        if let Expr::Bin { lhs, rhs, .. } = self {
            lhs.visit(f);
            rhs.visit(f);
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "({c})"),
            Expr::Reg(r) => write!(f, "(${})", r.index()),
            Expr::Mem(a) => write!(f, "*({a})"),
            Expr::Bin { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = Expr::reg(3).add(Expr::mem(1000)).mul(Expr::constant(2));
        assert_eq!(e.registers(), vec![Reg::r(3)]);
        assert_eq!(e.memory_addresses(), vec![1000]);
        assert!(matches!(
            e,
            Expr::Bin {
                op: ExprOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn registers_deduplicated() {
        let e = Expr::reg(6).mul(Expr::reg(1)).sub(Expr::reg(6));
        assert_eq!(e.registers(), vec![Reg::r(6), Reg::r(1)]);
    }

    #[test]
    fn display_uses_paper_notation() {
        let e = Expr::reg(3).add(Expr::mem(1000));
        assert_eq!(e.to_string(), "($3) + *(1000)");
        assert_eq!(Expr::constant(-5).to_string(), "(-5)");
    }
}
