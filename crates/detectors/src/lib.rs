//! # sympl-detect — the SymPLFIED detector model
//!
//! Error detectors (paper §5.3) are executable checks that test whether a
//! given register or memory location satisfies an arithmetic/logical
//! expression. They are written *outside* the program and invoked from
//! within it by `CHECK` instructions that carry the detector's identifier;
//! the same detector may be invoked at several program points.
//!
//! A detector has the paper's four-part form:
//!
//! ```text
//! det (ID, location, cmp-op, expr)
//! Expr ::= Expr + Expr | Expr - Expr | Expr * Expr | Expr / Expr
//!        | (c) | (RegName) | *(memory address)
//! ```
//!
//! For example, the paper's `det(4, $(5), ==, $(3) + *(1000))` checks that
//! register `$5` equals the sum of register `$3` and memory word 1000.
//!
//! If the check fails, an exception is thrown and the program halts — that
//! is a *detection*. Over symbolic `err` values the comparison forks, and
//! the false (detected) branch records the constraints under which the
//! detector fires, which is exactly how SymPLFIED explains *which* errors a
//! detector does and does not catch (§4.2).
//!
//! Detectors are assumed error-free (paper §5.3): their own execution is
//! never corrupted by the error model.
//!
//! ```
//! use sympl_detect::{Detector, DetectorSet};
//!
//! let det = Detector::parse("det(4, $(5), ==, ($3) + *(1000))")?;
//! assert_eq!(det.id(), 4);
//! let mut set = DetectorSet::new();
//! set.insert(det);
//! assert!(set.get(4).is_some());
//! # Ok::<(), sympl_detect::DetectError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod expr;
mod parse;
mod set;

pub use error::DetectError;
pub use eval::{eval_expr, ErrOrigin, EvalOutcome, StateView};
pub use expr::{Expr, ExprOp};
pub use set::DetectorSet;

use std::fmt;
use sympl_asm::Cmp;
use sympl_symbolic::Location;

/// One error detector: `det(id, location, cmp, expr)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detector {
    id: u32,
    target: Location,
    cmp: Cmp,
    expr: Expr,
}

impl Detector {
    /// Builds a detector from its four components.
    #[must_use]
    pub fn new(id: u32, target: Location, cmp: Cmp, expr: Expr) -> Self {
        Detector {
            id,
            target,
            cmp,
            expr,
        }
    }

    /// Parses the paper's textual format, e.g.
    /// `det(4, $(5), ==, ($3) + *(1000))`.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, DetectError> {
        parse::parse_detector(text)
    }

    /// The detector's unique identifier (referenced by `check` instructions).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The register or memory location the detector checks.
    #[must_use]
    pub fn target(&self) -> Location {
        self.target
    }

    /// The comparison operation.
    #[must_use]
    pub fn cmp(&self) -> Cmp {
        self.cmp
    }

    /// The right-hand-side arithmetic expression.
    #[must_use]
    pub fn expr(&self) -> &Expr {
        &self.expr
    }
}

impl fmt::Display for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let target = match self.target {
            Location::Reg(r) => format!("$({})", r.index()),
            Location::Mem(a) => format!("*({a})"),
        };
        write!(f, "det({}, {target}, {}, {})", self.id, self.cmp, self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        let d = Detector::parse("det(4, $(5), ==, ($3) + *(1000))").unwrap();
        let text = d.to_string();
        let d2 = Detector::parse(&text).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn accessors() {
        let d = Detector::new(7, Location::reg(2), Cmp::Ge, Expr::reg(6).mul(Expr::reg(1)));
        assert_eq!(d.id(), 7);
        assert_eq!(d.target(), Location::reg(2));
        assert_eq!(d.cmp(), Cmp::Ge);
    }
}
