//! Parser for the paper's textual detector format:
//! `det(ID, location, cmp-op, expr)`.

use sympl_asm::{Cmp, Reg};
use sympl_symbolic::Location;

use crate::{DetectError, Detector, Expr};

/// Parses `det(4, $(5), ==, ($3) + *(1000))`.
pub(crate) fn parse_detector(text: &str) -> Result<Detector, DetectError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect_word("det")?;
    p.expect('(')?;
    let id = p.integer()?;
    let id = u32::try_from(id).map_err(|_| p.err("detector id must be non-negative"))?;
    p.expect(',')?;
    let target = p.location()?;
    p.expect(',')?;
    let cmp = p.cmp_op()?;
    p.expect(',')?;
    let expr = p.expr()?;
    p.expect(')')?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after detector"));
    }
    Ok(Detector::new(id, target, cmp, expr))
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text, pos: 0 }
    }

    fn err(&self, msg: &str) -> DetectError {
        DetectError::Parse(format!("{msg} at position {} in `{}`", self.pos, self.text))
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.rest().is_empty()
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.text.len() - trimmed.len();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.rest().chars().next()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn expect(&mut self, c: char) -> Result<(), DetectError> {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), DetectError> {
        self.skip_ws();
        if self.rest().starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn integer(&mut self) -> Result<i64, DetectError> {
        self.skip_ws();
        let rest = self.rest();
        let mut len = 0;
        let bytes = rest.as_bytes();
        if len < bytes.len() && (bytes[len] == b'-' || bytes[len] == b'+') {
            len += 1;
        }
        let digits_start = len;
        while len < bytes.len() && bytes[len].is_ascii_digit() {
            len += 1;
        }
        if len == digits_start {
            return Err(self.err("expected integer"));
        }
        let v: i64 = rest[..len]
            .parse()
            .map_err(|_| self.err("integer out of range"))?;
        self.pos += len;
        Ok(v)
    }

    fn register(&mut self) -> Result<Reg, DetectError> {
        // `$(n)` or `$n`.
        self.expect('$')?;
        let parens = self.rest().starts_with('(');
        if parens {
            self.expect('(')?;
        }
        let n = self.integer()?;
        if parens {
            self.expect(')')?;
        }
        let n = u8::try_from(n).map_err(|_| self.err("register index out of range"))?;
        Reg::new(n).map_err(|_| self.err("register index out of range"))
    }

    fn location(&mut self) -> Result<Location, DetectError> {
        match self.peek() {
            Some('$') => Ok(Location::Reg(self.register()?)),
            Some('*') => {
                self.bump();
                let parens = self.peek() == Some('(');
                if parens {
                    self.expect('(')?;
                }
                let a = self.integer()?;
                if parens {
                    self.expect(')')?;
                }
                let a = u64::try_from(a).map_err(|_| self.err("negative memory address"))?;
                Ok(Location::Mem(a))
            }
            _ => Err(self.err("expected `$reg` or `*(addr)` location")),
        }
    }

    fn cmp_op(&mut self) -> Result<Cmp, DetectError> {
        self.skip_ws();
        let rest = self.rest();
        // Longest-match first.
        let table: &[(&str, Cmp)] = &[
            ("==", Cmp::Eq),
            ("=/=", Cmp::Ne),
            ("!=", Cmp::Ne),
            (">=", Cmp::Ge),
            ("<=", Cmp::Le),
            (">", Cmp::Gt),
            ("<", Cmp::Lt),
        ];
        for (tok, cmp) in table {
            if rest.starts_with(tok) {
                // `>` must not shadow `>=`: table order handles it, but
                // `=/=` vs `==` both start with `=`; check exact prefix.
                self.pos += tok.len();
                return Ok(*cmp);
            }
        }
        Err(self.err("expected comparison operator"))
    }

    /// expr := term (('+'|'-') term)*
    fn expr(&mut self) -> Result<Expr, DetectError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some('+') => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = lhs.add(rhs);
                }
                Some('-') => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = lhs.sub(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// term := atom (('*'|'/') atom)*    — note: `*(` begins a memory atom,
    /// so multiplication is only taken when not followed by `(` ... except
    /// the grammar is ambiguous there; we resolve `* (` as multiplication
    /// only if an atom already consumed the `*`. Disambiguation: a `*`
    /// *immediately* followed by `(` after an operator position is a memory
    /// reference; in operator position we treat `*` as multiply unless the
    /// previous token was also an operator.
    fn term(&mut self) -> Result<Expr, DetectError> {
        let mut lhs = self.atom()?;
        loop {
            self.skip_ws();
            let rest = self.rest();
            if rest.starts_with('/') {
                self.bump();
                let rhs = self.atom()?;
                lhs = lhs.div(rhs);
            } else if rest.starts_with('*') {
                // In operator position `*` is multiplication; memory atoms
                // only appear in atom position.
                self.bump();
                let rhs = self.atom()?;
                lhs = lhs.mul(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    /// atom := '(' expr ')' | '(c)' | '$reg' | '*(addr)' | integer
    fn atom(&mut self) -> Result<Expr, DetectError> {
        match self.peek() {
            Some('(') => {
                self.expect('(')?;
                let inner = self.expr()?;
                self.expect(')')?;
                Ok(inner)
            }
            Some('$') => Ok(Expr::Reg(self.register()?)),
            Some('*') => {
                self.bump();
                let parens = self.peek() == Some('(');
                if parens {
                    self.expect('(')?;
                }
                let a = self.integer()?;
                if parens {
                    self.expect(')')?;
                }
                let a = u64::try_from(a).map_err(|_| self.err("negative memory address"))?;
                Ok(Expr::Mem(a))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                Ok(Expr::Const(self.integer()?))
            }
            _ => Err(self.err("expected expression atom")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExprOp;

    #[test]
    fn parses_paper_example() {
        let d = parse_detector("det(4, $(5), ==, ($3) + *(1000))").unwrap();
        assert_eq!(d.id(), 4);
        assert_eq!(d.target(), Location::reg(5));
        assert_eq!(d.cmp(), Cmp::Eq);
        assert_eq!(d.expr(), &Expr::reg(3).add(Expr::mem(1000)));
    }

    #[test]
    fn parses_all_cmp_ops() {
        for (tok, cmp) in [
            ("==", Cmp::Eq),
            ("=/=", Cmp::Ne),
            ("!=", Cmp::Ne),
            (">", Cmp::Gt),
            ("<", Cmp::Lt),
            (">=", Cmp::Ge),
            ("<=", Cmp::Le),
        ] {
            let d = parse_detector(&format!("det(1, $(2), {tok}, (5))")).unwrap();
            assert_eq!(d.cmp(), cmp, "token {tok}");
        }
    }

    #[test]
    fn memory_location_target() {
        let d = parse_detector("det(9, *(1000), >=, ($1))").unwrap();
        assert_eq!(d.target(), Location::mem(1000));
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let d = parse_detector("det(1, $(2), >=, ($6) * ($1) + (3))").unwrap();
        // (6*1) + 3
        match d.expr() {
            Expr::Bin {
                op: ExprOp::Add,
                lhs,
                ..
            } => {
                assert!(matches!(
                    **lhs,
                    Expr::Bin {
                        op: ExprOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn parenthesized_grouping() {
        let d = parse_detector("det(1, $(2), ==, ($6) * (($1) + (3)))").unwrap();
        match d.expr() {
            Expr::Bin {
                op: ExprOp::Mul,
                rhs,
                ..
            } => {
                assert!(matches!(
                    **rhs,
                    Expr::Bin {
                        op: ExprOp::Add,
                        ..
                    }
                ));
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn bare_register_and_constant_forms() {
        let d = parse_detector("det(2, $7, <, $3 - 10)").unwrap();
        assert_eq!(d.target(), Location::reg(7));
        assert_eq!(d.expr(), &Expr::reg(3).sub(Expr::constant(10)));
    }

    #[test]
    fn division_in_expression() {
        let d = parse_detector("det(3, $(1), ==, ($2) / (2))").unwrap();
        assert!(matches!(
            d.expr(),
            Expr::Bin {
                op: ExprOp::Div,
                ..
            }
        ));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "det",
            "det(1)",
            "det(1, $(2))",
            "det(1, $(2), ==)",
            "det(1, $(2), ==, )",
            "det(1, $(2), ~~, (1))",
            "det(x, $(2), ==, (1))",
            "det(1, $(99), ==, (1))",
            "det(1, $(2), ==, (1)) trailing",
            "det(-1, $(2), ==, (1))",
            "det(1, *(-5), ==, (1))",
        ] {
            assert!(parse_detector(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_detector("det(4,$(5),==,($3)+*(1000))").unwrap();
        let b = parse_detector("  det ( 4 , $( 5 ) , == , ( $3 ) + * ( 1000 ) )  ").unwrap();
        assert_eq!(a, b);
    }
}
