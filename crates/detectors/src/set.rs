//! A collection of detectors indexed by identifier.

use std::collections::BTreeMap;
use std::fmt;

use crate::{DetectError, Detector};

/// The detectors available to a program, looked up by `check` instructions.
///
/// Detectors live *outside* the program text (paper §5.3); the same
/// detector may be invoked from several `check` sites.
///
/// ```
/// use sympl_detect::{Detector, DetectorSet};
///
/// let mut set = DetectorSet::new();
/// set.insert(Detector::parse("det(1, $(2), >=, ($6) * ($1))")?);
/// set.insert(Detector::parse("det(2, $(3), >, ($4))")?);
/// assert_eq!(set.len(), 2);
/// # Ok::<(), sympl_detect::DetectError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorSet {
    detectors: BTreeMap<u32, Detector>,
}

impl DetectorSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a detector, replacing any previous detector with the same id.
    pub fn insert(&mut self, detector: Detector) -> Option<Detector> {
        self.detectors.insert(detector.id(), detector)
    }

    /// Adds a detector, failing on a duplicate identifier.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::DuplicateId`] if the id is already present.
    pub fn try_insert(&mut self, detector: Detector) -> Result<(), DetectError> {
        let id = detector.id();
        if self.detectors.contains_key(&id) {
            return Err(DetectError::DuplicateId(id));
        }
        self.detectors.insert(id, detector);
        Ok(())
    }

    /// Parses a multi-line detector listing (one `det(...)` per line;
    /// blank lines and `;`/`--` comments are ignored).
    ///
    /// # Errors
    ///
    /// Propagates parse errors and duplicate identifiers.
    pub fn parse(text: &str) -> Result<Self, DetectError> {
        let mut set = DetectorSet::new();
        for raw in text.lines() {
            let line = raw
                .split(';')
                .next()
                .unwrap_or("")
                .split("--")
                .next()
                .unwrap_or("")
                .trim();
            if line.is_empty() {
                continue;
            }
            set.try_insert(Detector::parse(line)?)?;
        }
        Ok(set)
    }

    /// The detector with the given identifier.
    #[must_use]
    pub fn get(&self, id: u32) -> Option<&Detector> {
        self.detectors.get(&id)
    }

    /// Number of registered detectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// Iterates over detectors in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = &Detector> {
        self.detectors.values()
    }
}

impl FromIterator<Detector> for DetectorSet {
    fn from_iter<T: IntoIterator<Item = Detector>>(iter: T) -> Self {
        let mut set = DetectorSet::new();
        for d in iter {
            set.insert(d);
        }
        set
    }
}

impl Extend<Detector> for DetectorSet {
    fn extend<T: IntoIterator<Item = Detector>>(&mut self, iter: T) {
        for d in iter {
            self.insert(d);
        }
    }
}

impl fmt::Display for DetectorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in self.detectors.values() {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut set = DetectorSet::new();
        let d = Detector::parse("det(4, $(5), ==, ($3))").unwrap();
        assert!(set.insert(d.clone()).is_none());
        assert_eq!(set.get(4), Some(&d));
        assert!(set.get(5).is_none());
    }

    #[test]
    fn try_insert_rejects_duplicates() {
        let mut set = DetectorSet::new();
        set.try_insert(Detector::parse("det(1, $(2), >, (0))").unwrap())
            .unwrap();
        let e = set
            .try_insert(Detector::parse("det(1, $(3), <, (9))").unwrap())
            .unwrap_err();
        assert_eq!(e, DetectError::DuplicateId(1));
    }

    #[test]
    fn parse_multi_line_listing() {
        let set = DetectorSet::parse(
            "; factorial detectors (paper Figure 3)\n\
             det(1, $(3), >, ($4))       -- check ($4 < $3)\n\
             det(2, $(2), >=, ($6) * ($1)) ; check ($2 >= $6 * $1)\n\
             \n",
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.get(1).is_some());
        assert!(set.get(2).is_some());
    }

    #[test]
    fn display_round_trips() {
        let set = DetectorSet::parse("det(1, $(3), >, ($4))\ndet(2, *(8), ==, (0))").unwrap();
        let again = DetectorSet::parse(&set.to_string()).unwrap();
        assert_eq!(set, again);
    }

    #[test]
    fn from_iterator_collects() {
        let set: DetectorSet = vec![
            Detector::parse("det(1, $(1), >, (0))").unwrap(),
            Detector::parse("det(2, $(2), <, (0))").unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.iter().count(), 2);
    }
}
