//! Symbolic evaluation of detector expressions.

use sympl_asm::{BinOp, Reg};
use sympl_symbolic::{symbolic_binop, ArithOutcome, Location, Value};

use crate::{DetectError, Expr, ExprOp};

/// Read-only view of machine state that detector expressions evaluate
/// against. The machine model implements this for its state type; tests can
/// implement it with plain maps.
pub trait StateView {
    /// The current value of a register.
    fn reg_value(&self, reg: Reg) -> Value;
    /// The value of a memory word, or `None` if the address was never
    /// written (an "illegal address" in the paper's machine assumptions).
    fn mem_value(&self, addr: u64) -> Option<Value>;
}

/// Where the `err` in an expression result came from.
///
/// Constraint learning needs a *single* location to attach facts to; when
/// several erroneous locations feed a result, no per-location constraint is
/// expressible (the paper's stated over-approximation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrOrigin {
    /// No `err` contributed to the result.
    None,
    /// Exactly one erroneous location contributed.
    One(Location),
    /// Multiple erroneous locations contributed.
    Many,
}

impl ErrOrigin {
    fn merge(self, other: ErrOrigin) -> ErrOrigin {
        match (self, other) {
            (ErrOrigin::None, o) | (o, ErrOrigin::None) => o,
            _ => ErrOrigin::Many,
        }
    }

    /// The single origin location, if there is exactly one.
    #[must_use]
    pub fn single(self) -> Option<Location> {
        match self {
            ErrOrigin::One(l) => Some(l),
            _ => None,
        }
    }
}

/// The result of evaluating a detector expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOutcome {
    /// The (possibly symbolic) value of the expression.
    pub value: Value,
    /// Where any contributing `err` came from.
    pub origin: ErrOrigin,
}

/// Evaluates an expression against a state view.
///
/// Division by a *symbolic* divisor conservatively yields `err` rather than
/// forking inside the detector (sound: `err` covers every outcome including
/// the trap the real detector would take; detectors themselves are assumed
/// error-free, paper §5.3).
///
/// # Errors
///
/// * [`DetectError::DivByZero`] — concrete division by zero.
/// * [`DetectError::UndefinedMemory`] — the expression reads unwritten
///   memory.
pub fn eval_expr<S: StateView>(expr: &Expr, state: &S) -> Result<EvalOutcome, DetectError> {
    match expr {
        Expr::Const(c) => Ok(EvalOutcome {
            value: Value::Int(*c),
            origin: ErrOrigin::None,
        }),
        Expr::Reg(r) => {
            let value = state.reg_value(*r);
            let origin = if value.is_err() {
                ErrOrigin::One(Location::Reg(*r))
            } else {
                ErrOrigin::None
            };
            Ok(EvalOutcome { value, origin })
        }
        Expr::Mem(a) => {
            let value = state
                .mem_value(*a)
                .ok_or(DetectError::UndefinedMemory(*a))?;
            let origin = if value.is_err() {
                ErrOrigin::One(Location::Mem(*a))
            } else {
                ErrOrigin::None
            };
            Ok(EvalOutcome { value, origin })
        }
        Expr::Bin { op, lhs, rhs } => {
            let l = eval_expr(lhs, state)?;
            let r = eval_expr(rhs, state)?;
            let bin = match op {
                ExprOp::Add => BinOp::Add,
                ExprOp::Sub => BinOp::Sub,
                ExprOp::Mul => BinOp::Mul,
                ExprOp::Div => BinOp::Div,
            };
            let (value, origin) = match symbolic_binop(bin, l.value, r.value) {
                ArithOutcome::Value(v) => {
                    let origin = if v.is_err() {
                        l.origin.merge(r.origin)
                    } else {
                        ErrOrigin::None
                    };
                    (v, origin)
                }
                ArithOutcome::DivByZero => return Err(DetectError::DivByZero),
                // Symbolic divisor: conservative err result.
                ArithOutcome::ForkOnDivisorZero => (Value::Err, l.origin.merge(r.origin)),
            };
            Ok(EvalOutcome { value, origin })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    struct FakeState {
        regs: BTreeMap<u8, Value>,
        mem: BTreeMap<u64, Value>,
    }

    impl FakeState {
        fn new() -> Self {
            FakeState {
                regs: BTreeMap::new(),
                mem: BTreeMap::new(),
            }
        }
    }

    impl StateView for FakeState {
        fn reg_value(&self, reg: Reg) -> Value {
            self.regs
                .get(&(reg.index() as u8))
                .copied()
                .unwrap_or(Value::Int(0))
        }
        fn mem_value(&self, addr: u64) -> Option<Value> {
            self.mem.get(&addr).copied()
        }
    }

    #[test]
    fn concrete_expression_evaluates() {
        let mut s = FakeState::new();
        s.regs.insert(3, Value::Int(4));
        s.mem.insert(1000, Value::Int(6));
        let e = Expr::reg(3).add(Expr::mem(1000));
        let out = eval_expr(&e, &s).unwrap();
        assert_eq!(out.value, Value::Int(10));
        assert_eq!(out.origin, ErrOrigin::None);
    }

    #[test]
    fn single_err_origin_tracked() {
        let mut s = FakeState::new();
        s.regs.insert(3, Value::Err);
        s.regs.insert(4, Value::Int(2));
        let e = Expr::reg(3).mul(Expr::reg(4));
        let out = eval_expr(&e, &s).unwrap();
        assert_eq!(out.value, Value::Err);
        assert_eq!(out.origin.single(), Some(Location::reg(3)));
    }

    #[test]
    fn multiple_err_origins_collapse_to_many() {
        let mut s = FakeState::new();
        s.regs.insert(3, Value::Err);
        s.mem.insert(8, Value::Err);
        let e = Expr::reg(3).add(Expr::mem(8));
        let out = eval_expr(&e, &s).unwrap();
        assert_eq!(out.origin, ErrOrigin::Many);
        assert_eq!(out.origin.single(), None);
    }

    #[test]
    fn err_times_zero_clears_origin() {
        let mut s = FakeState::new();
        s.regs.insert(3, Value::Err);
        let e = Expr::reg(3).mul(Expr::constant(0));
        let out = eval_expr(&e, &s).unwrap();
        assert_eq!(out.value, Value::Int(0));
        assert_eq!(out.origin, ErrOrigin::None, "absorbed err leaves no origin");
    }

    #[test]
    fn concrete_div_by_zero_is_error() {
        let s = FakeState::new();
        let e = Expr::constant(1).div(Expr::constant(0));
        assert_eq!(eval_expr(&e, &s), Err(DetectError::DivByZero));
    }

    #[test]
    fn symbolic_divisor_yields_err() {
        let mut s = FakeState::new();
        s.regs.insert(3, Value::Err);
        let e = Expr::constant(10).div(Expr::reg(3));
        let out = eval_expr(&e, &s).unwrap();
        assert_eq!(out.value, Value::Err);
        assert_eq!(out.origin.single(), Some(Location::reg(3)));
    }

    #[test]
    fn undefined_memory_is_reported() {
        let s = FakeState::new();
        let e = Expr::mem(4096);
        assert_eq!(eval_expr(&e, &s), Err(DetectError::UndefinedMemory(4096)));
    }
}
