//! Error type for the detector model.

use std::fmt;

/// Errors arising while parsing or evaluating detectors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DetectError {
    /// Malformed detector text.
    Parse(String),
    /// A `check` instruction referenced an identifier with no detector.
    UnknownDetector(u32),
    /// The detector expression divided by a concrete zero.
    DivByZero,
    /// The detector expression read a memory word that was never defined.
    UndefinedMemory(u64),
    /// Two detectors with the same identifier were registered.
    DuplicateId(u32),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::Parse(msg) => write!(f, "detector parse error: {msg}"),
            DetectError::UnknownDetector(id) => write!(f, "no detector with id {id}"),
            DetectError::DivByZero => f.write_str("division by zero in detector expression"),
            DetectError::UndefinedMemory(a) => {
                write!(f, "detector expression reads undefined memory address {a}")
            }
            DetectError::DuplicateId(id) => write!(f, "duplicate detector id {id}"),
        }
    }
}

impl std::error::Error for DetectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        for e in [
            DetectError::Parse("x".into()),
            DetectError::UnknownDetector(1),
            DetectError::DivByZero,
            DetectError::UndefinedMemory(8),
            DetectError::DuplicateId(2),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
