//! # sympl-apps — the SymPLFIED evaluation workloads
//!
//! The programs the paper evaluates, in SymPLFIED generic assembly:
//!
//! * [`factorial`] — Figure 2 (no detectors) and [`factorial_with_detectors`]
//!   — Figure 3 (the two loop detectors).
//! * [`tcas`] — the aircraft collision avoidance application of §6.1–6.3,
//!   hand-translated with a compiler-style calling convention so the
//!   catastrophic return-address scenario of Figure 4 is reproducible.
//! * [`replace`] — the Siemens pattern-substitution program of §6.4, with
//!   the Table-3 functions (`makepat`, `getccl`, `dodash`, `amatch`,
//!   `locate`).
//! * [`sum`], [`bubble_sort`], [`gcd`], [`matmul`] — auxiliary workloads
//!   for tests and benches.
//! * [`spin`] — a synthetic loop-heavy stressor whose per-point searches
//!   are slow enough for the elastic-membership demos to exercise
//!   mid-campaign joins and shard splits.
//!
//! Each workload bundles its program, detectors, a default input, and a
//! watchdog bound that encompasses every correct execution (§5.4).
//!
//! ```
//! let w = sympl_apps::factorial();
//! let final_state = sympl_apps::golden(&w);
//! assert_eq!(final_state.output_ints(), vec![120]); // 5!
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replace_input;
pub mod tcas_input;

use sympl_asm::{parse_program, Program};
use sympl_detect::DetectorSet;
use sympl_machine::{run_concrete, ExecLimits, MachineState};

mod workload;

pub use workload::Workload;

// Re-parse sources on each call; parsing is microseconds and keeps the
// workloads independent values (callers typically build one per campaign).

/// Figure 2: the factorial program, default input 5.
#[must_use]
pub fn factorial() -> Workload {
    Workload::new(
        "factorial",
        parse_source(include_str!("../asm/factorial.sasm")),
        DetectorSet::new(),
        vec![5],
        2_000,
    )
}

/// Figure 3: factorial with the paper's two detectors.
///
/// Detector 1 (`check ($4 < $3)`) guards the loop counter. Detector 2
/// guards product monotonicity through the snapshot register `$6`: the
/// figure writes its RHS as `$6 * $1`, but under exact integer semantics
/// that expression exceeds the product from the second iteration on
/// (`$2 = $6·$3` with `$3 < $1`), so the detector would fire on
/// error-free runs; the equivalent sound form `$2 >= $6` keeps the
/// figure's structure (a snapshot-based product check that catches errors
/// inflating the counter and misses deflating ones).
#[must_use]
pub fn factorial_with_detectors() -> Workload {
    let detectors = DetectorSet::parse(
        "det(1, $(3), >, ($4))\n\
         det(2, $(2), >=, ($6))",
    )
    .expect("the Figure-3 detectors are well-formed");
    Workload::new(
        "factorial-det",
        parse_source(include_str!("../asm/factorial_det.sasm")),
        detectors,
        vec![5],
        2_000,
    )
}

/// §6.1–6.3: the tcas application, with the upward-advisory input (the
/// golden run prints `1`).
#[must_use]
pub fn tcas() -> Workload {
    Workload::new(
        "tcas",
        parse_source(include_str!("../asm/tcas.sasm")),
        DetectorSet::new(),
        tcas_input::upward_advisory(),
        5_000,
    )
}

/// §6.4: the replace program, with a default input whose pattern `[a-c]x`
/// replaces two occurrences in the line.
#[must_use]
pub fn replace() -> Workload {
    Workload::new(
        "replace",
        parse_source(include_str!("../asm/replace.sasm")),
        DetectorSet::new(),
        replace_input::encode("[a-c]x", "Z", "axbxdx"),
        50_000,
    )
}

/// Auxiliary: sum of 1..n (default n = 10).
#[must_use]
pub fn sum() -> Workload {
    Workload::new(
        "sum",
        parse_source(include_str!("../asm/sum.sasm")),
        DetectorSet::new(),
        vec![10],
        2_000,
    )
}

/// Auxiliary: bubble sort (default: five values).
#[must_use]
pub fn bubble_sort() -> Workload {
    Workload::new(
        "bubble-sort",
        parse_source(include_str!("../asm/bubble.sasm")),
        DetectorSet::new(),
        vec![5, 30, 10, 50, 20, 40],
        5_000,
    )
}

/// Auxiliary: Euclid's gcd (default gcd(54, 24) = 6).
#[must_use]
pub fn gcd() -> Workload {
    Workload::new(
        "gcd",
        parse_source(include_str!("../asm/gcd.sasm")),
        DetectorSet::new(),
        vec![54, 24],
        2_000,
    )
}

/// Auxiliary: dense n x n matrix multiply (default 2x2).
#[must_use]
pub fn matmul() -> Workload {
    Workload::new(
        "matmul",
        parse_source(include_str!("../asm/matmul.sasm")),
        DetectorSet::new(),
        vec![2, 1, 2, 3, 4, 5, 6, 7, 8],
        20_000,
    )
}

/// Auxiliary: a synthetic O(n²) nested counting loop (default n = 60)
/// whose per-point symbolic searches take tens of milliseconds — long
/// enough for elastic-membership events (late joins, shard splits) to
/// land mid-campaign. The `elastic_campaign` demo binary and the
/// `just elastic-demo` CI gate run on it; the paper workloads finish
/// their searches too quickly to exercise network-scale timing.
#[must_use]
pub fn spin() -> Workload {
    Workload::new(
        "spin",
        parse_source(include_str!("../asm/spin.sasm")),
        DetectorSet::new(),
        vec![60],
        20_000,
    )
}

/// Every bundled workload, for sweep-style tests and benches.
#[must_use]
pub fn all_workloads() -> Vec<Workload> {
    vec![
        factorial(),
        factorial_with_detectors(),
        tcas(),
        replace(),
        sum(),
        bubble_sort(),
        gcd(),
        matmul(),
        spin(),
    ]
}

/// Resolves a bundled workload by its report name (`"tcas"`,
/// `"replace"`, `"factorial"`, …) — the single lookup behind every
/// distributed-campaign program id, so `symplfied serve` and the campaign
/// binaries' self-spawned workers can never resolve the same id to
/// different programs.
#[must_use]
pub fn resolve_workload(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

fn parse_source(src: &str) -> Program {
    parse_program(src).expect("bundled workload sources are well-formed")
}

/// Runs a workload's golden (error-free) execution.
///
/// # Panics
///
/// Panics if the workload does not halt normally — bundled workloads always
/// do on their default inputs.
#[must_use]
pub fn golden(workload: &Workload) -> MachineState {
    let mut state = MachineState::with_input(workload.input.clone());
    run_concrete(
        &mut state,
        &workload.program,
        &workload.detectors,
        &ExecLimits::with_max_steps(workload.max_steps),
    )
    .expect("golden runs are concrete");
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_machine::Status;

    #[test]
    fn factorial_golden_is_120() {
        let w = factorial();
        let s = golden(&w);
        assert_eq!(s.status(), &Status::Halted);
        assert_eq!(s.output_ints(), vec![120]);
        assert_eq!(s.rendered_output(), "Factorial = 120");
    }

    #[test]
    fn factorial_with_detectors_matches_plain() {
        // The detectors must be transparent on error-free runs.
        for n in 1..=8 {
            let mut w = factorial_with_detectors();
            w.input = vec![n];
            let mut plain = factorial();
            plain.input = vec![n];
            assert_eq!(
                golden(&w).output_ints(),
                golden(&plain).output_ints(),
                "n = {n}"
            );
            assert_eq!(golden(&w).status(), &Status::Halted);
        }
    }

    #[test]
    fn tcas_golden_prints_upward_advisory() {
        let w = tcas();
        let s = golden(&w);
        assert_eq!(
            s.status(),
            &Status::Halted,
            "output: {}",
            s.rendered_output()
        );
        assert_eq!(s.output_ints(), vec![1], "expected the upward advisory");
    }

    #[test]
    fn tcas_alternative_inputs() {
        // Downward advisory input prints 2; unresolved input prints 0.
        let mut w = tcas();
        w.input = tcas_input::downward_advisory();
        assert_eq!(golden(&w).output_ints(), vec![2]);
        w.input = tcas_input::unresolved();
        assert_eq!(golden(&w).output_ints(), vec![0]);
        w.input = tcas_input::disabled();
        assert_eq!(golden(&w).output_ints(), vec![0]);
    }

    #[test]
    fn replace_golden_substitutes() {
        let w = replace();
        let s = golden(&w);
        assert_eq!(s.status(), &Status::Halted);
        // "axbxdx" with pattern [a-c]x -> "ZZdx"
        assert_eq!(
            replace_input::decode(&s.output_ints()),
            "ZZdx",
            "raw output: {:?}",
            s.output_ints()
        );
    }

    #[test]
    fn replace_more_patterns() {
        let cases = [
            ("abc", "X", "zabcz", "zXz"),
            ("a?c", "Y", "aXcabc", "YY"),
            ("[0-9]", "N", "a1b22", "aNbNN"),
            ("[^a]", "_", "aba", "a_a"),
            ("q", "Q", "aaa", "aaa"),
            ("a", "AA", "aa", "AAAA"),
        ];
        for (pat, sub, line, expected) in cases {
            let mut w = replace();
            w.input = replace_input::encode(pat, sub, line);
            let s = golden(&w);
            assert_eq!(s.status(), &Status::Halted, "{pat} / {line}");
            assert_eq!(
                replace_input::decode(&s.output_ints()),
                expected,
                "pattern `{pat}` on `{line}`"
            );
        }
    }

    #[test]
    fn sum_and_bubble_golden() {
        assert_eq!(golden(&sum()).output_ints(), vec![55]);
        assert_eq!(
            golden(&bubble_sort()).output_ints(),
            vec![10, 20, 30, 40, 50]
        );
    }

    #[test]
    fn gcd_golden() {
        assert_eq!(golden(&gcd()).output_ints(), vec![6]);
        for (a, b, g) in [(12, 18, 6), (7, 13, 1), (0, 5, 5), (5, 0, 5), (48, 36, 12)] {
            let w = gcd().with_input(vec![a, b]);
            assert_eq!(golden(&w).output_ints(), vec![g], "gcd({a},{b})");
        }
    }

    #[test]
    fn matmul_golden() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        assert_eq!(golden(&matmul()).output_ints(), vec![19, 22, 43, 50]);
        // Identity times anything.
        let w = matmul().with_input(vec![2, 1, 0, 0, 1, 9, 8, 7, 6]);
        assert_eq!(golden(&w).output_ints(), vec![9, 8, 7, 6]);
        // 3x3 against a reference computation.
        let a = [1i64, 2, 3, 4, 5, 6, 7, 8, 9];
        let b = [9i64, 8, 7, 6, 5, 4, 3, 2, 1];
        let mut input = vec![3];
        input.extend(a);
        input.extend(b);
        let mut expected = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                expected.push((0..3).map(|k| a[i * 3 + k] * b[k * 3 + j]).sum::<i64>());
            }
        }
        let w = matmul().with_input(input);
        assert_eq!(golden(&w).output_ints(), expected);
    }

    #[test]
    fn all_workloads_halt_on_default_inputs() {
        for w in all_workloads() {
            let s = golden(&w);
            assert_eq!(s.status(), &Status::Halted, "workload {}", w.name);
            assert!(s.steps() < w.max_steps, "watchdog too tight for {}", w.name);
        }
    }
}
