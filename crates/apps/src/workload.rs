//! The workload bundle type.

use sympl_asm::Program;
use sympl_detect::DetectorSet;

/// A ready-to-analyze workload: program, detectors, input, watchdog bound.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in reports and benches.
    pub name: &'static str,
    /// The assembled program.
    pub program: Program,
    /// Detectors referenced by the program's `check` instructions.
    pub detectors: DetectorSet,
    /// Default input stream.
    pub input: Vec<i64>,
    /// Watchdog instruction bound covering every correct execution (§5.4).
    pub max_steps: u64,
}

impl Workload {
    /// Bundles the pieces of a workload.
    #[must_use]
    pub fn new(
        name: &'static str,
        program: Program,
        detectors: DetectorSet,
        input: Vec<i64>,
        max_steps: u64,
    ) -> Self {
        Workload {
            name,
            program,
            detectors,
            input,
            max_steps,
        }
    }

    /// A copy of this workload with a different input.
    #[must_use]
    pub fn with_input(mut self, input: Vec<i64>) -> Self {
        self.input = input;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;

    #[test]
    fn with_input_replaces_stream() {
        let w = Workload::new(
            "t",
            parse_program("halt").unwrap(),
            DetectorSet::new(),
            vec![1],
            10,
        )
        .with_input(vec![9, 9]);
        assert_eq!(w.input, vec![9, 9]);
        assert_eq!(w.name, "t");
    }
}
