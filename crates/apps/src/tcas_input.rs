//! tcas input vectors (the 12 parameters of §6, in specification order).
//!
//! Parameter order: `Cur_Vertical_Sep, High_Confidence,
//! Two_of_Three_Reports_Valid, Own_Tracked_Alt, Own_Tracked_Alt_Rate,
//! Other_Tracked_Alt, Alt_Layer_Value, Up_Separation, Down_Separation,
//! Other_RAC, Other_Capability, Climb_Inhibit`.

/// Builder for tcas inputs with named fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the tcas specification names
pub struct TcasInput {
    pub cur_vertical_sep: i64,
    pub high_confidence: i64,
    pub two_of_three_reports_valid: i64,
    pub own_tracked_alt: i64,
    pub own_tracked_alt_rate: i64,
    pub other_tracked_alt: i64,
    pub alt_layer_value: i64,
    pub up_separation: i64,
    pub down_separation: i64,
    pub other_rac: i64,
    pub other_capability: i64,
    pub climb_inhibit: i64,
}

impl TcasInput {
    /// Serializes into the 12-value input stream the program reads.
    #[must_use]
    pub fn to_stream(self) -> Vec<i64> {
        vec![
            self.cur_vertical_sep,
            self.high_confidence,
            self.two_of_three_reports_valid,
            self.own_tracked_alt,
            self.own_tracked_alt_rate,
            self.other_tracked_alt,
            self.alt_layer_value,
            self.up_separation,
            self.down_separation,
            self.other_rac,
            self.other_capability,
            self.climb_inhibit,
        ]
    }
}

impl Default for TcasInput {
    /// The §6.1 evaluation input: the error-free run produces the upward
    /// advisory (prints 1).
    fn default() -> Self {
        TcasInput {
            cur_vertical_sep: 601,
            high_confidence: 1,
            two_of_three_reports_valid: 1,
            own_tracked_alt: 500,
            own_tracked_alt_rate: 500,
            other_tracked_alt: 600,
            alt_layer_value: 0,
            up_separation: 740,
            down_separation: 399,
            other_rac: 0,
            other_capability: 1,
            climb_inhibit: 0,
        }
    }
}

/// The evaluation input: golden output `1` (upward advisory).
#[must_use]
pub fn upward_advisory() -> Vec<i64> {
    TcasInput::default().to_stream()
}

/// An input whose golden output is `2` (downward advisory): own aircraft is
/// above the threat, downward separation dominates (so the climb is not
/// biased upward), and the upward separation still meets ALIM — which makes
/// `Non_Crossing_Biased_Descend` true while `need_upward_RA` stays false.
#[must_use]
pub fn downward_advisory() -> Vec<i64> {
    TcasInput {
        own_tracked_alt: 600,
        other_tracked_alt: 500,
        up_separation: 500,
        down_separation: 740,
        ..TcasInput::default()
    }
    .to_stream()
}

/// An input whose golden output is `0` (unresolved): neither advisory fires
/// because both separations are adequate.
#[must_use]
pub fn unresolved() -> Vec<i64> {
    TcasInput {
        up_separation: 740,
        down_separation: 740,
        ..TcasInput::default()
    }
    .to_stream()
}

/// An input with the logic disabled (low confidence): golden output `0`.
#[must_use]
pub fn disabled() -> Vec<i64> {
    TcasInput {
        high_confidence: 0,
        ..TcasInput::default()
    }
    .to_stream()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_twelve_parameters() {
        assert_eq!(upward_advisory().len(), 12);
        assert_eq!(downward_advisory().len(), 12);
        assert_eq!(unresolved().len(), 12);
        assert_eq!(disabled().len(), 12);
    }

    #[test]
    fn builder_orders_fields_per_specification() {
        let s = TcasInput::default().to_stream();
        assert_eq!(s[0], 601, "Cur_Vertical_Sep first");
        assert_eq!(s[11], 0, "Climb_Inhibit last");
    }
}
