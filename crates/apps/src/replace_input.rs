//! Input encoding for the `replace` workload.
//!
//! The program reads three length-prefixed character sequences — pattern,
//! substitution, line — as integer char codes, and prints the substituted
//! line one char code at a time.

/// Encodes `(pattern, substitution, line)` into the input stream.
///
/// ```
/// let stream = sympl_apps::replace_input::encode("a", "b", "aa");
/// assert_eq!(stream, vec![1, 97, 1, 98, 2, 97, 97]);
/// ```
#[must_use]
pub fn encode(pattern: &str, substitution: &str, line: &str) -> Vec<i64> {
    let mut out = Vec::new();
    for s in [pattern, substitution, line] {
        out.push(s.chars().count() as i64);
        out.extend(s.chars().map(|c| i64::from(u32::from(c))));
    }
    out
}

/// Decodes printed char codes back into a string; out-of-range codes render
/// as `?` so corrupted outputs stay printable.
#[must_use]
pub fn decode(codes: &[i64]) -> String {
    codes
        .iter()
        .map(|&c| {
            u32::try_from(c)
                .ok()
                .and_then(char::from_u32)
                .unwrap_or('?')
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_round_trips_through_decode() {
        let stream = encode("[a-c]", "XY", "hello");
        // pattern len 5, sub len 2, line len 5 -> 3 + 12 values.
        assert_eq!(stream.len(), 15);
        assert_eq!(stream[0], 5);
        let line_codes = &stream[10..];
        assert_eq!(decode(line_codes), "hello");
    }

    #[test]
    fn decode_tolerates_garbage() {
        assert_eq!(decode(&[104, -1, 105]), "h?i");
        assert_eq!(decode(&[0x11_0000]), "?");
    }
}
