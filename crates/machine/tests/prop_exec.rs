//! Property tests: the symbolic and concrete executors agree exactly on
//! concrete states (the paper's machine model is deterministic; its
//! equations are shared by both executors here, so any divergence is a
//! bug in one of them).

use proptest::prelude::*;
use sympl_asm::{BinOp, Cmp, Instr, Operand, Program, Reg};
use sympl_detect::DetectorSet;
use sympl_machine::{run_concrete, step_concrete, ExecLimits, MachineState};

/// Random straight-line-ish programs over registers $1..$6 and a small
/// memory window, with bounded loops via a countdown register.
fn arb_program() -> impl Strategy<Value = Program> {
    let arb_reg = || (1u8..6).prop_map(Reg::r);
    let arb_operand = || {
        prop_oneof![
            (1u8..6).prop_map(|r| Operand::Reg(Reg::r(r))),
            (-20i64..=20).prop_map(Operand::Imm),
        ]
    };
    let arb_binop = || {
        prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::Xor),
            Just(BinOp::Div),
            Just(BinOp::Rem),
        ]
    };
    let arb_cmp = || {
        prop_oneof![
            Just(Cmp::Eq),
            Just(Cmp::Ne),
            Just(Cmp::Gt),
            Just(Cmp::Lt),
            Just(Cmp::Ge),
            Just(Cmp::Le),
        ]
    };
    let arb_instr = (0u8..8).prop_flat_map(move |kind| match kind {
        0 => (arb_binop(), arb_reg(), arb_reg(), arb_operand())
            .prop_map(|(op, rd, rs, src)| Instr::Bin { op, rd, rs, src })
            .boxed(),
        1 => (arb_reg(), arb_operand())
            .prop_map(|(rd, src)| Instr::Mov { rd, src })
            .boxed(),
        2 => (arb_cmp(), arb_reg(), arb_reg(), arb_operand())
            .prop_map(|(cmp, rd, rs, src)| Instr::Set { cmp, rd, rs, src })
            .boxed(),
        3 => (arb_reg(), 0i64..8)
            .prop_map(|(rt, slot)| Instr::Store {
                rt,
                rs: Reg::r(0),
                offset: 1000 + slot * 8,
            })
            .boxed(),
        4 => (arb_reg(), 0i64..8)
            .prop_map(|(rt, slot)| Instr::Load {
                rt,
                rs: Reg::r(0),
                offset: 1000 + slot * 8,
            })
            .boxed(),
        5 => arb_reg().prop_map(|rd| Instr::Read { rd }).boxed(),
        6 => arb_reg().prop_map(|rs| Instr::Print { rs }).boxed(),
        _ => Just(Instr::Nop).boxed(),
    });
    prop::collection::vec(arb_instr, 1..25).prop_map(|mut instrs| {
        instrs.push(Instr::Halt);
        Program::new(instrs, std::collections::BTreeMap::new()).expect("non-empty, no targets")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn executors_agree_on_random_programs(
        program in arb_program(),
        input in prop::collection::vec(-100i64..=100, 0..6),
    ) {
        let detectors = DetectorSet::new();
        let limits = ExecLimits::with_max_steps(500);

        let mut concrete = MachineState::with_input(input.clone());
        concrete.load_memory((0u64..8).map(|i| (1000 + i * 8, i as i64 * 3 - 5)));
        run_concrete(&mut concrete, &program, &detectors, &limits).unwrap();

        let mut symbolic = MachineState::with_input(input);
        symbolic.load_memory((0u64..8).map(|i| (1000 + i * 8, i as i64 * 3 - 5)));
        while !symbolic.status().is_terminal() {
            let mut succ = symbolic.step(&program, &detectors, &limits);
            prop_assert_eq!(succ.len(), 1, "concrete program must not fork");
            symbolic = succ.pop().unwrap();
        }

        prop_assert_eq!(concrete, symbolic);
    }

    #[test]
    fn step_counts_match(
        program in arb_program(),
        input in prop::collection::vec(-100i64..=100, 0..6),
    ) {
        let detectors = DetectorSet::new();
        let limits = ExecLimits::with_max_steps(500);
        let mut a = MachineState::with_input(input.clone());
        a.load_memory((0u64..8).map(|i| (1000 + i * 8, 0)));
        let mut b = a.clone();
        // Lockstep: after every single step the states coincide.
        while !a.status().is_terminal() {
            step_concrete(&mut a, &program, &detectors, &limits).unwrap();
            let mut succ = b.step(&program, &detectors, &limits);
            prop_assert_eq!(succ.len(), 1);
            b = succ.pop().unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.steps(), b.steps());
        }
    }
}
