//! Execution bounds: the watchdog and the fork fan-out caps.

/// Bounds on a single execution path.
///
/// * `max_steps` is the paper's *timeout* (§5.4): the instruction bound
///   standing in for a watchdog timer. It must be chosen to encompass every
///   correct (error-free) execution; exceeding it marks the path
///   [`crate::Status::TimedOut`] (a hang outcome).
/// * `fork_jump_targets` / `fork_mem_targets` cap the fan-out of the
///   non-deterministic control/memory error rules. The paper's model forks
///   over *every* valid code location / defined memory word; `None`
///   reproduces that. Finite caps trade exhaustiveness for speed and back
///   the fan-out ablation benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum instructions executed along one path (the watchdog bound).
    pub max_steps: u64,
    /// Cap on successors when an erroneous jump target forks over the code
    /// (`None` = every valid instruction address, as in the paper).
    pub fork_jump_targets: Option<usize>,
    /// Cap on successors when an erroneous pointer forks over memory
    /// (`None` = every defined word, as in the paper).
    pub fork_mem_targets: Option<usize>,
    /// Whether comparison forks record constraints and equality
    /// substitutions. `true` is the paper's full technique; `false`
    /// disables the constraint solver (the ablation of DESIGN.md §⚗1:
    /// more false positives, a larger state space, and spurious outcomes).
    pub track_constraints: bool,
}

impl ExecLimits {
    /// Limits with a given watchdog bound and unbounded fan-outs.
    #[must_use]
    pub fn with_max_steps(max_steps: u64) -> Self {
        ExecLimits {
            max_steps,
            ..ExecLimits::default()
        }
    }

    /// Selects up to `cap` fork targets from `n` candidates, evenly spread
    /// so capped fan-outs still cover the whole range.
    pub(crate) fn spread(cap: Option<usize>, n: usize) -> Vec<usize> {
        match cap {
            None => (0..n).collect(),
            Some(c) if c >= n => (0..n).collect(),
            Some(0) => Vec::new(),
            Some(c) => {
                // Evenly spaced sample including both endpoints.
                (0..c)
                    .map(|i| if c == 1 { 0 } else { i * (n - 1) / (c - 1) })
                    .collect()
            }
        }
    }
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_steps: 100_000,
            fork_jump_targets: None,
            fork_mem_targets: None,
            track_constraints: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded_fanout() {
        let l = ExecLimits::default();
        assert_eq!(l.fork_jump_targets, None);
        assert_eq!(l.fork_mem_targets, None);
        assert!(l.max_steps > 0);
    }

    #[test]
    fn spread_uncapped_is_identity() {
        assert_eq!(ExecLimits::spread(None, 4), vec![0, 1, 2, 3]);
        assert_eq!(ExecLimits::spread(Some(10), 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spread_capped_covers_endpoints() {
        let s = ExecLimits::spread(Some(3), 100);
        assert_eq!(s.len(), 3);
        assert_eq!(*s.first().unwrap(), 0);
        assert_eq!(*s.last().unwrap(), 99);
    }

    #[test]
    fn spread_degenerate_cases() {
        assert!(ExecLimits::spread(Some(0), 10).is_empty());
        assert_eq!(ExecLimits::spread(Some(1), 10), vec![0]);
        assert!(ExecLimits::spread(None, 0).is_empty());
    }
}
