//! 128-bit state fingerprints for visited-set deduplication.
//!
//! The model checker used to store whole [`crate::MachineState`] values in
//! its visited set — hundreds of bytes per state. A [`Fingerprint`] is a
//! 128-bit digest of everything state equality observes (program counter,
//! registers, merged memory content, I/O streams, constraint map, watchdog
//! counter, status), so dedup costs 16 bytes per state and one hash pass.
//! At 128 bits a campaign of a billion states has a collision probability
//! around 1.5e-21, far below the model's other sources of approximation;
//! the search-equivalence property tests compare fingerprint dedup against
//! full-state dedup on the paper workloads.
//!
//! # Incremental (Zobrist-style) digest maintenance
//!
//! Computing a digest by re-walking the whole state term is O(|state|) per
//! enqueued successor — the dominant cost once forking is O(delta). Instead,
//! every *collection-valued* state component (register file, merged memory
//! image, output stream, constraint map) maintains a [`ZobristComponent`]:
//! an XOR-fold of one **cell hash** per `(key, value)` entry, updated in
//! O(1) per mutation by XOR-ing the old cell out and the new cell in.
//! [`crate::MachineState::fingerprint`] then mixes the component folds and
//! the cheap scalars (pc, input cursor, step counter, status) through one
//! fixed-size FNV-1a pass, so the digest costs O(writes) amortized over the
//! path — never O(|state|) at call time.
//!
//! # Determinism contract (why no random Zobrist table)
//!
//! Classic Zobrist hashing draws one random bitstring per (location, value)
//! pair from a pre-seeded table, which caps the key domain and drags RNG
//! state into every engine. Here the cell hash is simply FNV-128 of the
//! encoded `(key, value)` pair ([`cell_hash`]): fully deterministic, defined
//! for unbounded domains (64-bit addresses, arbitrary constraint sets), and
//! needing no table, seed, or initialization order. The XOR fold keeps the
//! two algebraic properties the engine relies on:
//!
//! * **Content determinism** — the fold is a function of the entry *set*
//!   only. Insertion order, CoW base/delta layering, and delta compactions
//!   cannot move it, so equal states always fingerprint equal.
//! * **Self-inverse updates** — XOR-ing a cell twice cancels, so overwrite
//!   is "remove old, insert new" with no lookup into an auxiliary structure.
//!
//! Collision quality is the birthday bound over XOR-accumulated FNV-128
//! cells rather than a single serial FNV stream; both are ~2^-64-per-pair
//! schemes, and the digest-consistency property tests pin the rolling fold
//! to a from-scratch recompute after arbitrary mutation/fork/compaction
//! sequences. The primitives themselves ([`Fnv128Hasher`], [`cell_hash`],
//! [`ZobristComponent`]) live in `sympl-symbolic` so the `ConstraintMap`
//! can maintain its own fold; they are re-exported here, where the state
//! digest scheme they serve is documented.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

pub use sympl_symbolic::{cell_hash, Fnv128Hasher, ZobristComponent};

/// A 128-bit digest of a machine state's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The shard index for a sharded visited set: the digest's **low**
    /// `log2(shards)` bits. [`IdentityHasher`] derives bucket positions from
    /// the **high** 64 bits, so sharding and in-shard bucketing consume
    /// disjoint, independently-mixed bits of the digest.
    ///
    /// `shards` must be a power of two.
    #[must_use]
    pub fn shard(self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two(), "shard count must be 2^k");
        (self.0 as usize) & (shards - 1)
    }
}

/// A no-op [`Hasher`] for [`Fingerprint`] keys.
///
/// Fingerprints are already uniform 128-bit FNV-1a digests; re-hashing them
/// through SipHash (the `HashSet` default) burns a full hash pass per
/// visited-set probe for zero distributional benefit. This hasher just
/// truncates: it keeps the digest's **high** 64 bits as the bucket hash
/// (the low bits select the shard in the parallel engine's sharded set, so
/// the two uses never collapse onto the same bits).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityHasher {
    hash: u64,
}

impl Hasher for IdentityHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (not used by `Fingerprint`, whose derived Hash
        // calls `write_u128`): fold bytes in, preserving all input.
        for &b in bytes {
            self.hash = self.hash.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u128(&mut self, n: u128) {
        self.hash = (n >> 64) as u64;
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The [`std::hash::BuildHasher`] plugging [`IdentityHasher`] into std
/// collections.
pub type FingerprintBuildHasher = BuildHasherDefault<IdentityHasher>;

/// A visited set keyed by fingerprints with no re-hashing: the digest's own
/// bits are the bucket hash.
pub type FingerprintSet = HashSet<Fingerprint, FingerprintBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn distinct_inputs_give_distinct_digests() {
        let digest = |v: u64| {
            let mut h = Fnv128Hasher::new();
            v.hash(&mut h);
            Fingerprint(h.finish128())
        };
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u64 {
            assert!(seen.insert(digest(v)), "collision at {v}");
        }
    }

    #[test]
    fn identity_hasher_passes_digest_bits_through() {
        let fp = Fingerprint(0xDEAD_BEEF_0123_4567_89AB_CDEF_FEED_FACE);
        let mut h = IdentityHasher::default();
        fp.hash(&mut h);
        assert_eq!(h.finish(), 0xDEAD_BEEF_0123_4567, "high 64 bits kept");
        // A FingerprintSet behaves like a plain set.
        let mut set = FingerprintSet::default();
        for v in 0..1000u128 {
            assert!(set.insert(Fingerprint(v << 64 | v)));
        }
        for v in 0..1000u128 {
            assert!(set.contains(&Fingerprint(v << 64 | v)));
            assert!(!set.insert(Fingerprint(v << 64 | v)));
        }
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn shard_uses_low_bits() {
        let fp = Fingerprint(0xFFFF_0000_0000_0000_0000_0000_0000_002B);
        assert_eq!(fp.shard(64), 0x2B);
        assert_eq!(fp.shard(1), 0);
        // Bucket hash (high bits) and shard index (low bits) are disjoint:
        // states that land in the same shard still spread across buckets.
        let mut h = IdentityHasher::default();
        fp.hash(&mut h);
        assert_eq!(h.finish(), 0xFFFF_0000_0000_0000);
    }

    #[test]
    fn digest_is_deterministic() {
        let mut a = Fnv128Hasher::new();
        let mut b = Fnv128Hasher::new();
        "some state bytes".hash(&mut a);
        "some state bytes".hash(&mut b);
        assert_eq!(a.finish128(), b.finish128());
        assert_eq!(a.finish(), b.finish());
    }
}
