//! 128-bit state fingerprints for visited-set deduplication.
//!
//! The model checker used to store whole [`crate::MachineState`] values in
//! its visited set — hundreds of bytes per state. A [`Fingerprint`] is a
//! 128-bit digest of everything state equality observes (program counter,
//! registers, merged memory content, I/O streams, constraint map, watchdog
//! counter, status), so dedup costs 16 bytes per state and one hash pass.
//!
//! The digest is FNV-1a over the state's canonical [`Hash`] byte stream,
//! widened to 128 bits. At 128 bits a campaign of a billion states has a
//! collision probability around 1.5e-21, far below the model's other
//! sources of approximation; the search-equivalence property tests compare
//! fingerprint dedup against full-state dedup on the paper workloads.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// A 128-bit digest of a machine state's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The shard index for a sharded visited set: the digest's **low**
    /// `log2(shards)` bits. [`IdentityHasher`] derives bucket positions from
    /// the **high** 64 bits, so sharding and in-shard bucketing consume
    /// disjoint, independently-mixed bits of the digest.
    ///
    /// `shards` must be a power of two.
    #[must_use]
    pub fn shard(self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two(), "shard count must be 2^k");
        (self.0 as usize) & (shards - 1)
    }
}

/// A no-op [`Hasher`] for [`Fingerprint`] keys.
///
/// Fingerprints are already uniform 128-bit FNV-1a digests; re-hashing them
/// through SipHash (the `HashSet` default) burns a full hash pass per
/// visited-set probe for zero distributional benefit. This hasher just
/// truncates: it keeps the digest's **high** 64 bits as the bucket hash
/// (the low bits select the shard in the parallel engine's sharded set, so
/// the two uses never collapse onto the same bits).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityHasher {
    hash: u64,
}

impl Hasher for IdentityHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (not used by `Fingerprint`, whose derived Hash
        // calls `write_u128`): fold bytes in, preserving all input.
        for &b in bytes {
            self.hash = self.hash.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u128(&mut self, n: u128) {
        self.hash = (n >> 64) as u64;
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The [`std::hash::BuildHasher`] plugging [`IdentityHasher`] into std
/// collections.
pub type FingerprintBuildHasher = BuildHasherDefault<IdentityHasher>;

/// A visited set keyed by fingerprints with no re-hashing: the digest's own
/// bits are the bucket hash.
pub type FingerprintSet = HashSet<Fingerprint, FingerprintBuildHasher>;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// FNV-1a accumulator exposing a 128-bit digest through the standard
/// [`Hasher`] interface (so any `Hash` impl can feed it).
#[derive(Debug, Clone)]
pub struct Fnv128Hasher {
    state: u128,
}

impl Fnv128Hasher {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv128Hasher {
            state: FNV128_OFFSET,
        }
    }

    /// The full 128-bit digest.
    #[must_use]
    pub fn finish128(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for Fnv128Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv128Hasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn distinct_inputs_give_distinct_digests() {
        let digest = |v: u64| {
            let mut h = Fnv128Hasher::new();
            v.hash(&mut h);
            h.finish128()
        };
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u64 {
            assert!(seen.insert(digest(v)), "collision at {v}");
        }
    }

    #[test]
    fn identity_hasher_passes_digest_bits_through() {
        let fp = Fingerprint(0xDEAD_BEEF_0123_4567_89AB_CDEF_FEED_FACE);
        let mut h = IdentityHasher::default();
        fp.hash(&mut h);
        assert_eq!(h.finish(), 0xDEAD_BEEF_0123_4567, "high 64 bits kept");
        // A FingerprintSet behaves like a plain set.
        let mut set = FingerprintSet::default();
        for v in 0..1000u128 {
            assert!(set.insert(Fingerprint(v << 64 | v)));
        }
        for v in 0..1000u128 {
            assert!(set.contains(&Fingerprint(v << 64 | v)));
            assert!(!set.insert(Fingerprint(v << 64 | v)));
        }
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn shard_uses_low_bits() {
        let fp = Fingerprint(0xFFFF_0000_0000_0000_0000_0000_0000_002B);
        assert_eq!(fp.shard(64), 0x2B);
        assert_eq!(fp.shard(1), 0);
        // Bucket hash (high bits) and shard index (low bits) are disjoint:
        // states that land in the same shard still spread across buckets.
        let mut h = IdentityHasher::default();
        fp.hash(&mut h);
        assert_eq!(h.finish(), 0xFFFF_0000_0000_0000);
    }

    #[test]
    fn digest_is_deterministic() {
        let mut a = Fnv128Hasher::new();
        let mut b = Fnv128Hasher::new();
        "some state bytes".hash(&mut a);
        "some state bytes".hash(&mut b);
        assert_eq!(a.finish128(), b.finish128());
        assert_eq!(a.finish(), b.finish());
    }
}
