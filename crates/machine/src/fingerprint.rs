//! 128-bit state fingerprints for visited-set deduplication.
//!
//! The model checker used to store whole [`crate::MachineState`] values in
//! its visited set — hundreds of bytes per state. A [`Fingerprint`] is a
//! 128-bit digest of everything state equality observes (program counter,
//! registers, merged memory content, I/O streams, constraint map, watchdog
//! counter, status), so dedup costs 16 bytes per state and one hash pass.
//!
//! The digest is FNV-1a over the state's canonical [`Hash`] byte stream,
//! widened to 128 bits. At 128 bits a campaign of a billion states has a
//! collision probability around 1.5e-21, far below the model's other
//! sources of approximation; the search-equivalence property tests compare
//! fingerprint dedup against full-state dedup on the paper workloads.

use std::hash::Hasher;

/// A 128-bit digest of a machine state's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// FNV-1a accumulator exposing a 128-bit digest through the standard
/// [`Hasher`] interface (so any `Hash` impl can feed it).
#[derive(Debug, Clone)]
pub struct Fnv128Hasher {
    state: u128,
}

impl Fnv128Hasher {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv128Hasher {
            state: FNV128_OFFSET,
        }
    }

    /// The full 128-bit digest.
    #[must_use]
    pub fn finish128(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for Fnv128Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv128Hasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn distinct_inputs_give_distinct_digests() {
        let digest = |v: u64| {
            let mut h = Fnv128Hasher::new();
            v.hash(&mut h);
            h.finish128()
        };
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u64 {
            assert!(seen.insert(digest(v)), "collision at {v}");
        }
    }

    #[test]
    fn digest_is_deterministic() {
        let mut a = Fnv128Hasher::new();
        let mut b = Fnv128Hasher::new();
        "some state bytes".hash(&mut a);
        "some state bytes".hash(&mut b);
        assert_eq!(a.finish128(), b.finish128());
        assert_eq!(a.finish(), b.finish());
    }
}
