//! The symbolic executor: one instruction, possibly many successors.
//!
//! Deterministic behaviour mirrors the paper's Maude *equations* (§5.1);
//! every non-determinism — comparisons on `err`, erroneous jump targets,
//! erroneous load/store pointers, divisions by a symbolic divisor — mirrors
//! its *rewrite rules* (§5.2) and fans out into multiple successor states.
//! Fork cases whose learned constraints are unsatisfiable are pruned on the
//! spot (the constraint solver's false-positive elimination).

use sympl_asm::{Instr, Operand, Program, Reg};
use sympl_detect::{eval_expr, DetectError, DetectorSet};
use sympl_symbolic::{fork_compare, symbolic_binop, ArithOutcome, CmpCase, Location, Value};

use crate::{Exception, ExecLimits, MachineState, OutItem, Status};

impl MachineState {
    /// Executes one instruction symbolically, returning every successor
    /// state. Terminal states return an empty vector.
    ///
    /// The successor count is 1 for deterministic instructions, 2 for a
    /// forked comparison/branch, and up to `|code|` or `|memory| + 1` for
    /// control/pointer errors (subject to [`ExecLimits`] caps).
    #[must_use]
    pub fn step(
        &self,
        program: &Program,
        detectors: &DetectorSet,
        limits: &ExecLimits,
    ) -> Vec<MachineState> {
        if self.status().is_terminal() {
            return Vec::new();
        }
        // Watchdog: the §5.4 instruction bound.
        if self.steps() >= limits.max_steps {
            let mut s = self.clone();
            s.set_status(Status::TimedOut);
            return vec![s];
        }
        let Some(instr) = program.fetch(self.pc()) else {
            let mut s = self.clone();
            s.set_status(Status::Exception(Exception::IllegalInstruction));
            return vec![s];
        };

        let mut succ = self.clone();
        succ.bump_steps();

        // Match by reference: cloning the instruction here would allocate
        // for `String`-carrying variants on every fetch.
        match instr {
            Instr::Nop => {
                succ.set_pc(self.pc() + 1);
                vec![succ]
            }
            Instr::Halt => {
                succ.set_status(Status::Halted);
                vec![succ]
            }
            Instr::Mov { rd, src } => {
                match *src {
                    Operand::Imm(v) => succ.set_reg(*rd, Value::Int(v)),
                    Operand::Reg(rs) => {
                        let v = self.reg(rs);
                        succ.copy_reg_with_constraints(*rd, v, Location::Reg(rs));
                    }
                }
                succ.set_pc(self.pc() + 1);
                vec![succ]
            }
            Instr::Bin { op, rd, rs, src } => {
                let a = self.reg(*rs);
                let (b, bloc) = self.operand_value(*src);
                match symbolic_binop(*op, a, b) {
                    ArithOutcome::Value(v) => {
                        succ.set_reg(*rd, v);
                        succ.set_pc(self.pc() + 1);
                        vec![succ]
                    }
                    ArithOutcome::DivByZero => {
                        succ.set_status(Status::Exception(Exception::DivByZero));
                        vec![succ]
                    }
                    ArithOutcome::ForkOnDivisorZero => {
                        let mut out = Vec::with_capacity(2);
                        fork_div_zero(succ, *rd, bloc, limits.track_constraints, &mut out);
                        out
                    }
                }
            }
            Instr::Set { cmp, rd, rs, src } => {
                let (a, aloc) = self.reg_with_loc(*rs);
                let (b, bloc) = self.operand_value(*src);
                let cases = fork_compare(*cmp, a, aloc, b, bloc);
                let rd = *rd;
                let next = self.pc() + 1;
                let mut out = Vec::with_capacity(cases.len());
                apply_fork_cases(
                    succ,
                    &cases,
                    limits.track_constraints,
                    |s, result| {
                        s.set_reg(rd, Value::Int(i64::from(result)));
                        s.set_pc(next);
                    },
                    &mut out,
                );
                out
            }
            Instr::Branch {
                cmp,
                rs,
                src,
                target,
            } => {
                let (a, aloc) = self.reg_with_loc(*rs);
                let (b, bloc) = self.operand_value(*src);
                let cases = fork_compare(*cmp, a, aloc, b, bloc);
                let (target, next) = (*target, self.pc() + 1);
                let mut out = Vec::with_capacity(cases.len());
                apply_fork_cases(
                    succ,
                    &cases,
                    limits.track_constraints,
                    |s, result| {
                        s.set_pc(if result { target } else { next });
                    },
                    &mut out,
                );
                out
            }
            Instr::Jmp { target } => {
                succ.set_pc(*target);
                vec![succ]
            }
            Instr::Jal { target } => {
                succ.set_reg(sympl_asm::LINK_REG, Value::Int(self.pc() as i64 + 1));
                succ.set_pc(*target);
                vec![succ]
            }
            Instr::Jr { rs } => match self.reg(*rs) {
                Value::Int(v) => {
                    if v >= 0 && (v as usize) < program.len() {
                        succ.set_pc(v as usize);
                        vec![succ]
                    } else {
                        succ.set_status(Status::Exception(Exception::IllegalInstruction));
                        vec![succ]
                    }
                }
                Value::Err => {
                    let mut out = Vec::new();
                    fork_jump_targets(succ, *rs, program.len(), limits, &mut out);
                    out
                }
            },
            Instr::Load { rt, rs, offset } => match self.reg(*rs) {
                Value::Int(base) => {
                    let addr = base.wrapping_add(*offset);
                    match u64::try_from(addr)
                        .ok()
                        .and_then(|a| self.mem(a).map(|v| (a, v)))
                    {
                        Some((a, v)) => {
                            succ.copy_reg_with_constraints(*rt, v, Location::Mem(a));
                            succ.set_pc(self.pc() + 1);
                            vec![succ]
                        }
                        None => {
                            succ.set_status(Status::Exception(Exception::IllegalAddress));
                            vec![succ]
                        }
                    }
                }
                Value::Err => {
                    let mut out = Vec::new();
                    fork_load_targets(succ, *rt, *rs, *offset, limits, &mut out);
                    out
                }
            },
            Instr::Store { rt, rs, offset } => match self.reg(*rs) {
                Value::Int(base) => {
                    let addr = base.wrapping_add(*offset);
                    match u64::try_from(addr) {
                        Ok(a) => {
                            let v = self.reg(*rt);
                            succ.copy_mem_with_constraints(a, v, Location::Reg(*rt));
                            succ.set_pc(self.pc() + 1);
                            vec![succ]
                        }
                        Err(_) => {
                            succ.set_status(Status::Exception(Exception::IllegalAddress));
                            vec![succ]
                        }
                    }
                }
                Value::Err => {
                    let mut out = Vec::new();
                    fork_store_targets(succ, *rt, *rs, *offset, limits, &mut out);
                    out
                }
            },
            Instr::Read { rd } => {
                let v = succ.read_input();
                succ.set_reg(*rd, Value::Int(v));
                succ.set_pc(self.pc() + 1);
                vec![succ]
            }
            Instr::Print { rs } => {
                succ.push_output(OutItem::Val(self.reg(*rs)));
                succ.set_pc(self.pc() + 1);
                vec![succ]
            }
            Instr::PrintS { text } => {
                succ.push_output(OutItem::Str(text.clone()));
                succ.set_pc(self.pc() + 1);
                vec![succ]
            }
            Instr::Check { id } => {
                let mut out = Vec::new();
                step_check(succ, *id, detectors, limits.track_constraints, &mut out);
                out
            }
        }
    }

    /// An operand's value, plus the location it was read from when that
    /// location currently holds `err` (for constraint attachment).
    pub(crate) fn operand_value(&self, src: Operand) -> (Value, Option<Location>) {
        match src {
            Operand::Imm(v) => (Value::Int(v), None),
            Operand::Reg(r) => self.reg_with_loc(r),
        }
    }

    pub(crate) fn reg_with_loc(&self, r: Reg) -> (Value, Option<Location>) {
        let v = self.reg(r);
        let loc = if v.is_err() {
            Some(Location::Reg(r))
        } else {
            None
        };
        (v, loc)
    }
}

// ---------------------------------------------------------------------------
// Fork machinery, shared between the AST reference interpreter above and the
// decoded dispatch (`crate::dispatch`). Each function consumes the
// already-bumped successor `succ`; its registers/memory/pc still equal the
// pre-state's (only the step counter differs, and these paths never read
// it), so reading operands from `succ` is equivalent to reading them from
// the pre-state. Keeping one copy of these rules is what guarantees the two
// dispatchers fork identically.
// ---------------------------------------------------------------------------

/// A successor sink: where the shared fork rules append the states they
/// materialise. Implemented by `Vec<MachineState>` (the reference
/// interpreter's return value) and by [`crate::SuccessorBuf`] (the engines'
/// reusable buffer), so each fork case lands directly in the caller's
/// storage instead of round-tripping through an intermediate `Vec`.
pub(crate) trait SuccessorSink {
    /// Appends one successor.
    fn put(&mut self, state: MachineState);
}

impl SuccessorSink for Vec<MachineState> {
    #[inline]
    fn put(&mut self, state: MachineState) {
        self.push(state);
    }
}

/// Division with a symbolic divisor: fork on `isEqual(divisor, 0)`, as in
/// the paper's division equations. The trap case comes first.
pub(crate) fn fork_div_zero(
    succ: MachineState,
    rd: Reg,
    bloc: Option<Location>,
    track_constraints: bool,
    out: &mut impl SuccessorSink,
) {
    let next = succ.pc() + 1;
    // Case 1: divisor == 0 -> div-zero exception.
    let mut trap = succ.clone();
    let feasible = match bloc {
        Some(loc) if track_constraints => {
            let zero_ok = trap.constraints().get(loc).is_none_or(|set| set.allows(0));
            if zero_ok {
                trap.set_location(loc, Value::Int(0));
            }
            zero_ok
        }
        _ => true,
    };
    if feasible {
        trap.set_status(Status::Exception(Exception::DivByZero));
        out.put(trap);
    }
    // Case 2: divisor != 0 -> err result.
    let mut go = succ;
    let feasible = match bloc {
        Some(loc) if track_constraints => go
            .constraints_mut()
            .constrain(loc, sympl_symbolic::Constraint::Ne(0)),
        _ => true,
    };
    if feasible {
        go.set_reg(rd, Value::Err);
        go.set_pc(next);
        out.put(go);
    }
}

/// Materialises comparison fork cases in order, pruning infeasible ones.
/// The last feasible case takes ownership of `succ` instead of cloning it.
pub(crate) fn apply_fork_cases(
    succ: MachineState,
    cases: &[CmpCase],
    track_constraints: bool,
    mut finish: impl FnMut(&mut MachineState, bool),
    out: &mut impl SuccessorSink,
) {
    let last = cases.len() - 1;
    let mut succ = Some(succ);
    for (i, case) in cases.iter().enumerate() {
        let mut s = if i == last {
            succ.take().expect("state consumed only by the last case")
        } else {
            succ.as_ref()
                .expect("state present before last case")
                .clone()
        };
        if !apply_case(&mut s, case, track_constraints) {
            continue;
        }
        finish(&mut s, case.result);
        out.put(s);
    }
}

/// `jr` through an erroneous register: "the program either jumps to an
/// arbitrary (but valid) code location or throws an illegal-instruction
/// exception" (§5.2). Landing at address `t` pins the register to `t`.
pub(crate) fn fork_jump_targets(
    succ: MachineState,
    rs: Reg,
    code_len: usize,
    limits: &ExecLimits,
    out: &mut impl SuccessorSink,
) {
    for t in ExecLimits::spread(limits.fork_jump_targets, code_len) {
        let mut s = succ.clone();
        // The landed-on address is the concrete value the corrupted
        // register must have held.
        s.set_reg(rs, Value::Int(t as i64));
        s.set_pc(t);
        out.put(s);
    }
    // The register held an out-of-range value.
    let mut trap = succ;
    trap.set_status(Status::Exception(Exception::IllegalInstruction));
    out.put(trap);
}

/// Load through an erroneous pointer: fork over every defined word or
/// trap (§5.2 "errors in pointer values of loads").
pub(crate) fn fork_load_targets(
    succ: MachineState,
    rt: Reg,
    rs: Reg,
    offset: i64,
    limits: &ExecLimits,
    out: &mut impl SuccessorSink,
) {
    let next = succ.pc() + 1;
    let addrs: Vec<u64> = succ.defined_addresses().collect();
    for i in ExecLimits::spread(limits.fork_mem_targets, addrs.len()) {
        let a = addrs[i];
        let mut s = succ.clone();
        let v = succ.mem(a).expect("address enumerated from defined set");
        // Reading from `a` pins the base register to `a - offset`.
        s.set_reg(rs, Value::Int((a as i64).wrapping_sub(offset)));
        s.copy_reg_with_constraints(rt, v, Location::Mem(a));
        s.set_pc(next);
        out.put(s);
    }
    let mut trap = succ;
    trap.set_status(Status::Exception(Exception::IllegalAddress));
    out.put(trap);
}

/// Store through an erroneous pointer: overwrite any defined word, or
/// create a new value in memory (§5.2 "errors in pointer values of
/// stores").
pub(crate) fn fork_store_targets(
    succ: MachineState,
    rt: Reg,
    rs: Reg,
    offset: i64,
    limits: &ExecLimits,
    out: &mut impl SuccessorSink,
) {
    let next = succ.pc() + 1;
    let addrs: Vec<u64> = succ.defined_addresses().collect();
    let value = succ.reg(rt);
    for i in ExecLimits::spread(limits.fork_mem_targets, addrs.len()) {
        let a = addrs[i];
        let mut s = succ.clone();
        s.set_reg(rs, Value::Int((a as i64).wrapping_sub(offset)));
        s.copy_mem_with_constraints(a, value, Location::Reg(rt));
        s.set_pc(next);
        out.put(s);
    }
    // "Creates a new value in memory": a store to a previously
    // undefined address.
    let mut fresh = succ;
    let a = fresh.fresh_address();
    fresh.set_reg(rs, Value::Int((a as i64).wrapping_sub(offset)));
    fresh.copy_mem_with_constraints(a, value, Location::Reg(rt));
    fresh.set_pc(next);
    out.put(fresh);
}

/// Executes a `check` instruction (§5.3): evaluate the detector, fork
/// on symbolic comparisons; the false branch *detects* — it throws and
/// halts the program with [`Status::Detected`].
pub(crate) fn step_check(
    succ: MachineState,
    id: u32,
    detectors: &DetectorSet,
    track_constraints: bool,
    out: &mut impl SuccessorSink,
) {
    let Some(det) = detectors.get(id) else {
        // A check referencing a missing detector is a configuration
        // error surfaced as an illegal instruction.
        let mut s = succ;
        s.set_status(Status::Exception(Exception::IllegalInstruction));
        out.put(s);
        return;
    };
    let target = det.target();
    let Some(lhs) = succ.location_value(target) else {
        let mut s = succ;
        s.set_status(Status::Exception(Exception::IllegalAddress));
        out.put(s);
        return;
    };
    let lloc = lhs.is_err().then_some(target);
    let rhs = match eval_expr(det.expr(), &succ) {
        Ok(v) => v,
        Err(DetectError::DivByZero) => {
            let mut s = succ;
            s.set_status(Status::Exception(Exception::DivByZero));
            out.put(s);
            return;
        }
        Err(_) => {
            let mut s = succ;
            s.set_status(Status::Exception(Exception::IllegalAddress));
            out.put(s);
            return;
        }
    };
    let cases = fork_compare(det.cmp(), lhs, lloc, rhs.value, rhs.origin.single());
    let next = succ.pc() + 1;
    apply_fork_cases(
        succ,
        &cases,
        track_constraints,
        |s, result| {
            if result {
                // Check passed: execution continues.
                s.set_pc(next);
            } else {
                // Check failed: the detector throws and halts — detection.
                s.set_status(Status::Detected(id));
            }
        },
        out,
    );
}

/// Applies one fork case's learned facts to a successor state. Returns
/// `false` when the constraints are unsatisfiable (the path is pruned).
/// With `track` disabled (the constraint-solver ablation), nothing is
/// learned and every fork case stays feasible.
fn apply_case(state: &mut MachineState, case: &CmpCase, track: bool) -> bool {
    if !track {
        return true;
    }
    if let Some((loc, constraint)) = case.constraint {
        if !state.constraints_mut().constrain(loc, constraint) {
            return false;
        }
    }
    if let Some((loc, v)) = case.substitute {
        // Equality learning must be consistent with what the path already
        // knows about the location.
        if let Some(set) = state.constraints().get(loc) {
            if !set.allows(v) {
                return false;
            }
        }
        state.set_location(loc, Value::Int(v));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;
    use sympl_detect::Detector;

    fn limits() -> ExecLimits {
        ExecLimits::default()
    }

    fn dets() -> DetectorSet {
        DetectorSet::new()
    }

    /// Run the symbolic executor to completion from `state`, collecting all
    /// terminal states (tiny exhaustive search for tests).
    fn explore(
        program: &Program,
        detectors: &DetectorSet,
        state: MachineState,
    ) -> Vec<MachineState> {
        let lim = limits();
        let mut frontier = vec![state];
        let mut terminal = Vec::new();
        while let Some(s) = frontier.pop() {
            if s.status().is_terminal() {
                terminal.push(s);
                continue;
            }
            frontier.extend(s.step(program, detectors, &lim));
        }
        terminal
    }

    #[test]
    fn straight_line_arithmetic() {
        let p = parse_program("mov $1, 6\nmov $2, 7\nmult $3, $1, $2\nprint $3\nhalt").unwrap();
        let terminal = explore(&p, &dets(), MachineState::new());
        assert_eq!(terminal.len(), 1);
        assert_eq!(terminal[0].status(), &Status::Halted);
        assert_eq!(terminal[0].output_ints(), vec![42]);
    }

    #[test]
    fn branch_on_concrete_value_is_deterministic() {
        let p = parse_program(
            "mov $1, 5\nbeq $1, 5, yes\nprint $0\nhalt\nyes: mov $2, 1\nprint $2\nhalt",
        )
        .unwrap();
        let terminal = explore(&p, &dets(), MachineState::new());
        assert_eq!(terminal.len(), 1);
        assert_eq!(terminal[0].output_ints(), vec![1]);
    }

    #[test]
    fn branch_on_err_forks_both_ways() {
        let p = parse_program("beq $1, 5, yes\nprint $0\nhalt\nyes: mov $2, 1\nprint $2\nhalt")
            .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let terminal = explore(&p, &dets(), s);
        assert_eq!(terminal.len(), 2);
        let outputs: Vec<Vec<i64>> = terminal.iter().map(MachineState::output_ints).collect();
        assert!(outputs.contains(&vec![0]));
        assert!(outputs.contains(&vec![1]));
    }

    #[test]
    fn equality_fork_substitutes_concrete_value() {
        let p = parse_program("beq $1, 5, yes\nhalt\nyes: print $1\nhalt").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let terminal = explore(&p, &dets(), s);
        // In the taken branch $1 must be 5, so the print shows 5, not err.
        let taken = terminal
            .iter()
            .find(|t| t.output_values().next().is_some())
            .unwrap();
        assert_eq!(taken.output_ints(), vec![5]);
    }

    #[test]
    fn constraints_keep_later_comparisons_consistent() {
        // $1 = err; if ($1 > 10) { if ($1 <= 10) { print 999 } }
        // The inner branch contradicts the outer: 999 must be unreachable.
        let p = parse_program(
            "setgt $2, $1, 10\nbeq $2, 0, out\nsetle $3, $1, 10\nbeq $3, 0, out\nmov $4, 999\nprint $4\nout: halt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let terminal = explore(&p, &dets(), s);
        assert!(
            terminal.iter().all(|t| !t.output_ints().contains(&999)),
            "contradictory path must be pruned by the constraint solver"
        );
    }

    #[test]
    fn division_by_symbolic_divisor_forks_trap_and_err() {
        let p = parse_program("div $2, $3, $1\nprint $2\nhalt").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        s.set_reg(Reg::r(3), Value::Int(10));
        let terminal = explore(&p, &dets(), s);
        assert_eq!(terminal.len(), 2);
        assert!(terminal
            .iter()
            .any(|t| t.status() == &Status::Exception(Exception::DivByZero)));
        assert!(terminal
            .iter()
            .any(|t| t.status() == &Status::Halted && t.output_contains_err()));
    }

    #[test]
    fn concrete_division_by_zero_traps() {
        let p = parse_program("mov $1, 0\ndiv $2, $3, $1\nhalt").unwrap();
        let terminal = explore(&p, &dets(), MachineState::new());
        assert_eq!(
            terminal[0].status(),
            &Status::Exception(Exception::DivByZero)
        );
    }

    #[test]
    fn jr_on_err_forks_over_all_code_locations() {
        let p = parse_program("jr $31\nmov $1, 1\nprint $1\nhalt").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(31), Value::Err);
        let succ = s.step(&p, &dets(), &limits());
        // 4 instructions + 1 illegal-instruction case.
        assert_eq!(succ.len(), 5);
        let trap_count = succ
            .iter()
            .filter(|t| t.status() == &Status::Exception(Exception::IllegalInstruction))
            .count();
        assert_eq!(trap_count, 1);
        // Landing pins the register to the landed address.
        for t in succ.iter().filter(|t| !t.status().is_terminal()) {
            assert_eq!(t.reg(Reg::r(31)), Value::Int(t.pc() as i64));
        }
    }

    #[test]
    fn jr_fanout_respects_cap() {
        let p = parse_program("jr $31\nnop\nnop\nnop\nnop\nnop\nnop\nhalt").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(31), Value::Err);
        let lim = ExecLimits {
            fork_jump_targets: Some(3),
            ..ExecLimits::default()
        };
        let succ = s.step(&p, &dets(), &lim);
        assert_eq!(succ.len(), 4); // 3 targets + trap
    }

    #[test]
    fn jr_concrete_out_of_range_traps() {
        let p = parse_program("mov $31, 99\njr $31\nhalt").unwrap();
        let terminal = explore(&p, &dets(), MachineState::new());
        assert_eq!(
            terminal[0].status(),
            &Status::Exception(Exception::IllegalInstruction)
        );
    }

    #[test]
    fn load_from_undefined_memory_traps() {
        let p = parse_program("ld $1, 100($0)\nhalt").unwrap();
        let terminal = explore(&p, &dets(), MachineState::new());
        assert_eq!(
            terminal[0].status(),
            &Status::Exception(Exception::IllegalAddress)
        );
    }

    #[test]
    fn load_through_err_pointer_forks_over_memory() {
        let p = parse_program("ld $1, 0($2)\nprint $1\nhalt").unwrap();
        let mut s = MachineState::new();
        s.load_memory([(8, 11), (16, 22)]);
        s.set_reg(Reg::r(2), Value::Err);
        let succ = s.step(&p, &dets(), &limits());
        assert_eq!(succ.len(), 3); // two words + illegal address
        let values: Vec<_> = succ
            .iter()
            .filter(|t| !t.status().is_terminal())
            .map(|t| t.reg(Reg::r(1)))
            .collect();
        assert!(values.contains(&Value::Int(11)));
        assert!(values.contains(&Value::Int(22)));
    }

    #[test]
    fn store_through_err_pointer_can_create_fresh_word() {
        let p = parse_program("mov $1, 77\nst $1, 0($2)\nhalt").unwrap();
        let mut s = MachineState::new();
        s.load_memory([(8, 1)]);
        s.set_reg(Reg::r(2), Value::Err);
        // Step past the mov first.
        let s = s.step(&p, &dets(), &limits()).pop().unwrap();
        let succ = s.step(&p, &dets(), &limits());
        assert_eq!(succ.len(), 2); // overwrite [8] or create fresh [16]
        assert!(succ.iter().any(|t| t.mem(8) == Some(Value::Int(77))));
        assert!(succ.iter().any(|t| t.mem(16) == Some(Value::Int(77))));
    }

    #[test]
    fn watchdog_times_out_infinite_loop() {
        let p = parse_program("loop: jmp loop").unwrap();
        let lim = ExecLimits::with_max_steps(50);
        let mut frontier = vec![MachineState::new()];
        let mut terminal = Vec::new();
        while let Some(s) = frontier.pop() {
            if s.status().is_terminal() {
                terminal.push(s);
                continue;
            }
            frontier.extend(s.step(&p, &dets(), &lim));
        }
        assert_eq!(terminal.len(), 1);
        assert_eq!(terminal[0].status(), &Status::TimedOut);
        assert!(terminal[0].steps() >= 50);
    }

    #[test]
    fn check_passing_and_failing_concretely() {
        let mut detectors = DetectorSet::new();
        detectors.insert(Detector::parse("det(1, $(2), >=, (10))").unwrap());
        let p = parse_program("mov $2, 5\ncheck 1\nhalt").unwrap();
        let terminal = explore(&p, &detectors, MachineState::new());
        assert_eq!(terminal[0].status(), &Status::Detected(1));

        let p2 = parse_program("mov $2, 15\ncheck 1\nhalt").unwrap();
        let terminal2 = explore(&p2, &detectors, MachineState::new());
        assert_eq!(terminal2[0].status(), &Status::Halted);
    }

    #[test]
    fn check_on_err_forks_detected_and_missed() {
        let mut detectors = DetectorSet::new();
        detectors.insert(Detector::parse("det(1, $(2), >=, (10))").unwrap());
        let p = parse_program("check 1\nprint $2\nhalt").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(2), Value::Err);
        let terminal = explore(&p, &detectors, s);
        assert_eq!(terminal.len(), 2);
        let detected = terminal
            .iter()
            .find(|t| t.status() == &Status::Detected(1))
            .expect("one fork detected");
        // The detected branch learned $2 < 10.
        assert!(detected
            .constraints()
            .get(Location::reg(2))
            .is_some_and(|c| c.allows(9) && !c.allows(10)));
        let missed = terminal
            .iter()
            .find(|t| t.status() == &Status::Halted)
            .expect("one fork missed");
        assert!(missed.output_contains_err());
        assert!(missed
            .constraints()
            .get(Location::reg(2))
            .is_some_and(|c| c.allows(10) && !c.allows(9)));
    }

    #[test]
    fn check_with_unknown_detector_traps() {
        let p = parse_program("check 42\nhalt").unwrap();
        let terminal = explore(&p, &dets(), MachineState::new());
        assert_eq!(
            terminal[0].status(),
            &Status::Exception(Exception::IllegalInstruction)
        );
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let p = parse_program("jal f\nprint $1\nhalt\nf: mov $1, 9\njr $31").unwrap();
        let terminal = explore(&p, &dets(), MachineState::new());
        assert_eq!(terminal.len(), 1);
        assert_eq!(terminal[0].output_ints(), vec![9]);
    }

    #[test]
    fn read_and_print_io() {
        let p = parse_program("read $1\nread $2\nadd $3, $1, $2\nprint $3\nhalt").unwrap();
        let terminal = explore(&p, &dets(), MachineState::with_input(vec![30, 12]));
        assert_eq!(terminal[0].output_ints(), vec![42]);
    }

    #[test]
    fn paper_factorial_err_injection_outcomes() {
        // §4.1: error in the loop counter $3 right after the first
        // decrement, with input 5. The true case of the forked loop
        // condition exits and prints the current product (5); the false
        // case keeps looping, propagating err into the product via `mult`,
        // so later exits print err and the deepest path times out — exactly
        // the behaviours the paper walks through.
        let p = parse_program(
            "ori $2 $0 #1\nread $1\nmov $3, $1\nori $4 $0 #1\n\
             loop: setgt $5 $3 $4\nbeq $5 0 exit\nmult $2 $2 $3\nsubi $3 $3 #1\nbeq $0 #0 loop\n\
             exit: prints \"Factorial = \"\nprint $2\nhalt",
        )
        .unwrap();
        let lim = ExecLimits::with_max_steps(300);
        let mut s = MachineState::with_input(vec![5]);
        while s.pc() != 8 {
            let mut succ = s.step(&p, &dets(), &lim);
            assert_eq!(succ.len(), 1);
            s = succ.pop().unwrap();
        }
        s.set_reg(Reg::r(3), Value::Err);
        let mut frontier = vec![s];
        let mut terminal = Vec::new();
        while let Some(t) = frontier.pop() {
            if t.status().is_terminal() {
                terminal.push(t);
                continue;
            }
            frontier.extend(t.step(&p, &dets(), &lim));
        }
        let printed: Vec<i64> = terminal
            .iter()
            .filter(|t| t.status() == &Status::Halted)
            .flat_map(MachineState::output_ints)
            .collect();
        assert!(printed.contains(&5), "printed = {printed:?}");
        assert!(
            terminal.iter().any(MachineState::output_contains_err),
            "some exit must print the propagated err"
        );
        assert!(
            terminal.iter().any(|t| t.status() == &Status::TimedOut),
            "the ever-looping fork must hit the watchdog"
        );
    }
}
