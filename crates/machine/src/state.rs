//! The machine state "soup" (paper §5.1).
//!
//! # State representation
//!
//! A [`MachineState`] is a value type: the symbolic executor clones it at
//! every fork and the model checker fingerprints it for deduplication. Two
//! representation choices keep those hot paths cheap:
//!
//! * **Copy-on-write memory.** The memory image is a [`cow::CowMemory`]: an
//!   `Arc`-shared immutable base map plus a small per-state delta overlay.
//!   Cloning a state bumps a refcount and copies the delta only, so forking
//!   is O(|delta|) instead of O(|memory|); the overlay is folded into a new
//!   base once it outgrows a fixed threshold. Content equality and hashing
//!   operate on the merged view, so structural sharing is invisible to the
//!   search. [`MachineState::memory_shares_storage`] exposes the sharing
//!   for pointer-identity tests.
//! * **Rolling 128-bit fingerprints.** [`MachineState::fingerprint`]
//!   digests the full state term (everything `Eq`/`Hash` observe) into a
//!   16-byte [`Fingerprint`], which is what the `sympl-check` engines store
//!   in their visited sets instead of whole states. The digest is **O(1) at
//!   call time**: each collection-valued component (register file, merged
//!   memory image, output stream, constraint map) maintains a
//!   [`ZobristComponent`] XOR-fold updated on every write, and
//!   `fingerprint()` just mixes the folds with the scalar fields (see
//!   [`crate::fingerprint`] for the scheme).
//!   [`MachineState::fingerprint_from_scratch`] is the O(|state|) reference
//!   recompute the consistency property tests pin the rolling digest to.
//!
//! [`cow::CowMemory`]: crate::cow

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::cow::CowMemory;
use crate::fingerprint::{Fingerprint, Fnv128Hasher, ZobristComponent};
use sympl_asm::{Reg, NUM_REGS};
use sympl_detect::StateView;
use sympl_symbolic::{ConstraintMap, Location, Value};

/// Exceptions the machine can throw (paper §5.1 assumptions and §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Exception {
    /// Instruction fetch from an invalid code address.
    IllegalInstruction,
    /// Load from an undefined memory location or a negative address.
    IllegalAddress,
    /// Division by zero (`div-zero` in the paper's propagation equations).
    DivByZero,
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Exception::IllegalInstruction => "illegal instruction",
            Exception::IllegalAddress => "illegal addr",
            Exception::DivByZero => "div-zero",
        })
    }
}

/// Execution status of a machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Status {
    /// The program is still executing.
    Running,
    /// The program executed `halt` — a normal termination.
    Halted,
    /// An exception was thrown (a *crash* outcome).
    Exception(Exception),
    /// A detector fired: the error was *detected* and the program halted.
    Detected(u32),
    /// The watchdog instruction bound was exceeded (a *hang* outcome,
    /// paper §5.4 "timed out").
    TimedOut,
}

impl Status {
    /// Whether the state is terminal (no further steps possible).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Status::Running)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Running => f.write_str("running"),
            Status::Halted => f.write_str("halted"),
            Status::Exception(e) => write!(f, "exception: {e}"),
            Status::Detected(id) => write!(f, "detected by detector {id}"),
            Status::TimedOut => f.write_str("timed out"),
        }
    }
}

/// One item of the output stream: a printed value or a string literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OutItem {
    /// Output of a `print` instruction.
    Val(Value),
    /// Output of a `prints` instruction.
    Str(Arc<str>),
}

impl fmt::Display for OutItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutItem::Val(v) => write!(f, "{v}"),
            OutItem::Str(s) => f.write_str(s),
        }
    }
}

/// The mutable machine state carried from instruction to instruction.
///
/// Corresponds to the paper's soup `PC(pc) regs(R) mem(M) input(in)
/// output(out)` plus the ConstraintMap of §5.2. States are value types:
/// the symbolic executor clones them at forks, and the model checker hashes
/// them for visited-state deduplication.
///
/// Equality and hashing *include* the executed-instruction counter, exactly
/// as the paper's Maude model carries the watchdog counter in the state
/// term. This is what makes hang detection sound: a looping path revisits
/// structurally identical configurations at ever-higher counts, so the
/// search cannot dedup the cycle away — it runs into the §5.4 instruction
/// bound and reports a timed-out (hang) terminal, as a real execution
/// would behave under a watchdog.
#[derive(Debug, Clone)]
pub struct MachineState {
    pc: usize,
    // The register file is Arc-shared between a state and its forks
    // (copy-on-write, like the memory image): a clone bumps a refcount
    // instead of copying 32 cells, the state term stays small enough to
    // move cheaply through successor buffers and frontier queues, and the
    // first post-fork write of each branch pays the one unsharing copy.
    regs: Arc<[Value; NUM_REGS]>,
    mem: CowMemory,
    input: Arc<[i64]>,
    input_pos: usize,
    // The output stream is Arc-shared like the register file: forks of a
    // state that has already printed share one backing vector until the
    // next `push_output` unshares it, so cloning a deep-in-the-run state
    // never re-copies (or re-allocates) its print history.
    output: Arc<Vec<OutItem>>,
    constraints: ConstraintMap,
    steps: u64,
    status: Status,
    // Rolling-fingerprint caches, maintained by the write paths below (the
    // memory and constraint-map folds live inside CowMemory/ConstraintMap,
    // whose mutators are the only code that sees those writes). All four
    // are pure functions of the observable fields, so they are excluded
    // from the manual Eq/Hash impls and can never make equal states
    // compare unequal.
    reg_digest: ZobristComponent,
    out_digest: ZobristComponent,
    out_errs: u32,
    input_digest: u128,
}

impl MachineState {
    /// A fresh state at PC 0 with zeroed registers, empty memory, and no
    /// input.
    #[must_use]
    pub fn new() -> Self {
        Self::with_input(Vec::new())
    }

    /// A fresh state with the given input stream.
    #[must_use]
    pub fn with_input(input: Vec<i64>) -> Self {
        let input: Arc<[i64]> = input.into();
        MachineState {
            pc: 0,
            regs: Arc::new([Value::Int(0); NUM_REGS]),
            mem: CowMemory::new(),
            input_pos: 0,
            output: Arc::new(Vec::new()),
            constraints: ConstraintMap::new(),
            steps: 0,
            status: Status::Running,
            reg_digest: Self::refold_regs(&[Value::Int(0); NUM_REGS]),
            out_digest: ZobristComponent::new(),
            out_errs: 0,
            input_digest: Self::fold_input(&input),
            input,
        }
    }

    /// The register-file fold of `regs` — the reference the rolling
    /// `reg_digest` tracks write-by-write.
    fn refold_regs(regs: &[Value; NUM_REGS]) -> ZobristComponent {
        ZobristComponent::refold(regs.iter().enumerate())
    }

    /// FNV-128 of the input stream. The stream is immutable after
    /// construction (only the cursor moves), so this is computed once here
    /// and copied on clone.
    fn fold_input(input: &[i64]) -> u128 {
        let mut h = Fnv128Hasher::new();
        input.hash(&mut h);
        h.finish128()
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Sets the program counter (used by the fetch-error model, which moves
    /// the PC to an arbitrary valid code location).
    pub fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
    }

    /// The value of a register ($0 always reads zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> Value {
        if r.is_zero() {
            Value::Int(0)
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes the register cell and rolls the register-file fold: the old
    /// `(index, value)` cell XORs out, the new one XORs in.
    fn write_reg_cell(&mut self, r: Reg, v: Value) {
        let i = r.index();
        let old = self.regs[i];
        if old != v {
            self.reg_digest.update(&i, &old, &v);
            // Unshares the register file on the first write after a fork;
            // a no-op atomic check when this state already owns it.
            Arc::make_mut(&mut self.regs)[i] = v;
        }
    }

    /// Writes a register. Writes to `$0` are discarded; any constraints
    /// recorded for the register are cleared because a fresh value now
    /// occupies it.
    pub fn set_reg(&mut self, r: Reg, v: Value) {
        if r.is_zero() {
            return;
        }
        self.write_reg_cell(r, v);
        self.constraints.clear(Location::Reg(r));
    }

    /// Writes a register *and* carries the constraints of a source
    /// location with it (used by `mov`-style copies of an `err` value,
    /// whose learned facts travel with the value).
    pub fn copy_reg_with_constraints(&mut self, r: Reg, v: Value, from: Location) {
        if r.is_zero() {
            return;
        }
        self.write_reg_cell(r, v);
        if v.is_err() {
            self.constraints.copy(from, Location::Reg(r));
        } else {
            self.constraints.clear(Location::Reg(r));
        }
    }

    /// The value of a memory word, or `None` if undefined.
    #[must_use]
    pub fn mem(&self, addr: u64) -> Option<Value> {
        self.mem.get(addr)
    }

    /// Writes a memory word (stores define locations on first write).
    pub fn set_mem(&mut self, addr: u64, v: Value) {
        self.mem.insert(addr, v);
        self.constraints.clear(Location::Mem(addr));
    }

    /// Writes a memory word carrying constraints from a source location.
    pub fn copy_mem_with_constraints(&mut self, addr: u64, v: Value, from: Location) {
        self.mem.insert(addr, v);
        if v.is_err() {
            self.constraints.copy(from, Location::Mem(addr));
        } else {
            self.constraints.clear(Location::Mem(addr));
        }
    }

    /// Pre-initializes a memory image before execution (the paper's loader
    /// "initializes all locations prior to their first use").
    pub fn load_memory<I: IntoIterator<Item = (u64, i64)>>(&mut self, image: I) {
        for (addr, v) in image {
            self.mem.insert(addr, Value::Int(v));
        }
    }

    /// All defined memory addresses, in order.
    pub fn defined_addresses(&self) -> impl Iterator<Item = u64> + '_ {
        self.mem.iter().map(|(addr, _)| addr)
    }

    /// Number of defined memory words.
    #[must_use]
    pub fn memory_len(&self) -> usize {
        self.mem.len()
    }

    /// One past the largest defined address (0 when memory is empty); the
    /// store-through-corrupt-pointer model writes its "new value in memory"
    /// here.
    #[must_use]
    pub fn fresh_address(&self) -> u64 {
        self.mem.last_addr().map_or(0, |a| a.saturating_add(8))
    }

    /// Reads the next input value (the `read` instruction). Reading past
    /// the end of the stream yields 0, so programs are total in the input.
    pub fn read_input(&mut self) -> i64 {
        let v = self.input.get(self.input_pos).copied().unwrap_or(0);
        self.input_pos += 1;
        v
    }

    /// The full input stream the state was constructed with (immutable
    /// after construction; only the cursor moves).
    #[must_use]
    pub fn input_stream(&self) -> &[i64] {
        &self.input
    }

    /// The input-cursor position: how many values `read` has consumed.
    #[must_use]
    pub fn input_cursor(&self) -> usize {
        self.input_pos
    }

    /// The merged `(address, value)` memory cells in ascending address
    /// order (delta entries shadow base entries; layering is invisible).
    pub fn memory_cells(&self) -> impl Iterator<Item = (u64, Value)> + '_ {
        self.mem.iter()
    }

    /// The value of a [`Location`] (registers always defined; memory may
    /// not be).
    #[must_use]
    pub fn location_value(&self, loc: Location) -> Option<Value> {
        match loc {
            Location::Reg(r) => Some(self.reg(r)),
            Location::Mem(a) => self.mem(a),
        }
    }

    /// Writes a [`Location`] directly (fault injection uses this to plant
    /// the `err` symbol).
    pub fn set_location(&mut self, loc: Location, v: Value) {
        match loc {
            Location::Reg(r) => self.set_reg(r, v),
            Location::Mem(a) => self.set_mem(a, v),
        }
    }

    /// Appends to the output stream. The stream is append-only, so the
    /// rolling output fold only ever inserts the new `(position, item)`
    /// cell, and the err-count cache only ever increments.
    pub fn push_output(&mut self, item: OutItem) {
        self.out_digest.insert(&self.output.len(), &item);
        if matches!(item, OutItem::Val(Value::Err)) {
            self.out_errs += 1;
        }
        // Unshares the stream on the first post-fork print; a no-op
        // refcount check when this state already owns it.
        Arc::make_mut(&mut self.output).push(item);
    }

    /// The output stream so far.
    #[must_use]
    pub fn output(&self) -> &[OutItem] {
        &self.output
    }

    /// The printed *values* (ignoring string literals), for outcome checks.
    /// Allocation-free: terminal predicates run this on every solution
    /// candidate.
    pub fn output_values(&self) -> impl Iterator<Item = Value> + '_ {
        self.output.iter().filter_map(|o| match o {
            OutItem::Val(v) => Some(*v),
            OutItem::Str(_) => None,
        })
    }

    /// The printed values as integers, `err` values dropped;
    /// allocation-free, for the golden-output comparisons on the terminal
    /// hot path (see [`MachineState::output_ints`] for the collected
    /// convenience form).
    pub fn output_ints_iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.output_values().filter_map(Value::as_int)
    }

    /// The printed values as integers, collected for callers that keep or
    /// index the list (reports, decoding, tests). Hot-path predicates use
    /// [`MachineState::output_ints_iter`] instead.
    #[must_use]
    pub fn output_ints(&self) -> Vec<i64> {
        self.output_ints_iter().collect()
    }

    /// Whether any printed value is the `err` symbol — the paper's standard
    /// search predicate `output(S) contains err`. O(1): the err count rolls
    /// forward with every `push_output`.
    #[must_use]
    pub fn output_contains_err(&self) -> bool {
        self.out_errs > 0
    }

    /// The constraint map of the current path.
    #[must_use]
    pub fn constraints(&self) -> &ConstraintMap {
        &self.constraints
    }

    /// Mutable access to the constraint map (fork application).
    pub fn constraints_mut(&mut self) -> &mut ConstraintMap {
        &mut self.constraints
    }

    /// The execution status.
    #[must_use]
    pub fn status(&self) -> &Status {
        &self.status
    }

    /// Sets the execution status (terminal transitions).
    pub fn set_status(&mut self, status: Status) {
        self.status = status;
    }

    /// Number of instructions executed so far (the watchdog counter).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Increments the instruction counter.
    pub fn bump_steps(&mut self) {
        self.steps += 1;
    }

    /// Whether every register and defined memory word is concrete.
    #[must_use]
    pub fn is_fully_concrete(&self) -> bool {
        !self.regs.iter().any(|v| v.is_err()) && !self.mem.iter().any(|(_, v)| v.is_err())
    }

    /// Every location currently holding `err`.
    #[must_use]
    pub fn err_locations(&self) -> Vec<Location> {
        let mut out = Vec::new();
        for (i, v) in self.regs.iter().enumerate() {
            if v.is_err() {
                out.push(Location::reg(i as u8));
            }
        }
        for (a, v) in self.mem.iter() {
            if v.is_err() {
                out.push(Location::Mem(a));
            }
        }
        out
    }

    /// Renders the output stream as a single line.
    #[must_use]
    pub fn rendered_output(&self) -> String {
        self.output.iter().map(ToString::to_string).collect()
    }
}

/// The observable field set of a decoded state, produced by
/// [`crate::codec::decode_state`] and turned into a live [`MachineState`]
/// by [`MachineState::from_decoded`].
pub(crate) struct DecodedState {
    pub(crate) pc: usize,
    pub(crate) regs: [Value; NUM_REGS],
    pub(crate) mem: Vec<(u64, Value)>,
    pub(crate) input: Vec<i64>,
    pub(crate) input_pos: usize,
    pub(crate) output: Vec<OutItem>,
    pub(crate) constraints: ConstraintMap,
    pub(crate) steps: u64,
    pub(crate) status: Status,
}

impl MachineState {
    /// Rebuilds a live state from decoded observable content, **re-deriving
    /// every rolling cache**: the register/output folds and the cached input
    /// digest are refolded here, the memory fold/length grow through
    /// `CowMemory::insert`, and the constraint map arrives from the codec
    /// with its digest and unsat counter already rebuilt. A decoded state is
    /// therefore indistinguishable from one built through the mutators —
    /// its `fingerprint()` equals `fingerprint_from_scratch()` by
    /// construction, which the codec round-trip property tests pin down.
    pub(crate) fn from_decoded(d: DecodedState) -> Self {
        let input: Arc<[i64]> = d.input.into();
        let mut mem = CowMemory::new();
        for (addr, value) in d.mem {
            mem.insert(addr, value);
        }
        let out_errs = d
            .output
            .iter()
            .filter(|o| matches!(o, OutItem::Val(Value::Err)))
            .count() as u32;
        MachineState {
            pc: d.pc,
            reg_digest: Self::refold_regs(&d.regs),
            regs: Arc::new(d.regs),
            mem,
            input_pos: d.input_pos,
            out_digest: ZobristComponent::refold(d.output.iter().enumerate()),
            out_errs,
            output: Arc::new(d.output),
            constraints: d.constraints,
            steps: d.steps,
            status: d.status,
            input_digest: Self::fold_input(&input),
            input,
        }
    }

    /// An approximate in-RAM footprint of this state, in bytes: the struct
    /// itself plus per-entry estimates for the merged memory image, output
    /// stream, input stream, and constraint map.
    ///
    /// O(1) (every count is a cached length) and a **pure function of the
    /// observable content** — a decoded copy of a state reports the same
    /// figure — which is what lets frontier queues budget their in-RAM
    /// window and subtract on pop exactly what they added on push.
    /// Deliberately ignores copy-on-write sharing: a spill budget wants the
    /// worst-case (post-compaction, unshared) footprint, not the transient
    /// shared one.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // BTreeMap node overhead amortizes to roughly one extra word-pair
        // per entry; constraint sets carry an interval plus a small
        // exclusion tree.
        size_of::<Self>()
            // The Arc-shared register file, counted unshared (see above).
            + size_of::<[Value; NUM_REGS]>()
            + self.mem.len() * (size_of::<u64>() + size_of::<Value>() + 16)
            + self.output.len() * size_of::<OutItem>()
            + self.input.len() * size_of::<i64>()
            + self.constraints.len() * 96
    }
}

impl Default for MachineState {
    fn default() -> Self {
        Self::new()
    }
}

// The parallel exploration engine moves states between worker threads and
// shares programs/detector sets by reference across them; every piece of the
// state term is built from owned data or `Arc`s, so these bounds hold by
// construction — this assertion keeps a future field addition (an `Rc`, a
// `RefCell` cache) from silently breaking thread-safety.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MachineState>();
    assert_send_sync::<Fingerprint>();
};

impl PartialEq for MachineState {
    fn eq(&self, other: &Self) -> bool {
        // `steps` included: see the type-level docs on hang soundness.
        self.steps == other.steps
            && self.pc == other.pc
            && self.regs == other.regs
            && self.mem == other.mem
            && self.input == other.input
            && self.input_pos == other.input_pos
            && self.output == other.output
            && self.constraints == other.constraints
            && self.status == other.status
    }
}

impl Eq for MachineState {}

impl Hash for MachineState {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.steps.hash(state);
        self.pc.hash(state);
        self.regs.hash(state);
        self.mem.hash(state);
        self.input.hash(state);
        self.input_pos.hash(state);
        self.output.hash(state);
        self.constraints.hash(state);
        self.status.hash(state);
    }
}

impl MachineState {
    /// A 128-bit digest of the full state term — registers, merged memory
    /// content, constraint map, PC, I/O streams, watchdog counter, status.
    /// Everything [`Eq`]/[`Hash`] observe feeds the digest, so equal states
    /// always fingerprint equal, and the model checker can deduplicate on
    /// 16-byte fingerprints instead of retained whole states.
    ///
    /// **O(1) at call time**: the collection components' rolling
    /// [`ZobristComponent`] folds are maintained on every write, so this
    /// just mixes four cached 128-bit folds, the cached input digest, and
    /// the scalar fields through one fixed-size FNV pass — no register,
    /// memory, output, or constraint-map traversal.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        self.mix_fingerprint(
            self.reg_digest,
            self.mem.digest(),
            self.out_digest,
            self.constraints.digest(),
            self.input_digest,
            self.mem.len(),
        )
    }

    /// The O(|state|) reference digest: recomputes every component fold
    /// from the observable content and mixes it exactly like
    /// [`MachineState::fingerprint`]. The digest-consistency property tests
    /// pin the rolling fingerprint to this after arbitrary mutation, fork,
    /// and compaction sequences; engines never call it.
    #[must_use]
    pub fn fingerprint_from_scratch(&self) -> Fingerprint {
        self.mix_fingerprint(
            Self::refold_regs(&self.regs),
            self.mem.refold_digest(),
            ZobristComponent::refold(self.output.iter().enumerate()),
            self.constraints.refold_digest(),
            Self::fold_input(&self.input),
            // Recounted, not the cached counter: the reference path must
            // catch a desynced length cache, not launder it.
            self.mem.iter().count(),
        )
    }

    /// The shared final mix: component folds are paired with their
    /// collection lengths (an XOR-fold alone is length-blind only across
    /// colliding cell pairs, and the lengths are O(1) anyway), then the
    /// scalars. Both digest paths route through here so they can never
    /// drift apart; the memory length is a parameter because it is itself
    /// a rolling cache the reference path independently recounts.
    fn mix_fingerprint(
        &self,
        regs: ZobristComponent,
        mem: ZobristComponent,
        out: ZobristComponent,
        constraints: ZobristComponent,
        input_digest: u128,
        mem_len: usize,
    ) -> Fingerprint {
        let mut h = Fnv128Hasher::new();
        h.write_u128(regs.value());
        h.write_u128(mem.value());
        h.write_usize(mem_len);
        h.write_u128(out.value());
        h.write_usize(self.output.len());
        h.write_u128(constraints.value());
        h.write_usize(self.constraints.len());
        h.write_u128(input_digest);
        h.write_usize(self.input_pos);
        h.write_usize(self.pc);
        h.write_u64(self.steps);
        self.status.hash(&mut h);
        Fingerprint(h.finish128())
    }

    /// Whether the memory images of `self` and `other` share their base
    /// storage (the structural sharing a clone introduces). A forked state
    /// keeps sharing until enough writes force a compaction, which is the
    /// O(delta)-fork guarantee the pointer-identity tests pin down.
    #[must_use]
    pub fn memory_shares_storage(&self, other: &Self) -> bool {
        self.mem.shares_base_with(&other.mem)
    }

    /// Whether two states coincide in everything *except* the instruction
    /// counter — the structural-identity notion an aggressive deduplication
    /// would use (at the cost of missing hang outcomes; see the type docs).
    #[must_use]
    pub fn same_configuration(&self, other: &Self) -> bool {
        self.pc == other.pc
            && self.regs == other.regs
            && self.mem == other.mem
            && self.input == other.input
            && self.input_pos == other.input_pos
            && self.output == other.output
            && self.constraints == other.constraints
            && self.status == other.status
    }
}

impl StateView for MachineState {
    fn reg_value(&self, reg: Reg) -> Value {
        self.reg(reg)
    }

    fn mem_value(&self, addr: u64) -> Option<Value> {
        self.mem(addr)
    }
}

impl fmt::Display for MachineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pc={} status={} steps={}",
            self.pc, self.status, self.steps
        )?;
        write!(f, "regs:")?;
        for (i, v) in self.regs.iter().enumerate() {
            if *v != Value::Int(0) {
                write!(f, " ${i}={v}")?;
            }
        }
        writeln!(f)?;
        if !self.mem.is_empty() {
            write!(f, "mem:")?;
            for (a, v) in self.mem.iter() {
                write!(f, " [{a}]={v}")?;
            }
            writeln!(f)?;
        }
        if !self.output.is_empty() {
            writeln!(f, "output: {}", self.rendered_output())?;
        }
        if !self.constraints.is_empty() {
            writeln!(f, "constraints: {}", self.constraints)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_semantics() {
        let mut s = MachineState::new();
        s.set_reg(Reg::r(0), Value::Int(99));
        assert_eq!(s.reg(Reg::r(0)), Value::Int(0));
        s.set_reg(Reg::r(5), Value::Int(7));
        assert_eq!(s.reg(Reg::r(5)), Value::Int(7));
    }

    #[test]
    fn register_write_clears_constraints() {
        let mut s = MachineState::new();
        s.set_reg(Reg::r(3), Value::Err);
        assert!(s
            .constraints_mut()
            .constrain(Location::reg(3), sympl_symbolic::Constraint::Gt(0)));
        s.set_reg(Reg::r(3), Value::Int(1));
        assert!(s.constraints().get(Location::reg(3)).is_none());
    }

    #[test]
    fn copy_with_constraints_moves_facts() {
        let mut s = MachineState::new();
        s.set_reg(Reg::r(3), Value::Err);
        let _ = s
            .constraints_mut()
            .constrain(Location::reg(3), sympl_symbolic::Constraint::Ge(5));
        s.copy_reg_with_constraints(Reg::r(6), Value::Err, Location::reg(3));
        assert_eq!(s.constraints().witness(Location::reg(6)), Some(5));
    }

    #[test]
    fn memory_definition_and_fresh_address() {
        let mut s = MachineState::new();
        assert_eq!(s.fresh_address(), 0);
        assert_eq!(s.mem(100), None);
        s.set_mem(100, Value::Int(1));
        assert_eq!(s.mem(100), Some(Value::Int(1)));
        assert_eq!(s.fresh_address(), 108);
        s.load_memory([(4, 2), (8, 3)]);
        assert_eq!(s.memory_len(), 3);
        assert_eq!(s.defined_addresses().collect::<Vec<_>>(), vec![4, 8, 100]);
    }

    #[test]
    fn input_stream_reads_then_zeroes() {
        let mut s = MachineState::with_input(vec![10, 20]);
        assert_eq!(s.read_input(), 10);
        assert_eq!(s.read_input(), 20);
        assert_eq!(s.read_input(), 0);
    }

    #[test]
    fn output_helpers() {
        let mut s = MachineState::new();
        s.push_output(OutItem::Str("Factorial = ".into()));
        s.push_output(OutItem::Val(Value::Int(120)));
        s.push_output(OutItem::Val(Value::Err));
        assert_eq!(
            s.output_values().collect::<Vec<_>>(),
            vec![Value::Int(120), Value::Err]
        );
        assert_eq!(s.output_ints(), vec![120]);
        assert!(s.output_ints_iter().eq([120]));
        assert!(s.output_contains_err());
        assert_eq!(s.rendered_output(), "Factorial = 120err");
    }

    #[test]
    fn equality_includes_step_count() {
        let mut a = MachineState::new();
        let mut b = MachineState::new();
        b.bump_steps();
        b.bump_steps();
        assert_ne!(a, b, "watchdog counter is part of the state term");
        assert!(a.same_configuration(&b));
        a.bump_steps();
        a.bump_steps();
        assert_eq!(a, b);
        a.set_pc(3);
        assert_ne!(a, b);
        assert!(!a.same_configuration(&b));
    }

    #[test]
    fn err_locations_enumerated() {
        let mut s = MachineState::new();
        s.set_reg(Reg::r(4), Value::Err);
        s.set_mem(16, Value::Err);
        s.set_mem(8, Value::Int(1));
        assert_eq!(s.err_locations(), vec![Location::reg(4), Location::Mem(16)]);
        assert!(!s.is_fully_concrete());
    }

    #[test]
    fn status_terminality() {
        assert!(!Status::Running.is_terminal());
        for s in [
            Status::Halted,
            Status::Exception(Exception::DivByZero),
            Status::Detected(1),
            Status::TimedOut,
        ] {
            assert!(s.is_terminal());
        }
    }

    #[test]
    fn location_roundtrip() {
        let mut s = MachineState::new();
        s.set_location(Location::reg(7), Value::Err);
        assert_eq!(s.location_value(Location::reg(7)), Some(Value::Err));
        s.set_location(Location::Mem(40), Value::Int(3));
        assert_eq!(s.location_value(Location::Mem(40)), Some(Value::Int(3)));
        assert_eq!(s.location_value(Location::Mem(48)), None);
    }

    #[test]
    fn clone_shares_memory_storage() {
        // The O(delta) fork guarantee: cloning must NOT deep-copy memory.
        let mut a = MachineState::new();
        a.load_memory((0..200).map(|i| (i * 8, i as i64)));
        let mut b = a.clone();
        assert!(
            a.memory_shares_storage(&b),
            "a fresh clone shares the base image by pointer identity"
        );
        // A handful of writes on the fork stay in its private delta; the
        // base stays shared and the original is untouched.
        b.set_mem(8, Value::Int(999));
        b.set_mem(4096, Value::Int(1));
        assert!(a.memory_shares_storage(&b));
        assert_eq!(a.mem(8), Some(Value::Int(1)));
        assert_eq!(b.mem(8), Some(Value::Int(999)));
        assert_eq!(a.memory_len(), 200);
        assert_eq!(b.memory_len(), 201);
    }

    #[test]
    fn fingerprint_matches_equality() {
        let mut a = MachineState::with_input(vec![1, 2]);
        a.load_memory([(8, 5), (16, 6)]);
        a.set_reg(Reg::r(3), Value::Err);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Same contents built independently (different layering).
        let mut c = MachineState::with_input(vec![1, 2]);
        c.load_memory([(8, 5)]);
        c.load_memory([(16, 6)]);
        c.set_reg(Reg::r(3), Value::Err);
        assert_eq!(a, c);
        assert_eq!(a.fingerprint(), c.fingerprint());
        // Any observable difference moves the fingerprint.
        b.bump_steps();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut d = a.clone();
        d.set_mem(16, Value::Int(7));
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn rolling_fingerprint_matches_from_scratch_after_every_write_kind() {
        let mut s = MachineState::with_input(vec![3, -1]);
        let check = |s: &MachineState, what: &str| {
            assert_eq!(
                s.fingerprint(),
                s.fingerprint_from_scratch(),
                "rolling digest desynced after {what}"
            );
        };
        check(&s, "construction");
        s.set_reg(Reg::r(3), Value::Err);
        check(&s, "set_reg");
        let _ = s
            .constraints_mut()
            .constrain(Location::reg(3), sympl_symbolic::Constraint::Gt(2));
        check(&s, "constrain");
        s.copy_reg_with_constraints(Reg::r(4), Value::Err, Location::reg(3));
        check(&s, "copy_reg_with_constraints");
        s.set_mem(16, Value::Int(7));
        check(&s, "set_mem");
        s.copy_mem_with_constraints(24, Value::Err, Location::reg(4));
        check(&s, "copy_mem_with_constraints");
        s.load_memory([(0, 1), (8, 2), (16, 99)]);
        check(&s, "load_memory overwrite");
        s.set_location(Location::Mem(16), Value::Int(7));
        check(&s, "set_location");
        let _ = s.read_input();
        check(&s, "read_input");
        s.push_output(OutItem::Str("x=".into()));
        s.push_output(OutItem::Val(Value::Err));
        check(&s, "push_output");
        s.bump_steps();
        s.set_pc(5);
        s.set_status(Status::Halted);
        check(&s, "scalars");
        // Forks inherit consistent caches.
        let mut fork = s.clone();
        fork.set_mem(8, Value::Int(5));
        check(&fork, "fork write");
        check(&s, "origin after fork");
    }

    #[test]
    fn fingerprint_is_a_pure_content_function() {
        // Overwriting a cell and writing it back must return the digest to
        // its original value (XOR self-inverse), and same-value rewrites
        // must not move it.
        let mut s = MachineState::new();
        s.set_mem(8, Value::Int(1));
        s.set_reg(Reg::r(2), Value::Int(9));
        let before = s.fingerprint();
        s.set_mem(8, Value::Int(2));
        assert_ne!(s.fingerprint(), before);
        s.set_mem(8, Value::Int(1));
        assert_eq!(s.fingerprint(), before);
        s.set_mem(8, Value::Int(1));
        s.set_reg(Reg::r(2), Value::Int(9));
        assert_eq!(s.fingerprint(), before, "no-op rewrites keep the digest");
    }

    #[test]
    fn display_mentions_key_fields() {
        let mut s = MachineState::with_input(vec![1]);
        s.set_reg(Reg::r(2), Value::Err);
        s.set_mem(8, Value::Int(5));
        s.push_output(OutItem::Val(Value::Int(1)));
        let text = s.to_string();
        assert!(text.contains("pc=0"));
        assert!(text.contains("$2=err"));
        assert!(text.contains("[8]=5"));
        assert!(text.contains("output: 1"));
    }
}
