//! Structurally-shared, copy-on-write memory for [`crate::MachineState`].
//!
//! The exploration engine clones machine states at every fork; with a plain
//! `BTreeMap` memory each clone deep-copies the whole memory image, which
//! makes forking O(|memory|) and dominates every campaign. [`CowMemory`]
//! splits the image into a shared immutable **base** (behind an [`Arc`])
//! and a small private **delta** overlay:
//!
//! * `clone` bumps the base refcount and copies only the delta — O(|delta|).
//! * reads consult the delta first, then the base.
//! * writes go to the delta while the base is shared; when the base is
//!   uniquely owned and the delta is empty they go straight into the base.
//! * once the delta outgrows [`COMPACT_THRESHOLD`] it is folded into a new
//!   base, so lookups stay O(log n) with a bounded overlay.
//!
//! Equality, ordering-sensitive iteration, and hashing all operate on the
//! *merged* content, so two memories with the same contents are
//! indistinguishable regardless of how their base/delta layers happen to be
//! split — the property the model checker's fingerprint dedup relies on.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use sympl_symbolic::{Value, ZobristComponent};

/// Delta entries tolerated before folding into a fresh base. Chosen so a
/// typical fork burst (a handful of writes per forked successor) never
/// compacts, while a long-running concrete path cannot accumulate an
/// unbounded overlay.
const COMPACT_THRESHOLD: usize = 64;

/// A copy-on-write map from memory addresses to values.
#[derive(Debug, Clone, Default)]
pub(crate) struct CowMemory {
    base: Arc<BTreeMap<u64, Value>>,
    delta: BTreeMap<u64, Value>,
    // Merged-view caches, maintained by `insert` (`compact` preserves
    // content, so it never touches them): the number of defined addresses,
    // which `len`/`Hash`/`PartialEq` would otherwise recount by scanning the
    // delta against the base, and the rolling XOR-fold over `(addr, value)`
    // cells that the state fingerprint mixes in instead of re-hashing the
    // whole image. Both are functions of the merged content, so layering
    // stays invisible.
    len: usize,
    digest: ZobristComponent,
}

impl CowMemory {
    /// An empty memory.
    pub(crate) fn new() -> Self {
        CowMemory::default()
    }

    /// The value at `addr`, if defined.
    pub(crate) fn get(&self, addr: u64) -> Option<Value> {
        self.delta
            .get(&addr)
            .or_else(|| self.base.get(&addr))
            .copied()
    }

    /// Defines or overwrites `addr`.
    pub(crate) fn insert(&mut self, addr: u64, value: Value) {
        if self.delta.is_empty() {
            // Unique owner with no overlay: write in place, no copy and a
            // single tree traversal — the displaced value tells the
            // len/digest caches what changed.
            if let Some(base) = Arc::get_mut(&mut self.base) {
                match base.insert(addr, value) {
                    Some(old) if old == value => {}
                    Some(old) => self.digest.update(&addr, &old, &value),
                    None => {
                        self.len += 1;
                        self.digest.insert(&addr, &value);
                    }
                }
                return;
            }
        }
        match self.get(addr) {
            // Rewriting a cell with its current *merged* value leaves the
            // content — the only thing reads, equality, hashing, and the
            // digest observe — untouched; skip the write entirely rather
            // than grow the delta with a shadowing copy.
            Some(old) if old == value => return,
            Some(old) => self.digest.update(&addr, &old, &value),
            None => {
                self.len += 1;
                self.digest.insert(&addr, &value);
            }
        }
        self.delta.insert(addr, value);
        if self.delta.len() >= COMPACT_THRESHOLD {
            self.compact();
        }
    }

    /// Folds the delta into the base — in place when the base is uniquely
    /// owned, otherwise into a freshly cloned one. Merged content is
    /// preserved, so the `len`/`digest` caches are untouched.
    fn compact(&mut self) {
        if let Some(base) = Arc::get_mut(&mut self.base) {
            base.extend(std::mem::take(&mut self.delta));
            return;
        }
        let mut merged = (*self.base).clone();
        merged.extend(std::mem::take(&mut self.delta));
        self.base = Arc::new(merged);
    }

    /// Number of defined addresses. O(1): maintained by `insert` instead of
    /// rescanning the delta against the base per call.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether no address is defined.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The rolling XOR-fold over the merged image's `(addr, value)` cells.
    /// O(1); the state fingerprint mixes this in instead of walking memory.
    pub(crate) fn digest(&self) -> ZobristComponent {
        self.digest
    }

    /// A from-scratch recompute of [`CowMemory::digest`] over the merged
    /// view — O(|memory|), for consistency tests and the reference
    /// fingerprint path only.
    pub(crate) fn refold_digest(&self) -> ZobristComponent {
        ZobristComponent::refold(self.iter())
    }

    /// The largest defined address, if any.
    pub(crate) fn last_addr(&self) -> Option<u64> {
        match (self.base.keys().next_back(), self.delta.keys().next_back()) {
            (Some(&b), Some(&d)) => Some(b.max(d)),
            (Some(&b), None) => Some(b),
            (None, Some(&d)) => Some(d),
            (None, None) => None,
        }
    }

    /// Merged `(address, value)` pairs in ascending address order; delta
    /// entries shadow base entries.
    pub(crate) fn iter(&self) -> MergedIter<'_> {
        MergedIter {
            base: self.base.iter().peekable(),
            delta: self.delta.iter().peekable(),
        }
    }

    /// Whether `self` and `other` share the same base storage (structural
    /// sharing introduced by `clone`). Used by the pointer-identity tests
    /// that pin down the O(delta) fork guarantee.
    pub(crate) fn shares_base_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.base, &other.base)
    }

    /// Delta-overlay size (tests only).
    #[cfg(test)]
    pub(crate) fn delta_len(&self) -> usize {
        self.delta.len()
    }
}

/// Merge-join over the base and delta layers.
pub(crate) struct MergedIter<'a> {
    base: std::iter::Peekable<std::collections::btree_map::Iter<'a, u64, Value>>,
    delta: std::iter::Peekable<std::collections::btree_map::Iter<'a, u64, Value>>,
}

impl Iterator for MergedIter<'_> {
    type Item = (u64, Value);

    fn next(&mut self) -> Option<(u64, Value)> {
        match (self.base.peek(), self.delta.peek()) {
            (Some(&(&ba, &bv)), Some(&(&da, &dv))) => {
                if ba < da {
                    self.base.next();
                    Some((ba, bv))
                } else {
                    if ba == da {
                        self.base.next(); // shadowed by the delta
                    }
                    self.delta.next();
                    Some((da, dv))
                }
            }
            (Some(&(&ba, &bv)), None) => {
                self.base.next();
                Some((ba, bv))
            }
            (None, Some(&(&da, &dv))) => {
                self.delta.next();
                Some((da, dv))
            }
            (None, None) => None,
        }
    }
}

impl PartialEq for CowMemory {
    fn eq(&self, other: &Self) -> bool {
        // Content equality, independent of the base/delta split.
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for CowMemory {}

impl Hash for CowMemory {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Mirrors BTreeMap's Hash (length prefix, then entries in order) on
        // the merged view, so layout never leaks into the hash.
        state.write_usize(self.len());
        for (addr, value) in self.iter() {
            addr.hash(state);
            value.hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(m: &CowMemory) -> u64 {
        let mut h = DefaultHasher::new();
        m.hash(&mut h);
        h.finish()
    }

    #[test]
    fn reads_see_delta_over_base() {
        let mut a = CowMemory::new();
        a.insert(8, Value::Int(1));
        let mut b = a.clone(); // base now shared
        b.insert(8, Value::Int(2)); // goes to b's delta
        assert_eq!(a.get(8), Some(Value::Int(1)));
        assert_eq!(b.get(8), Some(Value::Int(2)));
        assert!(a.shares_base_with(&b));
    }

    #[test]
    fn equality_and_hash_ignore_layering() {
        let mut flat = CowMemory::new();
        for i in 0..10 {
            flat.insert(i * 8, Value::Int(i as i64));
        }
        // Build the same contents through a clone + delta writes.
        let mut partial = CowMemory::new();
        for i in 0..5 {
            partial.insert(i * 8, Value::Int(i as i64));
        }
        let _pin = partial.clone(); // force sharing so writes go to the delta
        let mut layered = partial.clone();
        for i in 5..10 {
            layered.insert(i * 8, Value::Int(i as i64));
        }
        assert!(layered.delta_len() > 0, "writes must land in the delta");
        assert_eq!(flat, layered);
        assert_eq!(hash_of(&flat), hash_of(&layered));
        assert_eq!(flat.len(), layered.len());
        assert!(flat.iter().eq(layered.iter()));
    }

    #[test]
    fn shadowed_addresses_counted_once() {
        let mut a = CowMemory::new();
        a.insert(8, Value::Int(1));
        a.insert(16, Value::Int(2));
        let _pin = a.clone();
        a.insert(8, Value::Int(3)); // shadows the base entry
        assert_eq!(a.len(), 2);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![(8, Value::Int(3)), (16, Value::Int(2))]
        );
        assert_eq!(a.last_addr(), Some(16));
    }

    #[test]
    fn compaction_folds_delta() {
        let mut a = CowMemory::new();
        a.insert(0, Value::Int(0));
        let _pin = a.clone();
        for i in 0..(COMPACT_THRESHOLD as u64 + 4) {
            a.insert(i, Value::Int(i as i64));
        }
        assert!(
            a.delta_len() < COMPACT_THRESHOLD,
            "delta must have been folded"
        );
        assert_eq!(a.len(), COMPACT_THRESHOLD + 4);
    }

    #[test]
    fn len_and_digest_caches_survive_layering_and_compaction() {
        let mut m = CowMemory::new();
        assert_eq!(m.digest(), m.refold_digest());
        m.insert(8, Value::Int(1));
        let _pin = m.clone(); // force sharing: writes go to the delta
        m.insert(8, Value::Int(2)); // overwrite shadowing the base
        m.insert(8, Value::Int(2)); // same-value rewrite: a no-op
        m.insert(16, Value::Err);
        assert_eq!(m.len(), 2);
        assert_eq!(m.digest(), m.refold_digest());
        // Push through a compaction; content (and caches) must not move.
        let before = m.digest();
        for i in 0..(COMPACT_THRESHOLD as u64 + 4) {
            m.insert(i * 8 + 1000, Value::Int(i as i64));
        }
        assert_eq!(m.digest(), m.refold_digest());
        assert_eq!(m.len(), 2 + COMPACT_THRESHOLD + 4);
        assert_ne!(m.digest(), before);
        // Same contents, different history: digests agree.
        let mut flat = CowMemory::new();
        for (a, v) in m.iter() {
            flat.insert(a, v);
        }
        assert_eq!(flat, m);
        assert_eq!(flat.digest(), m.digest());
    }

    #[test]
    fn unique_owner_writes_in_place() {
        let mut a = CowMemory::new();
        for i in 0..100u64 {
            a.insert(i, Value::Int(1));
        }
        assert_eq!(a.delta_len(), 0, "sole owner never builds a delta");
    }
}
