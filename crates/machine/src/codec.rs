//! A compact, self-describing binary codec for [`MachineState`].
//!
//! [`encode_state`] serializes everything state equality observes —
//! program counter, watchdog counter, status, non-zero registers, the
//! *merged* copy-on-write memory image, I/O streams, and the constraint
//! map — into a varint-packed byte stream; [`decode_state`] rebuilds a
//! live state whose **rolling fingerprint caches are re-derived from the
//! decoded content**, so a decoded state's `fingerprint()` equals its
//! `fingerprint_from_scratch()` (and the original's) by construction.
//!
//! The format rides on the leaf encoders in `sympl_symbolic::codec`
//! (varints, values, locations, constraint sets/maps) and adds the
//! machine-level framing:
//!
//! ```text
//! version:u8  pc:varint  steps:varint  status:tag[payload]
//! regs:   count, (index:u8, value)*            — non-zero cells only
//! mem:    count, first-addr, (addr-delta, value)*  — ascending, delta-coded
//! input:  count, zigzag*, cursor:varint
//! output: count, (0 value | 1 len utf8-bytes)*
//! constraints: sympl_symbolic::codec map encoding
//! ```
//!
//! Every record is length-free and self-delimiting, so states can be
//! concatenated into segment files and decoded back one at a time —
//! exactly what the disk-spilling frontier does ([`decode_state`] returns
//! the bytes consumed). Copy-on-write sharing does not survive a
//! round-trip (the merged image is written flat); that is inherent to
//! spilling and documented at the spill site.
//!
//! This codec is also the stepping stone to cluster-over-network
//! campaigns: a dependency-free wire format for states (and later,
//! reports) until a vendored `serde` exists.

use crate::state::DecodedState;
use crate::{Exception, ExecLimits, MachineState, OutItem, Status};
use sympl_asm::{Reg, NUM_REGS};
use sympl_symbolic::codec::{
    decode_bool, decode_constraint_map, decode_i64, decode_u64, decode_value, encode_bool,
    encode_constraint_map, encode_i64, encode_u64, encode_value,
};
use sympl_symbolic::Value;

pub use sympl_symbolic::CodecError;

/// Codec revision byte; bump on any framing change.
const VERSION: u8 = 1;

const STATUS_RUNNING: u8 = 0;
const STATUS_HALTED: u8 = 1;
const STATUS_EXC_ILLEGAL_INSTR: u8 = 2;
const STATUS_EXC_ILLEGAL_ADDR: u8 = 3;
const STATUS_EXC_DIV_ZERO: u8 = 4;
const STATUS_DETECTED: u8 = 5;
const STATUS_TIMED_OUT: u8 = 6;

const OUT_VAL: u8 = 0;
const OUT_STR: u8 = 1;

/// Appends the full observable content of `state` to `buf`.
pub fn encode_state(state: &MachineState, buf: &mut Vec<u8>) {
    buf.push(VERSION);
    encode_u64(state.pc() as u64, buf);
    encode_u64(state.steps(), buf);
    match state.status() {
        Status::Running => buf.push(STATUS_RUNNING),
        Status::Halted => buf.push(STATUS_HALTED),
        Status::Exception(Exception::IllegalInstruction) => buf.push(STATUS_EXC_ILLEGAL_INSTR),
        Status::Exception(Exception::IllegalAddress) => buf.push(STATUS_EXC_ILLEGAL_ADDR),
        Status::Exception(Exception::DivByZero) => buf.push(STATUS_EXC_DIV_ZERO),
        Status::Detected(id) => {
            buf.push(STATUS_DETECTED);
            encode_u64(u64::from(*id), buf);
        }
        Status::TimedOut => buf.push(STATUS_TIMED_OUT),
    }

    // Non-zero register cells only ($0 is hard-wired and most registers in
    // a forked state are untouched defaults).
    let nonzero: Vec<(u8, Value)> = Reg::all()
        .filter_map(|r| {
            let v = state.reg(r);
            (v != Value::Int(0)).then(|| (u8::from(r), v))
        })
        .collect();
    encode_u64(nonzero.len() as u64, buf);
    for (idx, v) in nonzero {
        buf.push(idx);
        encode_value(v, buf);
    }

    // Merged memory image, ascending addresses delta-coded.
    encode_u64(state.memory_len() as u64, buf);
    let mut prev = 0u64;
    for (i, (addr, value)) in state.memory_cells().enumerate() {
        if i == 0 {
            encode_u64(addr, buf);
        } else {
            encode_u64(addr - prev, buf);
        }
        prev = addr;
        encode_value(value, buf);
    }

    let input = state.input_stream();
    encode_u64(input.len() as u64, buf);
    for &v in input {
        encode_i64(v, buf);
    }
    encode_u64(state.input_cursor() as u64, buf);

    encode_u64(state.output().len() as u64, buf);
    for item in state.output() {
        match item {
            OutItem::Val(v) => {
                buf.push(OUT_VAL);
                encode_value(*v, buf);
            }
            OutItem::Str(s) => {
                buf.push(OUT_STR);
                encode_u64(s.len() as u64, buf);
                buf.extend_from_slice(s.as_bytes());
            }
        }
    }

    encode_constraint_map(state.constraints(), buf);
}

fn decode_usize(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    usize::try_from(decode_u64(bytes, pos)?).map_err(|_| CodecError::Overflow)
}

fn encode_opt_usize(v: Option<usize>, buf: &mut Vec<u8>) {
    match v {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            encode_u64(v as u64, buf);
        }
    }
}

fn decode_opt_usize(bytes: &[u8], pos: &mut usize) -> Result<Option<usize>, CodecError> {
    if decode_bool(bytes, pos)? {
        Ok(Some(decode_usize(bytes, pos)?))
    } else {
        Ok(None)
    }
}

/// Appends the per-path execution bounds (the watchdog and fork fan-out
/// caps) — the machine-level half of a search-limits wire record.
pub fn encode_exec_limits(limits: &ExecLimits, buf: &mut Vec<u8>) {
    encode_u64(limits.max_steps, buf);
    encode_opt_usize(limits.fork_jump_targets, buf);
    encode_opt_usize(limits.fork_mem_targets, buf);
    encode_bool(limits.track_constraints, buf);
}

/// Decodes an [`ExecLimits`] at `*pos`, advancing it.
///
/// # Errors
///
/// Any [`CodecError`] on truncated or malformed bytes.
pub fn decode_exec_limits(bytes: &[u8], pos: &mut usize) -> Result<ExecLimits, CodecError> {
    Ok(ExecLimits {
        max_steps: decode_u64(bytes, pos)?,
        fork_jump_targets: decode_opt_usize(bytes, pos)?,
        fork_mem_targets: decode_opt_usize(bytes, pos)?,
        track_constraints: decode_bool(bytes, pos)?,
    })
}

fn take_byte(bytes: &[u8], pos: &mut usize) -> Result<u8, CodecError> {
    let &b = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
    *pos += 1;
    Ok(b)
}

/// Decodes one state from the front of `bytes`, returning it together with
/// the number of bytes consumed (so concatenated records — spill segments —
/// decode back one at a time).
///
/// The decoded state re-derives every rolling fingerprint cache from the
/// decoded content, so `decoded.fingerprint() ==
/// decoded.fingerprint_from_scratch()` holds by construction, and a
/// round-trip preserves full [`Eq`] with the original.
///
/// # Errors
///
/// Any [`CodecError`] when the buffer is truncated, carries an unknown
/// version or tag, or a count overflows the platform's `usize`.
pub fn decode_state(bytes: &[u8]) -> Result<(MachineState, usize), CodecError> {
    let mut pos = 0usize;
    let version = take_byte(bytes, &mut pos)?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let pc = decode_usize(bytes, &mut pos)?;
    let steps = decode_u64(bytes, &mut pos)?;
    let status = match take_byte(bytes, &mut pos)? {
        STATUS_RUNNING => Status::Running,
        STATUS_HALTED => Status::Halted,
        STATUS_EXC_ILLEGAL_INSTR => Status::Exception(Exception::IllegalInstruction),
        STATUS_EXC_ILLEGAL_ADDR => Status::Exception(Exception::IllegalAddress),
        STATUS_EXC_DIV_ZERO => Status::Exception(Exception::DivByZero),
        STATUS_DETECTED => {
            let id = decode_u64(bytes, &mut pos)?;
            Status::Detected(u32::try_from(id).map_err(|_| CodecError::Overflow)?)
        }
        STATUS_TIMED_OUT => Status::TimedOut,
        tag => {
            return Err(CodecError::BadTag {
                what: "status",
                tag,
            })
        }
    };

    let mut regs = [Value::Int(0); NUM_REGS];
    let n_regs = decode_usize(bytes, &mut pos)?;
    for _ in 0..n_regs {
        let idx = take_byte(bytes, &mut pos)?;
        if usize::from(idx) >= NUM_REGS {
            return Err(CodecError::BadTag {
                what: "register index",
                tag: idx,
            });
        }
        regs[usize::from(idx)] = decode_value(bytes, &mut pos)?;
    }

    let n_mem = decode_usize(bytes, &mut pos)?;
    let mut mem = Vec::with_capacity(n_mem.min(1 << 16));
    let mut addr = 0u64;
    for i in 0..n_mem {
        let delta = decode_u64(bytes, &mut pos)?;
        addr = if i == 0 {
            delta
        } else {
            addr.wrapping_add(delta)
        };
        mem.push((addr, decode_value(bytes, &mut pos)?));
    }

    let n_input = decode_usize(bytes, &mut pos)?;
    let mut input = Vec::with_capacity(n_input.min(1 << 16));
    for _ in 0..n_input {
        input.push(decode_i64(bytes, &mut pos)?);
    }
    let input_pos = decode_usize(bytes, &mut pos)?;

    let n_out = decode_usize(bytes, &mut pos)?;
    let mut output = Vec::with_capacity(n_out.min(1 << 16));
    for _ in 0..n_out {
        match take_byte(bytes, &mut pos)? {
            OUT_VAL => output.push(OutItem::Val(decode_value(bytes, &mut pos)?)),
            OUT_STR => {
                let len = decode_usize(bytes, &mut pos)?;
                let end = pos.checked_add(len).ok_or(CodecError::Overflow)?;
                let slice = bytes.get(pos..end).ok_or(CodecError::UnexpectedEnd)?;
                let s = std::str::from_utf8(slice).map_err(|_| CodecError::BadUtf8)?;
                output.push(OutItem::Str(s.into()));
                pos = end;
            }
            tag => {
                return Err(CodecError::BadTag {
                    what: "output item",
                    tag,
                })
            }
        }
    }

    let constraints = decode_constraint_map(bytes, &mut pos)?;

    let state = MachineState::from_decoded(DecodedState {
        pc,
        regs,
        mem,
        input,
        input_pos,
        output,
        constraints,
        steps,
        status,
    });
    Ok((state, pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_symbolic::{Constraint, Location};

    /// A state exercising every encoded component.
    fn bulky_state() -> MachineState {
        let mut s = MachineState::with_input(vec![3, -1, 0, i64::MAX]);
        let _ = s.read_input();
        s.set_pc(17);
        for _ in 0..5 {
            s.bump_steps();
        }
        s.set_reg(Reg::r(1), Value::Err);
        s.set_reg(Reg::r(7), Value::Int(-42));
        s.set_reg(Reg::r(31), Value::Int(i64::MIN));
        s.load_memory([(0, 1), (8, -9), (4096, 77)]);
        s.set_mem(16, Value::Err);
        let _ = s
            .constraints_mut()
            .constrain(Location::reg(1), Constraint::Gt(0));
        let _ = s
            .constraints_mut()
            .constrain(Location::Mem(16), Constraint::Ne(5));
        s.push_output(OutItem::Str("x = ".into()));
        s.push_output(OutItem::Val(Value::Int(120)));
        s.push_output(OutItem::Val(Value::Err));
        s
    }

    fn roundtrip(s: &MachineState) -> MachineState {
        let mut buf = Vec::new();
        encode_state(s, &mut buf);
        let (decoded, consumed) = decode_state(&buf).expect("well-formed encoding");
        assert_eq!(consumed, buf.len(), "whole record consumed");
        decoded
    }

    #[test]
    fn fresh_and_bulky_states_roundtrip() {
        for s in [MachineState::new(), bulky_state()] {
            let decoded = roundtrip(&s);
            assert_eq!(decoded, s);
            assert_eq!(decoded.fingerprint(), s.fingerprint());
            assert_eq!(
                decoded.fingerprint(),
                decoded.fingerprint_from_scratch(),
                "decoded rolling caches must be rebuilt, not copied"
            );
        }
    }

    #[test]
    fn every_status_roundtrips() {
        for status in [
            Status::Running,
            Status::Halted,
            Status::Exception(Exception::IllegalInstruction),
            Status::Exception(Exception::IllegalAddress),
            Status::Exception(Exception::DivByZero),
            Status::Detected(1234),
            Status::TimedOut,
        ] {
            let mut s = MachineState::new();
            s.set_status(status);
            assert_eq!(roundtrip(&s).status(), &status);
        }
    }

    #[test]
    fn records_are_self_delimiting_in_a_stream() {
        let a = MachineState::new();
        let b = bulky_state();
        let mut buf = Vec::new();
        encode_state(&a, &mut buf);
        encode_state(&b, &mut buf);
        encode_state(&a, &mut buf);
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            let (s, consumed) = decode_state(&buf[pos..]).expect("stream record");
            decoded.push(s);
            pos += consumed;
        }
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0], a);
        assert_eq!(decoded[1], b);
        assert_eq!(decoded[2], a);
    }

    #[test]
    fn cow_layering_is_invisible_to_the_codec() {
        // A forked state with a shared base and a private delta must encode
        // identically to a flat state with the same merged content.
        let mut origin = MachineState::new();
        origin.load_memory((0..40).map(|i| (i * 8, i as i64)));
        let mut fork = origin.clone();
        fork.set_mem(8, Value::Int(999));
        fork.set_mem(4096, Value::Err);
        assert!(fork.memory_shares_storage(&origin));

        let mut flat = MachineState::new();
        flat.load_memory((0..40).map(|i| (i * 8, i as i64)));
        flat.set_mem(8, Value::Int(999));
        flat.set_mem(4096, Value::Err);

        let enc = |s: &MachineState| {
            let mut buf = Vec::new();
            encode_state(s, &mut buf);
            buf
        };
        assert_eq!(enc(&fork), enc(&flat));
        assert_eq!(roundtrip(&fork), flat);
    }

    #[test]
    fn truncation_and_bad_bytes_error_cleanly() {
        let mut buf = Vec::new();
        encode_state(&bulky_state(), &mut buf);
        for cut in [0, 1, 2, buf.len() / 2, buf.len() - 1] {
            assert!(
                decode_state(&buf[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        assert_eq!(decode_state(&[9]).unwrap_err(), CodecError::BadVersion(9));
        // A bad status tag right after the header.
        let bad = [VERSION, 0, 0, 99];
        assert!(matches!(
            decode_state(&bad),
            Err(CodecError::BadTag { what: "status", .. })
        ));
    }

    #[test]
    fn encoding_is_compact() {
        // A fresh state is a handful of bytes, not a struct dump.
        let mut buf = Vec::new();
        encode_state(&MachineState::new(), &mut buf);
        assert!(buf.len() < 16, "fresh state took {} bytes", buf.len());
        // A 512-word memory image stays well under the in-RAM footprint.
        let mut s = MachineState::new();
        s.load_memory((0..512u64).map(|i| (i * 8, i as i64)));
        buf.clear();
        encode_state(&s, &mut buf);
        assert!(
            buf.len() < s.approx_bytes() / 2,
            "{} encoded vs {} in RAM",
            buf.len(),
            s.approx_bytes()
        );
    }

    #[test]
    fn exec_limits_roundtrip() {
        for limits in [
            ExecLimits::default(),
            ExecLimits {
                max_steps: u64::MAX,
                fork_jump_targets: Some(0),
                fork_mem_targets: Some(123_456),
                track_constraints: false,
            },
        ] {
            let mut buf = Vec::new();
            encode_exec_limits(&limits, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_exec_limits(&buf, &mut pos).unwrap(), limits);
            assert_eq!(pos, buf.len());
        }
        assert!(decode_exec_limits(&[], &mut 0).is_err());
    }

    #[test]
    fn approx_bytes_is_content_pure() {
        let s = bulky_state();
        assert_eq!(roundtrip(&s).approx_bytes(), s.approx_bytes());
        assert!(s.approx_bytes() >= std::mem::size_of::<MachineState>());
    }
}
