//! Fast in-place execution of fully concrete states.
//!
//! The symbolic executor clones states at every step so it can fork; for
//! the tens of thousands of runs the SimpleScalar-substitute fault injector
//! performs (paper §6.3, Table 2), that is far too slow. This module
//! executes one state *in place* with purely concrete semantics. Any `err`
//! encountered is an error — concrete execution is only defined on concrete
//! states — which also gives the property tests a cross-check: on concrete
//! states, [`step_concrete`] and [`MachineState::step`] must agree exactly.
//!
//! Dispatch runs over the pre-decoded IR ([`sympl_asm::DecodedProgram`],
//! cached on the program). [`run_concrete`] additionally executes the
//! decoder's fused superinstruction pairs: its intermediate states are
//! unobservable, so collapsing two dispatches into one is safe as long as
//! the watchdog is still consulted between the sub-ops (a timeout mid-pair
//! must leave the state exactly where the unfused loop would). The
//! breakpoint runner stays unfused — it must observe the pc before *every*
//! instruction.

use std::fmt;

use sympl_asm::{DecodedOp, DecodedProgram, Operand, Program, SuperOp};
use sympl_detect::{eval_expr, DetectError, DetectorSet};
use sympl_symbolic::Value;

use crate::{Exception, ExecLimits, MachineState, OutItem, Status};

/// Errors from the concrete executor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConcreteError {
    /// The state contains the symbolic `err` value; concrete semantics are
    /// undefined. Use the symbolic executor instead.
    SymbolicValue {
        /// Program counter at which the `err` was encountered.
        pc: usize,
    },
}

impl fmt::Display for ConcreteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcreteError::SymbolicValue { pc } => {
                write!(
                    f,
                    "symbolic err value encountered at pc {pc} during concrete execution"
                )
            }
        }
    }
}

impl std::error::Error for ConcreteError {}

fn concrete(v: Value, pc: usize) -> Result<i64, ConcreteError> {
    v.as_int().ok_or(ConcreteError::SymbolicValue { pc })
}

fn operand_concrete(state: &MachineState, src: Operand, pc: usize) -> Result<i64, ConcreteError> {
    match src {
        Operand::Imm(v) => Ok(v),
        Operand::Reg(r) => concrete(state.reg(r), pc),
    }
}

/// Executes exactly one instruction in place.
///
/// Terminal states are left untouched. Returns `Ok(())` on success.
///
/// # Errors
///
/// [`ConcreteError::SymbolicValue`] if an operand holds `err`.
pub fn step_concrete(
    state: &mut MachineState,
    program: &Program,
    detectors: &DetectorSet,
    limits: &ExecLimits,
) -> Result<(), ConcreteError> {
    let decoded = program.decoded();
    if state.status().is_terminal() {
        return Ok(());
    }
    if state.steps() >= limits.max_steps {
        state.set_status(Status::TimedOut);
        return Ok(());
    }
    let pc = state.pc();
    let Some(op) = decoded.op(pc) else {
        state.set_status(Status::Exception(Exception::IllegalInstruction));
        return Ok(());
    };
    state.bump_steps();
    exec_op(state, pc, op, decoded, detectors)
}

/// Executes one decoded op. The caller has already checked the terminal
/// status and the watchdog, and bumped the step counter — bump-before-read
/// matters: a `SymbolicValue` error must leave the counter advanced, just
/// as the pre-IR executor did.
fn exec_op(
    state: &mut MachineState,
    pc: usize,
    op: DecodedOp,
    decoded: &DecodedProgram,
    detectors: &DetectorSet,
) -> Result<(), ConcreteError> {
    match op {
        DecodedOp::Nop => state.set_pc(pc + 1),
        DecodedOp::Halt => state.set_status(Status::Halted),
        DecodedOp::MovImm { rd, imm } => {
            state.set_reg(rd, Value::Int(imm));
            state.set_pc(pc + 1);
        }
        DecodedOp::MovReg { rd, rs } => {
            let v = concrete(state.reg(rs), pc)?;
            state.set_reg(rd, Value::Int(v));
            state.set_pc(pc + 1);
        }
        DecodedOp::BinImm { op, rd, rs, imm } => {
            let a = concrete(state.reg(rs), pc)?;
            exec_bin(state, pc, op, rd, a, imm);
        }
        DecodedOp::BinReg { op, rd, rs, rt } => {
            let a = concrete(state.reg(rs), pc)?;
            let b = concrete(state.reg(rt), pc)?;
            exec_bin(state, pc, op, rd, a, b);
        }
        DecodedOp::SetImm { cmp, rd, rs, imm } => {
            let a = concrete(state.reg(rs), pc)?;
            state.set_reg(rd, Value::Int(i64::from(cmp.eval(a, imm))));
            state.set_pc(pc + 1);
        }
        DecodedOp::SetReg { cmp, rd, rs, rt } => {
            let a = concrete(state.reg(rs), pc)?;
            let b = concrete(state.reg(rt), pc)?;
            state.set_reg(rd, Value::Int(i64::from(cmp.eval(a, b))));
            state.set_pc(pc + 1);
        }
        DecodedOp::BranchImm {
            cmp,
            rs,
            imm,
            target,
        } => {
            let a = concrete(state.reg(rs), pc)?;
            state.set_pc(if cmp.eval(a, imm) {
                target as usize
            } else {
                pc + 1
            });
        }
        DecodedOp::BranchReg {
            cmp,
            rs,
            rt,
            target,
        } => {
            let a = concrete(state.reg(rs), pc)?;
            let b = concrete(state.reg(rt), pc)?;
            state.set_pc(if cmp.eval(a, b) {
                target as usize
            } else {
                pc + 1
            });
        }
        DecodedOp::Jmp { target } => state.set_pc(target as usize),
        DecodedOp::Jal { target } => {
            state.set_reg(sympl_asm::LINK_REG, Value::Int(pc as i64 + 1));
            state.set_pc(target as usize);
        }
        DecodedOp::Jr { rs } => {
            let v = concrete(state.reg(rs), pc)?;
            if v >= 0 && (v as usize) < decoded.len() {
                state.set_pc(v as usize);
            } else {
                state.set_status(Status::Exception(Exception::IllegalInstruction));
            }
        }
        DecodedOp::Load { rt, rs, offset } => {
            let base = concrete(state.reg(rs), pc)?;
            exec_load(state, pc, rt, base, offset);
        }
        DecodedOp::Store { rt, rs, offset } => {
            let base = concrete(state.reg(rs), pc)?;
            exec_store(state, pc, rt, base, offset);
        }
        DecodedOp::Read { rd } => {
            let v = state.read_input();
            state.set_reg(rd, Value::Int(v));
            state.set_pc(pc + 1);
        }
        DecodedOp::Print { rs } => {
            let v = state.reg(rs);
            state.push_output(OutItem::Val(v));
            state.set_pc(pc + 1);
        }
        DecodedOp::PrintS { text } => {
            state.push_output(OutItem::Str(decoded.text(text).clone()));
            state.set_pc(pc + 1);
        }
        DecodedOp::Check { id } => {
            let Some(det) = detectors.get(id) else {
                state.set_status(Status::Exception(Exception::IllegalInstruction));
                return Ok(());
            };
            let Some(lhs) = state.location_value(det.target()) else {
                state.set_status(Status::Exception(Exception::IllegalAddress));
                return Ok(());
            };
            let lhs = concrete(lhs, pc)?;
            match eval_expr(det.expr(), state) {
                Ok(out) => {
                    let rhs = concrete(out.value, pc)?;
                    if det.cmp().eval(lhs, rhs) {
                        state.set_pc(pc + 1);
                    } else {
                        state.set_status(Status::Detected(id));
                    }
                }
                Err(DetectError::DivByZero) => {
                    state.set_status(Status::Exception(Exception::DivByZero));
                }
                Err(_) => {
                    state.set_status(Status::Exception(Exception::IllegalAddress));
                }
            }
        }
    }
    Ok(())
}

fn exec_bin(
    state: &mut MachineState,
    pc: usize,
    op: sympl_asm::BinOp,
    rd: sympl_asm::Reg,
    a: i64,
    b: i64,
) {
    match op.apply(a, b) {
        Some(v) => {
            state.set_reg(rd, Value::Int(v));
            state.set_pc(pc + 1);
        }
        None => state.set_status(Status::Exception(Exception::DivByZero)),
    }
}

fn exec_load(state: &mut MachineState, pc: usize, rt: sympl_asm::Reg, base: i64, offset: i64) {
    let addr = base.wrapping_add(offset);
    match u64::try_from(addr).ok().and_then(|a| state.mem(a)) {
        Some(v) => {
            state.set_reg(rt, v);
            state.set_pc(pc + 1);
        }
        None => state.set_status(Status::Exception(Exception::IllegalAddress)),
    }
}

fn exec_store(state: &mut MachineState, pc: usize, rt: sympl_asm::Reg, base: i64, offset: i64) {
    let addr = base.wrapping_add(offset);
    match u64::try_from(addr) {
        Ok(a) => {
            let v = state.reg(rt);
            state.set_mem(a, v);
            state.set_pc(pc + 1);
        }
        Err(_) => state.set_status(Status::Exception(Exception::IllegalAddress)),
    }
}

/// Executes one fused pair. Byte-equivalent to two trips around the
/// unfused loop: each sub-op bumps the step counter before reading its
/// operands, the pair aborts if sub-op 1 went terminal, and the watchdog
/// is consulted between the sub-ops so a mid-pair timeout leaves the state
/// exactly where the unfused loop would.
fn exec_fused(
    state: &mut MachineState,
    pc: usize,
    fused: SuperOp,
    limits: &ExecLimits,
) -> Result<(), ConcreteError> {
    match fused {
        SuperOp::CmpBranch {
            cmp,
            rd,
            rs,
            src,
            bcmp,
            bimm,
            target,
        } => {
            state.bump_steps();
            let a = concrete(state.reg(rs), pc)?;
            let b = operand_concrete(state, src, pc)?;
            state.set_reg(rd, Value::Int(i64::from(cmp.eval(a, b))));
            state.set_pc(pc + 1);
            if state.steps() >= limits.max_steps {
                state.set_status(Status::TimedOut);
                return Ok(());
            }
            state.bump_steps();
            let flag = concrete(state.reg(rd), pc + 1)?;
            state.set_pc(if bcmp.eval(flag, bimm) {
                target as usize
            } else {
                pc + 2
            });
        }
        SuperOp::LoadOp {
            rt,
            rs,
            offset,
            op,
            rd,
            rs2,
            src2,
        } => {
            state.bump_steps();
            let base = concrete(state.reg(rs), pc)?;
            exec_load(state, pc, rt, base, offset);
            if state.status().is_terminal() {
                return Ok(());
            }
            if state.steps() >= limits.max_steps {
                state.set_status(Status::TimedOut);
                return Ok(());
            }
            state.bump_steps();
            let a = concrete(state.reg(rs2), pc + 1)?;
            let b = operand_concrete(state, src2, pc + 1)?;
            exec_bin(state, pc + 1, op, rd, a, b);
        }
        SuperOp::OpStore {
            op,
            rd,
            rs,
            src,
            rt,
            bs,
            offset,
        } => {
            state.bump_steps();
            let a = concrete(state.reg(rs), pc)?;
            let b = operand_concrete(state, src, pc)?;
            exec_bin(state, pc, op, rd, a, b);
            if state.status().is_terminal() {
                return Ok(());
            }
            if state.steps() >= limits.max_steps {
                state.set_status(Status::TimedOut);
                return Ok(());
            }
            state.bump_steps();
            // Both the base and the stored value are read *after* sub-op 1,
            // so a pair fused on either `rt == rd` or `bs == rd` sees the
            // freshly computed result, exactly as the unfused loop would.
            let base = concrete(state.reg(bs), pc + 1)?;
            exec_store(state, pc + 1, rt, base, offset);
        }
    }
    Ok(())
}

/// Runs a concrete state to a terminal status (halt, exception, detection,
/// or watchdog timeout).
///
/// This is the only executor that uses the decoder's fused
/// superinstruction pairs (its intermediate states are unobservable); the
/// fusion table is consulted only on fall-through into the first op of a
/// pair, so jumps into the middle of a pair behave normally.
///
/// # Errors
///
/// [`ConcreteError::SymbolicValue`] if the state stops being concrete.
pub fn run_concrete(
    state: &mut MachineState,
    program: &Program,
    detectors: &DetectorSet,
    limits: &ExecLimits,
) -> Result<(), ConcreteError> {
    let decoded = program.decoded();
    while !state.status().is_terminal() {
        if state.steps() >= limits.max_steps {
            state.set_status(Status::TimedOut);
            return Ok(());
        }
        let pc = state.pc();
        let Some(op) = decoded.op(pc) else {
            state.set_status(Status::Exception(Exception::IllegalInstruction));
            return Ok(());
        };
        if let Some(fused) = decoded.fused_at(pc) {
            exec_fused(state, pc, fused, limits)?;
        } else {
            state.bump_steps();
            exec_op(state, pc, op, decoded, detectors)?;
        }
    }
    Ok(())
}

/// Runs concretely until the instruction at `breakpoint` is *about to
/// execute* for the `occurrence`-th time (1-based), or the program ends.
///
/// Returns `true` if the breakpoint was reached. This implements the
/// paper's §6.2 injection strategy: the error is planted "just before the
/// instruction that uses the register, in order to ensure fault activation".
///
/// # Errors
///
/// [`ConcreteError::SymbolicValue`] if the prefix is not concrete.
pub fn run_concrete_to_breakpoint(
    state: &mut MachineState,
    program: &Program,
    detectors: &DetectorSet,
    limits: &ExecLimits,
    breakpoint: usize,
    occurrence: u32,
) -> Result<bool, ConcreteError> {
    let mut seen = 0u32;
    loop {
        if state.status().is_terminal() {
            return Ok(false);
        }
        if state.pc() == breakpoint {
            seen += 1;
            if seen >= occurrence {
                return Ok(true);
            }
        }
        step_concrete(state, program, detectors, limits)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::{parse_program, Reg};

    fn lim() -> ExecLimits {
        ExecLimits::default()
    }

    #[test]
    fn runs_factorial_concretely() {
        let p = parse_program(
            "ori $2 $0 #1\nread $1\nmov $3, $1\nori $4 $0 #1\n\
             loop: setgt $5 $3 $4\nbeq $5 0 exit\nmult $2 $2 $3\nsubi $3 $3 #1\nbeq $0 #0 loop\n\
             exit: prints \"Factorial = \"\nprint $2\nhalt",
        )
        .unwrap();
        let mut s = MachineState::with_input(vec![5]);
        run_concrete(&mut s, &p, &DetectorSet::new(), &lim()).unwrap();
        assert_eq!(s.status(), &Status::Halted);
        assert_eq!(s.output_ints(), vec![120]);
        assert_eq!(s.rendered_output(), "Factorial = 120");
    }

    #[test]
    fn err_value_is_rejected() {
        let p = parse_program("print $1\nhalt").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        // print itself is fine (prints err), but arithmetic on err fails.
        let p2 = parse_program("addi $2, $1, 1\nhalt").unwrap();
        let e = run_concrete(&mut s, &p2, &DetectorSet::new(), &lim()).unwrap_err();
        assert_eq!(e, ConcreteError::SymbolicValue { pc: 0 });
        let _ = p;
    }

    #[test]
    fn breakpoint_stops_before_execution() {
        let p = parse_program("mov $1, 1\nmov $2, 2\nmov $3, 3\nhalt").unwrap();
        let mut s = MachineState::new();
        let reached =
            run_concrete_to_breakpoint(&mut s, &p, &DetectorSet::new(), &lim(), 2, 1).unwrap();
        assert!(reached);
        assert_eq!(s.pc(), 2);
        assert_eq!(s.reg(Reg::r(2)), Value::Int(2));
        assert_eq!(
            s.reg(Reg::r(3)),
            Value::Int(0),
            "breakpoint instr not yet run"
        );
    }

    #[test]
    fn breakpoint_occurrence_counts_loop_iterations() {
        let p = parse_program("mov $1, 3\nloop: subi $1, $1, 1\nbgt $1, 0, loop\nhalt").unwrap();
        let mut s = MachineState::new();
        let reached =
            run_concrete_to_breakpoint(&mut s, &p, &DetectorSet::new(), &lim(), 1, 3).unwrap();
        assert!(reached);
        assert_eq!(s.reg(Reg::r(1)), Value::Int(1), "two decrements executed");
    }

    #[test]
    fn breakpoint_never_reached_returns_false() {
        let p = parse_program("halt\nnop").unwrap();
        let mut s = MachineState::new();
        let reached =
            run_concrete_to_breakpoint(&mut s, &p, &DetectorSet::new(), &lim(), 1, 1).unwrap();
        assert!(!reached);
        assert_eq!(s.status(), &Status::Halted);
    }

    #[test]
    fn watchdog_timeout() {
        let p = parse_program("loop: jmp loop").unwrap();
        let mut s = MachineState::new();
        run_concrete(
            &mut s,
            &p,
            &DetectorSet::new(),
            &ExecLimits::with_max_steps(25),
        )
        .unwrap();
        assert_eq!(s.status(), &Status::TimedOut);
    }

    #[test]
    fn agrees_with_symbolic_executor_on_concrete_states() {
        // Differential test: run the same program both ways and compare
        // final states field by field.
        let p = parse_program(
            "read $1\nmov $29, 1000\nst $1, 0($29)\nld $2, 0($29)\n\
             setgt $3, $2, 10\nbeq $3, 1, big\naddi $4, $2, 100\njmp out\n\
             big: subi $4, $2, 100\nout: print $4\nhalt",
        )
        .unwrap();
        for input in [0, 5, 10, 11, 100, -50] {
            let detectors = DetectorSet::new();
            let limits = lim();
            // Concrete in place.
            let mut a = MachineState::with_input(vec![input]);
            run_concrete(&mut a, &p, &detectors, &limits).unwrap();
            // Symbolic (must produce exactly one successor per step).
            let mut b = MachineState::with_input(vec![input]);
            while !b.status().is_terminal() {
                let mut succ = b.step(&p, &detectors, &limits);
                assert_eq!(succ.len(), 1, "concrete state must not fork");
                b = succ.pop().unwrap();
            }
            assert_eq!(a, b, "executors disagree on input {input}");
        }
    }

    #[test]
    fn detection_matches_symbolic() {
        use sympl_detect::Detector;
        let mut detectors = DetectorSet::new();
        detectors.insert(Detector::parse("det(7, $(2), <=, (100))").unwrap());
        let p = parse_program("read $2\ncheck 7\nprint $2\nhalt").unwrap();
        let mut ok = MachineState::with_input(vec![50]);
        run_concrete(&mut ok, &p, &detectors, &lim()).unwrap();
        assert_eq!(ok.status(), &Status::Halted);
        let mut caught = MachineState::with_input(vec![500]);
        run_concrete(&mut caught, &p, &detectors, &lim()).unwrap();
        assert_eq!(caught.status(), &Status::Detected(7));
    }
}
