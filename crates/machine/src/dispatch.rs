//! The fast dispatch layer: stepping over the decoded IR into a reusable
//! successor sink.
//!
//! [`MachineState::step`] is the *reference* interpreter — it walks the
//! [`sympl_asm::Instr`] AST and returns a fresh `Vec` of successors, which
//! keeps it independent of the lowering and easy to audit against the
//! paper. The search engines instead call [`MachineState::step_into`],
//! which dispatches over [`DecodedProgram`] ops and appends successors to a
//! caller-owned [`SuccessorBuf`]:
//!
//! * **No per-step `Vec` allocation** — the engine reuses one buffer for
//!   the whole sweep.
//! * **No per-step state clone** — `step_into` consumes the state, so the
//!   common deterministic step mutates it in place and pushes it; only
//!   genuine forks clone, and even then the last fork case takes the moved
//!   state.
//! * **No AST re-matching** — ops are dense `Copy` values with pre-split
//!   operands and pre-resolved targets (see [`sympl_asm::decoded`]).
//!
//! Equivalence with the reference interpreter — same successor *contents*
//! in the same *order* — is load-bearing: fingerprint dedup, witness
//! traces, and outcome counts must not depend on which dispatcher ran. The
//! fork paths are literally shared (`crate::step`'s free functions), and
//! the decoded-vs-AST property suite pins the rest.

use sympl_asm::{DecodedOp, DecodedProgram};
use sympl_detect::DetectorSet;
use sympl_symbolic::{fork_compare, symbolic_binop, ArithOutcome, Location, Value};

use crate::step::{
    apply_fork_cases, fork_div_zero, fork_jump_targets, fork_load_targets, fork_store_targets,
    step_check, SuccessorSink,
};
use crate::{Exception, ExecLimits, MachineState, OutItem, Status};

/// A reusable successor sink for [`MachineState::step_into`].
///
/// Engines keep one per worker and drain it after each expansion; the
/// backing storage (and its capacity) survives across steps, so the fork
/// hot path stops round-tripping the global allocator.
#[derive(Debug, Default)]
pub struct SuccessorBuf {
    items: Vec<MachineState>,
}

impl SuccessorBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        SuccessorBuf::default()
    }

    /// Appends one successor.
    #[inline]
    pub fn push(&mut self, state: MachineState) {
        self.items.push(state);
    }

    /// Number of buffered successors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The buffered successors, in push order.
    #[must_use]
    pub fn as_slice(&self) -> &[MachineState] {
        &self.items
    }

    /// Removes and yields all buffered successors, keeping the capacity.
    pub fn drain(&mut self) -> std::vec::Drain<'_, MachineState> {
        self.items.drain(..)
    }

    /// Drops all buffered successors, keeping the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl Extend<MachineState> for SuccessorBuf {
    fn extend<T: IntoIterator<Item = MachineState>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

impl SuccessorSink for SuccessorBuf {
    #[inline]
    fn put(&mut self, state: MachineState) {
        self.items.push(state);
    }
}

impl MachineState {
    /// Executes one instruction symbolically over the decoded IR, appending
    /// every successor to `out`. Semantically identical to
    /// [`MachineState::step`] — same successors, same order — but consumes
    /// the state (deterministic steps mutate in place, no clone) and sinks
    /// into a reusable buffer (no per-step `Vec`).
    ///
    /// Terminal states append nothing, mirroring `step`'s empty vector.
    pub fn step_into(
        self,
        program: &DecodedProgram,
        detectors: &DetectorSet,
        limits: &ExecLimits,
        out: &mut SuccessorBuf,
    ) {
        if self.status().is_terminal() {
            return;
        }
        // Watchdog: the §5.4 instruction bound.
        if self.steps() >= limits.max_steps {
            let mut s = self;
            s.set_status(Status::TimedOut);
            out.push(s);
            return;
        }
        let pc = self.pc();
        let Some(op) = program.op(pc) else {
            let mut s = self;
            s.set_status(Status::Exception(Exception::IllegalInstruction));
            out.push(s);
            return;
        };

        let mut succ = self;
        succ.bump_steps();

        match op {
            DecodedOp::Nop => {
                succ.set_pc(pc + 1);
                out.push(succ);
            }
            DecodedOp::Halt => {
                succ.set_status(Status::Halted);
                out.push(succ);
            }
            DecodedOp::MovImm { rd, imm } => {
                succ.set_reg(rd, Value::Int(imm));
                succ.set_pc(pc + 1);
                out.push(succ);
            }
            DecodedOp::MovReg { rd, rs } => {
                let v = succ.reg(rs);
                succ.copy_reg_with_constraints(rd, v, Location::Reg(rs));
                succ.set_pc(pc + 1);
                out.push(succ);
            }
            DecodedOp::BinImm { op, rd, rs, imm } => {
                let a = succ.reg(rs);
                step_bin(succ, pc, op, rd, a, Value::Int(imm), None, limits, out);
            }
            DecodedOp::BinReg { op, rd, rs, rt } => {
                let a = succ.reg(rs);
                let (b, bloc) = succ.reg_with_loc(rt);
                step_bin(succ, pc, op, rd, a, b, bloc, limits, out);
            }
            DecodedOp::SetImm { cmp, rd, rs, imm } => {
                let (a, aloc) = succ.reg_with_loc(rs);
                if let Value::Int(x) = a {
                    // Concrete fast path: one case, no constraints learned.
                    succ.set_reg(rd, Value::Int(i64::from(cmp.eval(x, imm))));
                    succ.set_pc(pc + 1);
                    out.push(succ);
                } else {
                    let cases = fork_compare(cmp, a, aloc, Value::Int(imm), None);
                    apply_fork_cases(
                        succ,
                        &cases,
                        limits.track_constraints,
                        |s, result| {
                            s.set_reg(rd, Value::Int(i64::from(result)));
                            s.set_pc(pc + 1);
                        },
                        out,
                    );
                }
            }
            DecodedOp::SetReg { cmp, rd, rs, rt } => {
                let (a, aloc) = succ.reg_with_loc(rs);
                let (b, bloc) = succ.reg_with_loc(rt);
                if let (Value::Int(x), Value::Int(y)) = (a, b) {
                    succ.set_reg(rd, Value::Int(i64::from(cmp.eval(x, y))));
                    succ.set_pc(pc + 1);
                    out.push(succ);
                } else {
                    let cases = fork_compare(cmp, a, aloc, b, bloc);
                    apply_fork_cases(
                        succ,
                        &cases,
                        limits.track_constraints,
                        |s, result| {
                            s.set_reg(rd, Value::Int(i64::from(result)));
                            s.set_pc(pc + 1);
                        },
                        out,
                    );
                }
            }
            DecodedOp::BranchImm {
                cmp,
                rs,
                imm,
                target,
            } => {
                let (a, aloc) = succ.reg_with_loc(rs);
                if let Value::Int(x) = a {
                    succ.set_pc(if cmp.eval(x, imm) {
                        target as usize
                    } else {
                        pc + 1
                    });
                    out.push(succ);
                } else {
                    let cases = fork_compare(cmp, a, aloc, Value::Int(imm), None);
                    apply_fork_cases(
                        succ,
                        &cases,
                        limits.track_constraints,
                        |s, result| {
                            s.set_pc(if result { target as usize } else { pc + 1 });
                        },
                        out,
                    );
                }
            }
            DecodedOp::BranchReg {
                cmp,
                rs,
                rt,
                target,
            } => {
                let (a, aloc) = succ.reg_with_loc(rs);
                let (b, bloc) = succ.reg_with_loc(rt);
                if let (Value::Int(x), Value::Int(y)) = (a, b) {
                    succ.set_pc(if cmp.eval(x, y) {
                        target as usize
                    } else {
                        pc + 1
                    });
                    out.push(succ);
                } else {
                    let cases = fork_compare(cmp, a, aloc, b, bloc);
                    apply_fork_cases(
                        succ,
                        &cases,
                        limits.track_constraints,
                        |s, result| {
                            s.set_pc(if result { target as usize } else { pc + 1 });
                        },
                        out,
                    );
                }
            }
            DecodedOp::Jmp { target } => {
                succ.set_pc(target as usize);
                out.push(succ);
            }
            DecodedOp::Jal { target } => {
                succ.set_reg(sympl_asm::LINK_REG, Value::Int(pc as i64 + 1));
                succ.set_pc(target as usize);
                out.push(succ);
            }
            DecodedOp::Jr { rs } => match succ.reg(rs) {
                Value::Int(v) => {
                    if v >= 0 && (v as usize) < program.len() {
                        succ.set_pc(v as usize);
                    } else {
                        succ.set_status(Status::Exception(Exception::IllegalInstruction));
                    }
                    out.push(succ);
                }
                Value::Err => fork_jump_targets(succ, rs, program.len(), limits, out),
            },
            DecodedOp::Load { rt, rs, offset } => match succ.reg(rs) {
                Value::Int(base) => {
                    let addr = base.wrapping_add(offset);
                    match u64::try_from(addr)
                        .ok()
                        .and_then(|a| succ.mem(a).map(|v| (a, v)))
                    {
                        Some((a, v)) => {
                            succ.copy_reg_with_constraints(rt, v, Location::Mem(a));
                            succ.set_pc(pc + 1);
                        }
                        None => {
                            succ.set_status(Status::Exception(Exception::IllegalAddress));
                        }
                    }
                    out.push(succ);
                }
                Value::Err => fork_load_targets(succ, rt, rs, offset, limits, out),
            },
            DecodedOp::Store { rt, rs, offset } => match succ.reg(rs) {
                Value::Int(base) => {
                    let addr = base.wrapping_add(offset);
                    match u64::try_from(addr) {
                        Ok(a) => {
                            let v = succ.reg(rt);
                            succ.copy_mem_with_constraints(a, v, Location::Reg(rt));
                            succ.set_pc(pc + 1);
                        }
                        Err(_) => {
                            succ.set_status(Status::Exception(Exception::IllegalAddress));
                        }
                    }
                    out.push(succ);
                }
                Value::Err => fork_store_targets(succ, rt, rs, offset, limits, out),
            },
            DecodedOp::Read { rd } => {
                let v = succ.read_input();
                succ.set_reg(rd, Value::Int(v));
                succ.set_pc(pc + 1);
                out.push(succ);
            }
            DecodedOp::Print { rs } => {
                succ.push_output(OutItem::Val(succ.reg(rs)));
                succ.set_pc(pc + 1);
                out.push(succ);
            }
            DecodedOp::PrintS { text } => {
                succ.push_output(OutItem::Str(program.text(text).clone()));
                succ.set_pc(pc + 1);
                out.push(succ);
            }
            DecodedOp::Check { id } => {
                step_check(succ, id, detectors, limits.track_constraints, out);
            }
        }
    }
}

/// Arithmetic over the symbolic domain, shared by the `BinImm`/`BinReg`
/// dispatch arms. Mirrors the AST interpreter's `Instr::Bin` arm exactly.
#[allow(clippy::too_many_arguments)]
fn step_bin(
    mut succ: MachineState,
    pc: usize,
    op: sympl_asm::BinOp,
    rd: sympl_asm::Reg,
    a: Value,
    b: Value,
    bloc: Option<Location>,
    limits: &ExecLimits,
    out: &mut SuccessorBuf,
) {
    match symbolic_binop(op, a, b) {
        ArithOutcome::Value(v) => {
            succ.set_reg(rd, v);
            succ.set_pc(pc + 1);
            out.push(succ);
        }
        ArithOutcome::DivByZero => {
            succ.set_status(Status::Exception(Exception::DivByZero));
            out.push(succ);
        }
        ArithOutcome::ForkOnDivisorZero => {
            fork_div_zero(succ, rd, bloc, limits.track_constraints, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::{parse_program, Program, Reg};

    fn drain(
        state: MachineState,
        program: &Program,
        detectors: &DetectorSet,
        limits: &ExecLimits,
    ) -> Vec<MachineState> {
        let mut buf = SuccessorBuf::new();
        state.step_into(program.decoded(), detectors, limits, &mut buf);
        buf.drain().collect()
    }

    /// Every op kind, stepped by both dispatchers from the same state, must
    /// produce identical successor vectors (full structural equality,
    /// including constraints, digests, and the step counter).
    #[test]
    fn matches_ast_interpreter_per_step() {
        let program = parse_program(
            r#"
            mov $2, 1
            read $1
            mov $3, $1
        loop:
            setgt $5, $3, 1
            beq $5, 0, exit
            mult $2, $2, $3
            subi $3, $3, 1
            jmp loop
        exit:
            prints "Factorial = "
            print $2
            halt
            "#,
        )
        .unwrap();
        let detectors = DetectorSet::new();
        let limits = ExecLimits::with_max_steps(500);

        let mut frontier = vec![MachineState::with_input(vec![4])];
        let mut expanded = 0usize;
        while let Some(s) = frontier.pop() {
            if s.status().is_terminal() {
                continue;
            }
            let reference = s.step(&program, &detectors, &limits);
            let fast = drain(s, &program, &detectors, &limits);
            assert_eq!(reference, fast);
            for (a, b) in reference.iter().zip(&fast) {
                assert_eq!(a.fingerprint(), b.fingerprint());
            }
            frontier.extend(fast);
            expanded += 1;
        }
        assert!(expanded > 20);
    }

    #[test]
    fn symbolic_forks_match_ast_interpreter() {
        let program = parse_program("beq $1, 5, yes\nprint $0\nhalt\nyes: print $1\nhalt").unwrap();
        let detectors = DetectorSet::new();
        let limits = ExecLimits::default();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let reference = s.step(&program, &detectors, &limits);
        let fast = drain(s, &program, &detectors, &limits);
        assert_eq!(reference.len(), 2);
        assert_eq!(reference, fast);
    }

    #[test]
    fn buffer_reuse_keeps_capacity_and_appends() {
        let program = parse_program("nop\nhalt").unwrap();
        let detectors = DetectorSet::new();
        let limits = ExecLimits::default();
        let mut buf = SuccessorBuf::new();
        MachineState::new().step_into(program.decoded(), &detectors, &limits, &mut buf);
        assert_eq!(buf.len(), 1);
        // Appending without draining accumulates (the caller owns policy).
        MachineState::new().step_into(program.decoded(), &detectors, &limits, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.drain().count(), 2);
        assert!(buf.is_empty());
    }

    #[test]
    fn terminal_state_appends_nothing() {
        let program = parse_program("halt").unwrap();
        let mut s = MachineState::new();
        s.set_status(Status::Halted);
        let mut buf = SuccessorBuf::new();
        s.step_into(
            program.decoded(),
            &DetectorSet::new(),
            &ExecLimits::default(),
            &mut buf,
        );
        assert!(buf.is_empty());
    }
}
