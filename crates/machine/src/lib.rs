//! # sympl-machine — the SymPLFIED machine model
//!
//! This crate implements the paper's machine model (§5.1) and the execution
//! half of the error model (§5.2). The central abstraction is
//! [`MachineState`]: the mutable "soup" of processor structures — program
//! counter, register file, memory, input/output streams — plus the
//! ConstraintMap of the symbolic engine. Code is immutable and lives outside
//! the state, exactly as in the paper's Maude specification.
//!
//! Two executors operate on states:
//!
//! * [`MachineState::step`] — the *symbolic* executor. Deterministic
//!   instructions behave like the paper's Maude equations; instructions that
//!   touch an `err` value fork, returning several successor states (Maude's
//!   rewrite rules): comparisons and branches fork into true/false with
//!   learned constraints, `jr` on an erroneous register forks to every valid
//!   code location, and loads/stores through an erroneous pointer fork over
//!   every defined memory word plus the illegal-address case.
//! * [`MachineState::step_into`] — the same symbolic semantics dispatched
//!   over the pre-decoded IR ([`sympl_asm::DecodedProgram`]) into a
//!   reusable [`SuccessorBuf`]; this is the allocation-free hot path the
//!   search engines drive (see the `dispatch` module docs in the source).
//! * [`run_concrete`] / [`step_concrete`] — a fast in-place executor for
//!   fully concrete states (also dispatched over the decoded IR, with
//!   superinstruction fusion in [`run_concrete`]), used by the
//!   SimpleScalar-substitute fault injector and for replaying symbolic
//!   findings with witness values.
//!
//! # Example
//!
//! ```
//! use sympl_asm::parse_program;
//! use sympl_detect::DetectorSet;
//! use sympl_machine::{ExecLimits, MachineState, Status};
//!
//! let program = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt")?;
//! let mut state = MachineState::with_input(vec![41]);
//! let detectors = DetectorSet::new();
//! let limits = ExecLimits::default();
//! sympl_machine::run_concrete(&mut state, &program, &detectors, &limits)?;
//! assert_eq!(state.status(), &Status::Halted);
//! assert_eq!(state.output_ints(), vec![42]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod concrete;
mod cow;
mod dispatch;
mod fingerprint;
mod limits;
mod state;
mod step;

pub use codec::{decode_state, encode_state, CodecError};
pub use concrete::{run_concrete, run_concrete_to_breakpoint, step_concrete, ConcreteError};
pub use dispatch::SuccessorBuf;
pub use fingerprint::{
    cell_hash, Fingerprint, FingerprintBuildHasher, FingerprintSet, Fnv128Hasher, IdentityHasher,
    ZobristComponent,
};
pub use limits::ExecLimits;
pub use state::{Exception, MachineState, OutItem, Status};
