//! Cross-campaign memoization: a fingerprint-keyed store of
//! subtree-outcome summaries.
//!
//! An injection campaign explores thousands of near-identical state
//! spaces: every point shares the error-free prefix before its injection
//! PC, and most post-injection subtrees reconverge onto states an earlier
//! point already swept. The [`MemoStore`] removes that redundancy at the
//! granularity the engines can do it *soundly*: one entry per **whole
//! search**, keyed by the search's complete identity, replayed verbatim
//! on a later identical search.
//!
//! ## Why whole searches, not individual states
//!
//! Per-state subtree summaries are not context-free under fingerprint
//! deduplication: when two paths converge, the shared suffix is counted
//! once *globally*, so "the subtree below state S" depends on which other
//! states the same search already visited. Folding such a summary into a
//! different search would double-count (or drop) shared states and break
//! the campaign's `outcome_digest`. A *whole search from its seed set*,
//! by contrast, is a closed world: its statistics, terminal counts, and
//! solution set are a pure function of (program, detectors, seeds,
//! predicate, limits, engine shape). Per-point searches are exactly the
//! subtrees of a campaign — the seed set is the injected state — so a
//! warm store serves every re-checked point from its recorded summary
//! without expanding a single state.
//!
//! ## Two-level keying
//!
//! * The **store key** ([`memo_key`]) is an FNV-128 digest of the program
//!   listing and the detector set: the identity of the transition system.
//!   It is stamped into the [`SYMO` file header](#file-format); loading a
//!   store against an edited program is refused as
//!   [`MemoError::StaleKey`], which is what makes re-checking
//!   *incremental* — a program edit invalidates the whole store
//!   conservatively instead of mis-serving.
//! * The **probe digest** ([`probe_digest`]) identifies one search within
//!   that system: the encoded predicate, the effective [`SearchLimits`]
//!   (including the frontier policy), the engine's worker count (parallel
//!   searches record race-winning traces, so entries never cross between
//!   engine widths), and the ordered seed fingerprints. Any configuration
//!   change lands on a different digest and conservatively misses.
//!
//! Closure-backed [`Predicate::Custom`] searches have no encodable
//! identity; [`probe_digest`] returns `None` and the engines bypass the
//! store entirely rather than risk serving a wrong entry.
//!
//! ## Soundness gates
//!
//! An entry is sound exactly when the recorded report is a
//! *deterministic function of its probe digest* — a later identical
//! search would have reproduced it bit for bit. That gives each engine
//! its own record rule:
//!
//! * the **sequential** explorer records any report that did not hit its
//!   wall-clock cap. Its traversal is fully deterministic (the published
//!   contract behind `ClusterConfig::point_workers_hint = Some(1)`), so
//!   even a state- or solution-capped report truncates at the same state
//!   on every run; only *where a wall clock fires* is not a function of
//!   the search's identity;
//! * the **parallel** explorer records exhausted reports only — its
//!   truncated results are schedule-dependent, and exhausted ones are the
//!   closed world where scheduling cannot matter.
//!
//! Campaign layers add their own gate
//! (`sympl_cluster::memo_preserves_outcome`) mirroring
//! `split_preserves_outcome`: no wall-clock task budget (the per-point
//! `max_time` would depend on elapsed time) and a pinned single-worker
//! point share (so traces are deterministic). A served report replays the
//! stored `states_explored`, terminal counts, solutions, truncation
//! flags, and frontier peaks verbatim, so a memoized campaign's
//! `outcome_digest` equals the memo-off run's; the saved work is visible
//! only through [`SearchReport::memo_hits`] /
//! [`SearchReport::memo_states_skipped`].
//!
//! ## File format
//!
//! Persistence is the `SYMO` format: the `b"SYMO"` magic, then
//! [`MEMO_VERSION`] and the store key, then digest-protected records
//! sorted by probe digest (byte-identical stores from equal contents).
//! It follows the checkpoint idiom (`SYCP` in `sympl-wire`): strict
//! header, per-record FNV-128 integrity digests, lenient about exactly
//! one truncated trailing record. The normative byte layout lives in
//! **`docs/PROTOCOL.md`** (§3) at the repository root, next to the wire
//! and checkpoint specs.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sympl_asm::Program;
use sympl_detect::DetectorSet;
use sympl_machine::MachineState;
use sympl_symbolic::codec::{decode_bool, decode_u64, encode_bool, encode_u64, CodecError};
use sympl_symbolic::Fnv128Hasher;

use crate::codec::{
    decode_outcome_counts, decode_solution, encode_outcome_counts, encode_predicate,
    encode_search_limits, encode_solution,
};
use crate::{OutcomeCounts, Predicate, SearchLimits, SearchReport, Solution};

/// The four bytes every memo store file opens with.
pub const MEMO_MAGIC: [u8; 4] = *b"SYMO";

/// The store container-format revision.
pub const MEMO_VERSION: u64 = 1;

/// Hard cap on a single store record (matches the wire frame cap).
const MAX_RECORD_LEN: usize = 64 << 20;

/// Lock shards: probes from concurrent point searches land on different
/// mutexes with high probability.
const SHARDS: usize = 16;

/// The FNV-128 digest identifying the transition system a store describes:
/// the program (by its canonical listing) and the detector set (by its
/// round-tripping `Display` form). A store persisted under one key is
/// refused under any other — the conservative invalidation that makes
/// re-checking after a program edit safe.
#[must_use]
pub fn memo_key(program: &Program, detectors: &DetectorSet) -> u128 {
    let mut h = Fnv128Hasher::new();
    let listing = program.listing();
    h.write_usize(listing.len());
    h.write(listing.as_bytes());
    let dets = detectors.to_string();
    h.write_usize(dets.len());
    h.write(dets.as_bytes());
    h.finish128()
}

/// The FNV-128 digest identifying one search within a store's transition
/// system: encoded predicate, effective search limits (with the engine's
/// effective frontier `policy` substituted in), engine worker count, and
/// the ordered seed fingerprints. Returns `None` for closure-backed
/// [`Predicate::Custom`] searches, whose identity cannot be encoded — the
/// engines then bypass the store.
#[must_use]
pub fn probe_digest(
    predicate: &Predicate,
    limits: &SearchLimits,
    policy: crate::FrontierPolicy,
    workers: usize,
    seeds: &[MachineState],
) -> Option<u128> {
    let mut buf = Vec::with_capacity(64);
    encode_predicate(predicate, &mut buf).ok()?;
    let effective = SearchLimits {
        policy,
        ..limits.clone()
    };
    encode_search_limits(&effective, &mut buf);
    encode_u64(workers as u64, &mut buf);
    encode_u64(seeds.len() as u64, &mut buf);
    let mut h = Fnv128Hasher::new();
    h.write(&buf);
    for seed in seeds {
        h.write_u128(seed.fingerprint().0);
    }
    Some(h.finish128())
}

/// The outcome summary of one recorded search: everything needed to
/// replay its [`SearchReport`] without re-expanding the subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeSummary {
    /// States the recorded search expanded.
    pub states_explored: usize,
    /// Successors the recorded search deduplicated away.
    pub duplicate_hits: usize,
    /// Terminal states by outcome class.
    pub terminals: OutcomeCounts,
    /// The predicate-matching terminals, with witness traces.
    pub solutions: Vec<Solution>,
    /// Deepest terminal reached, in execution steps beyond the shallowest
    /// seed — the recorded subtree's depth.
    pub max_depth: u64,
    /// Frontier peak (states) of the recorded search.
    pub peak_frontier_len: usize,
    /// Frontier peak (approximate in-RAM bytes) of the recorded search.
    pub peak_frontier_bytes: usize,
    /// States the recorded search spilled to disk.
    pub spilled_states: usize,
    /// Worker threads of the recording engine (folded into the probe
    /// digest, so an entry only ever serves an engine of the same width).
    pub workers: usize,
    /// Work-steal count of the recording engine (0 when sequential).
    pub steals: usize,
    /// Whether the recorded search drained its frontier. Sequential
    /// searches truncated by a *deterministic* budget (state or solution
    /// cap) are recordable too — same seeds + same limits reproduce the
    /// same truncation — so a summary replays the flag instead of
    /// assuming exhaustion.
    pub exhausted: bool,
    /// Whether the recorded search stopped at its state cap.
    pub hit_state_cap: bool,
    /// Whether the recorded search stopped at its solution cap.
    pub hit_solution_cap: bool,
}

impl SubtreeSummary {
    /// Captures a search's report as a storable summary.
    ///
    /// # Panics
    ///
    /// When the report hit its wall-clock cap — a time-truncated search is
    /// not a deterministic function of its probe digest (the same search
    /// on a slower machine truncates elsewhere) and must never enter the
    /// store. State- and solution-capped reports are fine *for a
    /// deterministic engine*: the engines only call this from paths whose
    /// traversal is reproducible (the sequential explorer for any
    /// non-time-capped report; the parallel explorer for exhausted
    /// reports only).
    #[must_use]
    pub fn from_report(report: &SearchReport, max_depth: u64) -> Self {
        assert!(
            !report.hit_time_cap,
            "time-capped searches are not memoizable; where a wall clock truncates is not \
             a function of the search's identity"
        );
        SubtreeSummary {
            states_explored: report.states_explored,
            duplicate_hits: report.duplicate_hits,
            terminals: report.terminals,
            solutions: report.solutions.clone(),
            max_depth,
            peak_frontier_len: report.peak_frontier_len,
            peak_frontier_bytes: report.peak_frontier_bytes,
            spilled_states: report.spilled_states,
            workers: report.workers,
            steals: report.steals,
            exhausted: report.exhausted,
            hit_state_cap: report.hit_state_cap,
            hit_solution_cap: report.hit_solution_cap,
        }
    }

    /// Replays the summary as a served [`SearchReport`]: every statistic
    /// and truncation flag of the recorded search verbatim, `memo_hits` =
    /// 1, and the whole recorded expansion claimed as skipped work.
    /// Elapsed time and throughput are zero — the serve itself is O(1).
    #[must_use]
    pub fn to_report(&self) -> SearchReport {
        SearchReport {
            solutions: self.solutions.clone(),
            states_explored: self.states_explored,
            terminals: self.terminals,
            duplicate_hits: self.duplicate_hits,
            exhausted: self.exhausted,
            hit_state_cap: self.hit_state_cap,
            hit_solution_cap: self.hit_solution_cap,
            hit_time_cap: false,
            elapsed: std::time::Duration::ZERO,
            states_per_second: 0.0,
            workers: self.workers,
            steals: self.steals,
            peak_frontier_len: self.peak_frontier_len,
            peak_frontier_bytes: self.peak_frontier_bytes,
            spilled_states: self.spilled_states,
            memo_hits: 1,
            memo_states_skipped: self.states_explored,
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        encode_u64(self.states_explored as u64, buf);
        encode_u64(self.duplicate_hits as u64, buf);
        encode_u64(self.max_depth, buf);
        encode_u64(self.peak_frontier_len as u64, buf);
        encode_u64(self.peak_frontier_bytes as u64, buf);
        encode_u64(self.spilled_states as u64, buf);
        encode_u64(self.workers as u64, buf);
        encode_u64(self.steals as u64, buf);
        encode_bool(self.exhausted, buf);
        encode_bool(self.hit_state_cap, buf);
        encode_bool(self.hit_solution_cap, buf);
        encode_outcome_counts(&self.terminals, buf);
        encode_u64(self.solutions.len() as u64, buf);
        for sol in &self.solutions {
            encode_solution(sol, buf);
        }
    }

    fn decode(bytes: &[u8], pos: &mut usize) -> Result<Self, CodecError> {
        let usize_field = |bytes: &[u8], pos: &mut usize| -> Result<usize, CodecError> {
            usize::try_from(decode_u64(bytes, pos)?).map_err(|_| CodecError::Overflow)
        };
        let states_explored = usize_field(bytes, pos)?;
        let duplicate_hits = usize_field(bytes, pos)?;
        let max_depth = decode_u64(bytes, pos)?;
        let peak_frontier_len = usize_field(bytes, pos)?;
        let peak_frontier_bytes = usize_field(bytes, pos)?;
        let spilled_states = usize_field(bytes, pos)?;
        let workers = usize_field(bytes, pos)?;
        let steals = usize_field(bytes, pos)?;
        let exhausted = decode_bool(bytes, pos)?;
        let hit_state_cap = decode_bool(bytes, pos)?;
        let hit_solution_cap = decode_bool(bytes, pos)?;
        let terminals = decode_outcome_counts(bytes, pos)?;
        let n = usize_field(bytes, pos)?;
        let mut solutions = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            solutions.push(decode_solution(bytes, pos)?);
        }
        Ok(SubtreeSummary {
            states_explored,
            duplicate_hits,
            terminals,
            solutions,
            max_depth,
            peak_frontier_len,
            peak_frontier_bytes,
            spilled_states,
            workers,
            steals,
            exhausted,
            hit_state_cap,
            hit_solution_cap,
        })
    }
}

/// A store load/parse failure.
#[derive(Debug)]
pub enum MemoError {
    /// A filesystem error.
    Io(std::io::Error),
    /// The file does not open with [`MEMO_MAGIC`].
    BadMagic([u8; 4]),
    /// The file's container version is not [`MEMO_VERSION`].
    VersionMismatch {
        /// The version this build writes.
        ours: u64,
        /// The version found in the file.
        theirs: u64,
    },
    /// The store was written for a different program/detector set and is
    /// refused rather than mis-served (the incremental-re-checking gate).
    StaleKey {
        /// The key the caller derived from its program + detectors.
        expected: u128,
        /// The key stamped in the file header.
        found: u128,
    },
    /// A complete record failed its digest check or decoded to garbage.
    Corrupt {
        /// Byte offset of the offending record.
        offset: usize,
    },
    /// The header itself is malformed.
    Codec(CodecError),
}

impl fmt::Display for MemoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoError::Io(e) => write!(f, "memo store i/o error: {e}"),
            MemoError::BadMagic(m) => write!(f, "not a memo store (magic {m:02x?})"),
            MemoError::VersionMismatch { ours, theirs } => {
                write!(f, "memo store version {theirs} (this build reads {ours})")
            }
            MemoError::StaleKey { expected, found } => write!(
                f,
                "stale memo store: written for key {found:032x}, this campaign is {expected:032x} \
                 (program or detectors changed)"
            ),
            MemoError::Corrupt { offset } => {
                write!(f, "memo store corrupt at byte offset {offset}")
            }
            MemoError::Codec(e) => write!(f, "memo store header: {e}"),
        }
    }
}

impl std::error::Error for MemoError {}

impl From<CodecError> for MemoError {
    fn from(e: CodecError) -> Self {
        MemoError::Codec(e)
    }
}

impl From<std::io::Error> for MemoError {
    fn from(e: std::io::Error) -> Self {
        MemoError::Io(e)
    }
}

/// A concurrent, sharded map from probe digest to subtree-outcome
/// summary, shared by every engine in a campaign (and, via
/// [`MemoStore::save`] / [`MemoStore::load`], across campaigns).
///
/// Interior mutability throughout: engines hold `&MemoStore` and campaigns
/// share one store across worker threads behind an `Arc`.
#[derive(Debug)]
pub struct MemoStore {
    key: u128,
    shards: [Mutex<HashMap<u128, SubtreeSummary>>; SHARDS],
    hits: AtomicUsize,
    misses: AtomicUsize,
    inserts: AtomicUsize,
    states_skipped: AtomicUsize,
}

impl MemoStore {
    /// An empty store under an explicit key.
    #[must_use]
    pub fn new(key: u128) -> Self {
        MemoStore {
            key,
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            inserts: AtomicUsize::new(0),
            states_skipped: AtomicUsize::new(0),
        }
    }

    /// An empty store keyed for one program + detector set
    /// (see [`memo_key`]).
    #[must_use]
    pub fn for_campaign(program: &Program, detectors: &DetectorSet) -> Self {
        MemoStore::new(memo_key(program, detectors))
    }

    /// The store key (program + detector identity).
    #[must_use]
    pub fn key(&self) -> u128 {
        self.key
    }

    fn shard(&self, digest: u128) -> &Mutex<HashMap<u128, SubtreeSummary>> {
        &self.shards[(digest as usize) % SHARDS]
    }

    /// Serves a search from the store: on a hit, the replayed
    /// [`SearchReport`] (see [`SubtreeSummary::to_report`]); on a miss,
    /// `None`. Both update the hit/miss counters.
    #[must_use]
    pub fn serve(&self, digest: u128) -> Option<SearchReport> {
        let shard = self.shard(digest).lock().expect("memo shard poisoned");
        match shard.get(&digest) {
            Some(summary) => {
                let report = summary.to_report();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.states_skipped
                    .fetch_add(report.memo_states_skipped, Ordering::Relaxed);
                Some(report)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a search's summary under its probe digest.
    /// First writer wins; identical-key re-records are no-ops (the summary
    /// is a pure function of the digest's preimage, so any concurrent
    /// writers carry equal values).
    pub fn record(&self, digest: u128, summary: SubtreeSummary) {
        let mut shard = self.shard(digest).lock().expect("memo shard poisoned");
        if let std::collections::hash_map::Entry::Vacant(slot) = shard.entry(digest) {
            slot.insert(summary);
            drop(shard);
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries in the store.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Searches answered from the store so far.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that found no entry.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries recorded (first-writer insertions, not re-records).
    #[must_use]
    pub fn inserts(&self) -> usize {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Total states served without expansion across all hits.
    #[must_use]
    pub fn states_skipped(&self) -> usize {
        self.states_skipped.load(Ordering::Relaxed)
    }

    /// Serializes the store in the `SYMO` format (see the module docs).
    /// Records are sorted by probe digest, so equal contents produce
    /// byte-identical files.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut entries: Vec<(u128, SubtreeSummary)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("memo shard poisoned")
                    .iter()
                    .map(|(d, v)| (*d, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by_key(|(d, _)| *d);
        let mut out = Vec::with_capacity(64 + entries.len() * 64);
        out.extend_from_slice(&MEMO_MAGIC);
        encode_u64(MEMO_VERSION, &mut out);
        encode_u128(self.key, &mut out);
        for (digest, summary) in &entries {
            let mut payload = Vec::with_capacity(64);
            encode_u128(*digest, &mut payload);
            summary.encode(&mut payload);
            encode_u64(payload.len() as u64, &mut out);
            out.extend_from_slice(&payload);
            out.extend_from_slice(&fnv128(&payload).to_le_bytes());
        }
        out
    }

    /// Writes the store to `path` (whole-file rewrite; see
    /// [`MemoStore::to_bytes`]).
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn save(&self, path: &Path) -> Result<(), std::io::Error> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads and parses a store file. See [`MemoStore::parse`].
    ///
    /// # Errors
    ///
    /// [`MemoError::Io`] on filesystem errors, plus everything
    /// [`MemoStore::parse`] refuses.
    pub fn load(path: &Path, expected_key: Option<u128>) -> Result<(MemoStore, bool), MemoError> {
        let bytes = std::fs::read(path)?;
        MemoStore::parse(&bytes, expected_key)
    }

    /// Parses store bytes: strict about the header (magic, version, and —
    /// when `expected_key` is given — the store key) and about corruption
    /// inside complete records; lenient about exactly one truncated
    /// trailing record, which is dropped and flagged in the returned bool.
    ///
    /// # Errors
    ///
    /// [`MemoError::BadMagic`] / [`MemoError::VersionMismatch`] /
    /// [`MemoError::StaleKey`] on a foreign, stale, or mismatched header;
    /// [`MemoError::Corrupt`] when a complete record fails its digest
    /// check or decodes to garbage.
    pub fn parse(bytes: &[u8], expected_key: Option<u128>) -> Result<(MemoStore, bool), MemoError> {
        let mut pos = 0usize;
        let magic: [u8; 4] = bytes
            .get(..4)
            .and_then(|m| m.try_into().ok())
            .ok_or(MemoError::Codec(CodecError::UnexpectedEnd))?;
        if magic != MEMO_MAGIC {
            return Err(MemoError::BadMagic(magic));
        }
        pos += 4;
        let version = decode_u64(bytes, &mut pos)?;
        if version != MEMO_VERSION {
            return Err(MemoError::VersionMismatch {
                ours: MEMO_VERSION,
                theirs: version,
            });
        }
        let key = decode_u128(bytes, &mut pos)?;
        if let Some(expected) = expected_key {
            if key != expected {
                return Err(MemoError::StaleKey {
                    expected,
                    found: key,
                });
            }
        }
        let store = MemoStore::new(key);
        let mut truncated_tail = false;
        while pos < bytes.len() {
            let record_start = pos;
            // A record that cannot even announce its length is a truncated
            // tail, not corruption.
            let Ok(len) = decode_u64(bytes, &mut pos) else {
                truncated_tail = true;
                break;
            };
            let Ok(len) = usize::try_from(len) else {
                return Err(MemoError::Corrupt {
                    offset: record_start,
                });
            };
            if len > MAX_RECORD_LEN {
                return Err(MemoError::Corrupt {
                    offset: record_start,
                });
            }
            let Some(payload) = bytes.get(pos..pos + len) else {
                truncated_tail = true;
                break;
            };
            let Some(digest) = bytes
                .get(pos + len..pos + len + 16)
                .and_then(|d| <[u8; 16]>::try_from(d).ok())
            else {
                truncated_tail = true;
                break;
            };
            if u128::from_le_bytes(digest) != fnv128(payload) {
                return Err(MemoError::Corrupt {
                    offset: record_start,
                });
            }
            let mut p = 0usize;
            let entry = (|| -> Result<(u128, SubtreeSummary), CodecError> {
                let probe = decode_u128(payload, &mut p)?;
                let summary = SubtreeSummary::decode(payload, &mut p)?;
                Ok((probe, summary))
            })();
            match entry {
                Ok((probe, summary)) if p == payload.len() => store.record(probe, summary),
                _ => {
                    return Err(MemoError::Corrupt {
                        offset: record_start,
                    })
                }
            }
            pos += len + 16;
        }
        Ok((store, truncated_tail))
    }
}

fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = Fnv128Hasher::new();
    h.write(bytes);
    h.finish128()
}

/// Appends `v` as two varints, low 64 bits then high.
fn encode_u128(v: u128, buf: &mut Vec<u8>) {
    encode_u64(v as u64, buf);
    encode_u64((v >> 64) as u64, buf);
}

/// Decodes a [`encode_u128`]-encoded value at `*pos`, advancing it.
fn decode_u128(bytes: &[u8], pos: &mut usize) -> Result<u128, CodecError> {
    let lo = decode_u64(bytes, pos)?;
    let hi = decode_u64(bytes, pos)?;
    Ok(u128::from(hi) << 64 | u128::from(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;

    fn summary(states: usize) -> SubtreeSummary {
        SubtreeSummary {
            states_explored: states,
            duplicate_hits: 3,
            terminals: OutcomeCounts {
                halted: 2,
                crashed: 1,
                hung: 0,
                detected: 4,
            },
            solutions: vec![Solution {
                state: MachineState::with_input(vec![1, 2]),
                trace: vec![0, 1, 2],
            }],
            max_depth: 17,
            peak_frontier_len: 9,
            peak_frontier_bytes: 1024,
            spilled_states: 0,
            workers: 1,
            steals: 0,
            exhausted: true,
            hit_state_cap: false,
            hit_solution_cap: false,
        }
    }

    #[test]
    fn store_roundtrips_through_bytes() {
        let store = MemoStore::new(0xFEED_F00D);
        store.record(1, summary(10));
        store.record(2, summary(20));
        store.record(0xFFFF_FFFF_FFFF_FFFF_FFFF, summary(30));
        let bytes = store.to_bytes();
        let (loaded, truncated) = MemoStore::parse(&bytes, Some(0xFEED_F00D)).unwrap();
        assert!(!truncated);
        assert_eq!(loaded.key(), 0xFEED_F00D);
        assert_eq!(loaded.len(), 3);
        let served = loaded.serve(2).unwrap();
        assert_eq!(served.states_explored, 20);
        assert_eq!(served.memo_hits, 1);
        assert_eq!(served.memo_states_skipped, 20);
        assert!(served.exhausted);
        assert_eq!(served.solutions.len(), 1);
        // Deterministic serialization: equal contents, equal bytes.
        assert_eq!(bytes, loaded.to_bytes());
    }

    #[test]
    fn truncation_flags_roundtrip_through_bytes() {
        let store = MemoStore::new(5);
        let mut capped = summary(11);
        capped.exhausted = false;
        capped.hit_state_cap = true;
        store.record(9, capped);
        let (loaded, _) = MemoStore::parse(&store.to_bytes(), Some(5)).unwrap();
        let served = loaded.serve(9).unwrap();
        assert!(!served.exhausted);
        assert!(served.hit_state_cap);
        assert!(!served.hit_solution_cap);
        assert!(!served.hit_time_cap);
    }

    #[test]
    fn stale_keys_and_foreign_files_are_refused() {
        let store = MemoStore::new(7);
        store.record(1, summary(10));
        let bytes = store.to_bytes();
        assert!(matches!(
            MemoStore::parse(&bytes, Some(8)),
            Err(MemoError::StaleKey {
                expected: 8,
                found: 7
            })
        ));
        // No expected key: any header key loads (format-level tooling).
        assert!(MemoStore::parse(&bytes, None).is_ok());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            MemoStore::parse(&wrong, None),
            Err(MemoError::BadMagic(_))
        ));
        let mut header = MEMO_MAGIC.to_vec();
        encode_u64(MEMO_VERSION + 3, &mut header);
        assert!(matches!(
            MemoStore::parse(&header, None),
            Err(MemoError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn truncated_tails_drop_only_the_tail() {
        let store = MemoStore::new(1);
        for d in 0..4u128 {
            store.record(d, summary(10 + d as usize));
        }
        let bytes = store.to_bytes();
        let (loaded, truncated) = MemoStore::parse(&bytes[..bytes.len() - 5], None).unwrap();
        assert!(truncated);
        assert_eq!(loaded.len(), 3);
    }

    #[test]
    fn corrupt_records_are_refused() {
        let store = MemoStore::new(1);
        store.record(1, summary(10));
        store.record(2, summary(20));
        let bytes = store.to_bytes();
        let mut corrupt = bytes.clone();
        let mid = (bytes.len() + 12) / 2; // inside the records region
        corrupt[mid] ^= 0x40;
        match MemoStore::parse(&corrupt, None) {
            Err(MemoError::Corrupt { .. }) => {}
            Ok((loaded, truncated)) => {
                // A flip after the last intact record boundary may read as
                // a truncated tail; intact entries must still load.
                assert!(loaded.len() < 2 || truncated);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn memo_key_tracks_program_and_detectors() {
        let a = parse_program("read $1\nprint $1\nhalt").unwrap();
        let b = parse_program("read $1\nprint $1\nnop\nhalt").unwrap();
        let none = DetectorSet::new();
        let mut some = DetectorSet::new();
        some.insert(sympl_detect::Detector::parse("det(1, $(1), ==, (7))").unwrap());
        assert_eq!(memo_key(&a, &none), memo_key(&a, &none));
        assert_ne!(memo_key(&a, &none), memo_key(&b, &none));
        assert_ne!(memo_key(&a, &none), memo_key(&a, &some));
    }

    #[test]
    fn probe_digest_tracks_the_search_identity() {
        let seeds = vec![MachineState::with_input(vec![1])];
        let limits = SearchLimits::default();
        let base = probe_digest(
            &Predicate::Any,
            &limits,
            crate::FrontierPolicy::Bfs,
            1,
            &seeds,
        )
        .unwrap();
        // Stable across repeated derivation.
        assert_eq!(
            base,
            probe_digest(
                &Predicate::Any,
                &limits,
                crate::FrontierPolicy::Bfs,
                1,
                &seeds
            )
            .unwrap()
        );
        // Every identity component moves the digest.
        let other_pred = probe_digest(
            &Predicate::Crashed,
            &limits,
            crate::FrontierPolicy::Bfs,
            1,
            &seeds,
        )
        .unwrap();
        assert_ne!(base, other_pred);
        let tighter = SearchLimits {
            max_solutions: 3,
            ..SearchLimits::default()
        };
        assert_ne!(
            base,
            probe_digest(
                &Predicate::Any,
                &tighter,
                crate::FrontierPolicy::Bfs,
                1,
                &seeds
            )
            .unwrap()
        );
        assert_ne!(
            base,
            probe_digest(
                &Predicate::Any,
                &limits,
                crate::FrontierPolicy::Dfs,
                1,
                &seeds
            )
            .unwrap()
        );
        assert_ne!(
            base,
            probe_digest(
                &Predicate::Any,
                &limits,
                crate::FrontierPolicy::Bfs,
                2,
                &seeds
            )
            .unwrap()
        );
        let other_seeds = vec![MachineState::with_input(vec![2])];
        assert_ne!(
            base,
            probe_digest(
                &Predicate::Any,
                &limits,
                crate::FrontierPolicy::Bfs,
                1,
                &other_seeds
            )
            .unwrap()
        );
        // Custom predicates have no encodable identity: memo bypassed.
        assert!(probe_digest(
            &Predicate::custom(|_| true),
            &limits,
            crate::FrontierPolicy::Bfs,
            1,
            &seeds
        )
        .is_none());
    }

    #[test]
    fn counters_track_serves_and_records() {
        let store = MemoStore::new(0);
        assert!(store.serve(1).is_none());
        assert_eq!(store.misses(), 1);
        store.record(1, summary(42));
        store.record(1, summary(42)); // re-record: no-op
        assert_eq!(store.inserts(), 1);
        assert_eq!(store.len(), 1);
        let _ = store.serve(1).unwrap();
        assert_eq!(store.hits(), 1);
        assert_eq!(store.states_skipped(), 42);
    }
}
