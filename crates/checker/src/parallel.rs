//! The work-stealing parallel exploration engine.
//!
//! The paper scaled its searches by fanning independent tasks across a
//! 150-node cluster; *within* one task the search stayed sequential. This
//! module parallelizes a single search: [`ParallelExplorer`] runs N worker
//! threads under `std::thread::scope`, each owning a local work frontier
//! and stealing from victims when its own runs dry, all deduplicating
//! against one **sharded visited set**.
//!
//! # Frontier policies
//!
//! Each worker's deque is a [`FrontierQueue`] built from the configured
//! [`FrontierPolicy`] ([`SearchLimits::policy`]) — the engine never
//! branches on the policy; pushes, pops, **and steal-half** all go through
//! the trait, so every policy (FIFO, LIFO, best-first, spilling) is
//! stealable with no engine change. With a
//! [`SearchLimits::max_frontier_bytes`] budget, each worker gets a
//! disk-spilling window sized to its share (`budget / workers`).
//! Iterative deepening is the one policy with global structure (a rising
//! depth bound and a dedup reset per round): the coordinator runs it as a
//! loop of complete parallel sub-searches on depth-bounded LIFO deques,
//! resetting the sharded visited set between rounds; a round that cuts no
//! successor ends the search. Completed iterative searches report the
//! final (complete) round's terminals and solutions, with
//! `states_explored` accumulating every round's work.
//!
//! # Shard scheme
//!
//! The visited set is split into `2^k` shards (default `2^6 = 64`), each a
//! mutex-guarded [`FingerprintSet`]. Fingerprints themselves are O(1) to
//! obtain — states maintain rolling component digests on every write — so
//! the dedup insert is pure shard-lock + probe cost. A state's shard is
//! chosen by the
//! **low** `k` bits of its 128-bit fingerprint ([`Fingerprint::shard`]);
//! within a shard, the identity `BuildHasher` buckets by the **high** 64
//! bits, so the two levels consume disjoint digest bits. Dedup inserts from
//! different workers only contend when their fingerprints agree in the low
//! `k` bits — with 64 shards and uniformly distributed digests, lock
//! contention is negligible next to the cost of expanding a state.
//!
//! # Work stealing
//!
//! Each worker pushes successors onto its own mutex-guarded frontier and
//! consumes it locally in policy order. When empty, it scans the other
//! workers round-robin and takes [`FrontierQueue::steal_half`] from the
//! first victim with work — which half is the queue policy's choice: the
//! FIFO/LIFO disciplines (and their spilling windows) hand over the half
//! their owner would consume *last*, so a steal races minimally with the
//! victim's own pops, while the best-first frontier hands over the current
//! best half so both workers drive globally-promising states. The number
//! of successful steals is reported as [`SearchReport::steals`].
//!
//! The deques are deliberately one-level: every worker's **whole**
//! sub-frontier stays in its stealable queue. An earlier two-level variant
//! (lock-free private buffer spilling to a shared deque) benchmarked
//! *slower* under a state cap — the small private window slides depth-wise
//! through one subtree, stranding spilled work and burning the budget on
//! deep, expensive states instead of the shallow BFS prefix. The own-queue
//! mutex is uncontended outside steals, costing ~tens of nanoseconds per
//! state against microseconds of expansion work.
//!
//! # Budget accounting and termination
//!
//! State and solution budgets live in shared atomics; any worker that
//! exhausts a budget raises a cooperative stop flag, which every worker
//! checks once per expansion. Wall-clock budgets are checked every 64
//! expansions per worker (mirroring the sequential engine). Global
//! completion is detected with an in-flight counter: enqueuing a state
//! increments it, finishing a state's expansion decrements it, and an idle
//! worker exits once the counter hits zero. A queue that *drops* a push
//! (iterative deepening's depth cut) never counts toward in-flight — the
//! engine measures actual enqueues through the queue's length delta, under
//! the queue lock, so dropped states cannot wedge termination.
//!
//! # Determinism contract
//!
//! When a search **exhausts** its state space (no cap hit), every distinct
//! state is expanded exactly once regardless of worker count, schedule, or
//! frontier policy, so `states_explored`, `duplicate_hits`, terminal
//! outcome counts, and the *set* of solutions are identical to the
//! sequential [`Explorer`]'s (iterative deepening: identical terminals and
//! solutions; its `states_explored` includes the per-round re-expansion
//! cost by design). Discovery *order* is schedule-dependent, so solutions
//! are sorted into a canonical order (trace length, then trace, then state
//! fingerprint) before the report is returned. Two caveats, both
//! documented here rather than papered over: (1) a truncated search
//! (state/solution/time cap hit) explores a schedule-dependent prefix,
//! exactly as the paper's 30-minute task timeouts truncated
//! nondeterministically across cluster nodes; (2) witness traces record
//! the path that *won the race* to each state, which under Bfs is no
//! longer guaranteed shortest.
//!
//! # Threshold heuristic
//!
//! [`Explorer::explore_auto`] routes a search here only when its **state
//! budget** exceeds [`PARALLEL_STATE_THRESHOLD`] and more than one hardware
//! thread is available. The budget is the only size signal available before
//! the search runs; small-budget searches (the per-point common case in
//! quick campaigns) stay on the sequential engine, whose single-threaded
//! loop has no atomics, locks, or thread-spawn overhead.
//!
//! [`FingerprintSet`]: sympl_machine::FingerprintSet

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sympl_asm::Program;
use sympl_detect::DetectorSet;
use sympl_machine::{Fingerprint, FingerprintSet, MachineState, SuccessorBuf};

use crate::frontier::BoundedLifoQueue;
use crate::memo::{probe_digest, MemoStore, SubtreeSummary};
use crate::{
    Explorer, FrontierPolicy, FrontierQueue, OutcomeCounts, Predicate, SearchLimits, SearchReport,
    Solution,
};

/// State-budget threshold above which [`Explorer::explore_auto`] hands a
/// search to the [`ParallelExplorer`]. Below it, thread spawn plus shared
/// counters cost more than they recover; the paper-scale searches that
/// dominate campaign wall-clock are far above it.
pub const PARALLEL_STATE_THRESHOLD: usize = 50_000;

/// Default number of visited-set shards (`2^6`).
const DEFAULT_SHARD_BITS: u32 = 6;

/// Expansions between wall-clock budget checks, as in the sequential engine.
const TIME_CHECK_MASK: usize = 0x3F;

/// A persistent parent chain for witness traces. Work items migrate between
/// workers, so the sequential engine's flat parent arena (indices into one
/// worker-local `Vec`) cannot work here; an `Arc` chain clones in O(1) and
/// is immutable, so it crosses threads freely.
#[derive(Debug)]
struct TraceNode {
    pc: usize,
    parent: Option<Arc<TraceNode>>,
}

impl TraceNode {
    fn root(pc: usize) -> Arc<Self> {
        Arc::new(TraceNode { pc, parent: None })
    }

    fn child(self: &Arc<Self>, pc: usize) -> Arc<Self> {
        Arc::new(TraceNode {
            pc,
            parent: Some(Arc::clone(self)),
        })
    }

    fn reconstruct(&self) -> Vec<usize> {
        let mut trace = Vec::new();
        let mut cur = Some(self);
        while let Some(node) = cur {
            trace.push(node.pc);
            cur = node.parent.as_deref();
        }
        trace.reverse();
        trace
    }
}

type WorkerQueue = Mutex<Box<dyn FrontierQueue<Arc<TraceNode>>>>;

/// The sharded visited set: fingerprint low bits pick a shard, the identity
/// hasher buckets by the high bits within it.
struct ShardedVisited {
    shards: Vec<Mutex<FingerprintSet>>,
}

impl ShardedVisited {
    fn new(bits: u32) -> Self {
        ShardedVisited {
            shards: (0..1usize << bits)
                .map(|_| Mutex::new(FingerprintSet::default()))
                .collect(),
        }
    }

    /// Inserts a fingerprint; `true` when it was not already present.
    fn insert(&self, fp: Fingerprint) -> bool {
        self.shards[fp.shard(self.shards.len())]
            .lock()
            .expect("a worker panicked while holding a visited shard")
            .insert(fp)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("visited shard poisoned").len())
            .sum()
    }
}

/// Shared coordination state for one parallel search (or one iterative
/// round).
struct Shared<'a> {
    program: &'a Program,
    detectors: &'a DetectorSet,
    limits: &'a SearchLimits,
    predicate: &'a Predicate,
    queues: Vec<WorkerQueue>,
    visited: ShardedVisited,
    /// Enqueued-but-unfinished states; 0 means the space is swept.
    in_flight: AtomicUsize,
    /// Cooperative stop: raised by whichever worker exhausts a budget.
    stop: AtomicBool,
    states: AtomicUsize,
    solutions_found: AtomicUsize,
    steals: AtomicUsize,
    hit_state_cap: AtomicBool,
    hit_solution_cap: AtomicBool,
    hit_time_cap: AtomicBool,
    start: Instant,
}

/// Per-worker result pool, merged after the scope joins.
#[derive(Default)]
struct WorkerPool {
    solutions: Vec<Solution>,
    terminals: OutcomeCounts,
    duplicate_hits: usize,
    peak_frontier_len: usize,
    peak_frontier_bytes: usize,
    /// Deepest terminal this worker reached, in absolute execution steps
    /// (memo summaries record the subtree depth; merged by max).
    deepest: u64,
}

/// A work-stealing parallel twin of [`Explorer`]: same program/detector
/// set/budget/policy configuration, N worker threads per search.
///
/// ```
/// use sympl_asm::parse_program;
/// use sympl_check::{ParallelExplorer, Predicate};
/// use sympl_detect::DetectorSet;
/// use sympl_machine::MachineState;
///
/// let program = parse_program("print $1\nhalt")?;
/// let detectors = DetectorSet::new();
/// let report = ParallelExplorer::new(&program, &detectors)
///     .with_workers(2)
///     .explore(vec![MachineState::new()], &Predicate::Any);
/// assert!(report.exhausted);
/// assert_eq!(report.workers, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelExplorer<'a> {
    program: &'a Program,
    detectors: &'a DetectorSet,
    limits: SearchLimits,
    /// A policy chosen via [`ParallelExplorer::with_policy`]. Kept
    /// separate from `limits.policy` so the two builders compose in
    /// either order — a later `with_limits` cannot silently revert an
    /// explicit `with_policy` choice.
    policy_override: Option<FrontierPolicy>,
    workers: usize,
    shard_bits: u32,
    /// An attached memo store ([`ParallelExplorer::with_memo`]): probed
    /// before spinning up the pool, populated when a search exhausts. The
    /// worker count folds into the probe digest, so entries recorded at
    /// one engine width never serve another (traces record race winners).
    memo: Option<&'a MemoStore>,
}

impl<'a> ParallelExplorer<'a> {
    /// An engine with default budgets, a BFS frontier, and one worker per
    /// available hardware thread.
    #[must_use]
    pub fn new(program: &'a Program, detectors: &'a DetectorSet) -> Self {
        ParallelExplorer {
            program,
            detectors,
            limits: SearchLimits::default(),
            policy_override: None,
            workers: available_workers(),
            shard_bits: DEFAULT_SHARD_BITS,
            memo: None,
        }
    }

    /// A parallel engine inheriting a sequential [`Explorer`]'s full
    /// configuration (program, detectors, budgets, effective policy,
    /// worker cap, attached memo store).
    #[must_use]
    pub fn from_explorer(explorer: &Explorer<'a>) -> Self {
        ParallelExplorer {
            program: explorer.program(),
            detectors: explorer.detectors(),
            limits: explorer.limits().clone(),
            policy_override: Some(explorer.policy()),
            workers: explorer.workers_hint().unwrap_or_else(available_workers),
            shard_bits: DEFAULT_SHARD_BITS,
            memo: explorer.memo(),
        }
    }

    /// Attaches (or detaches) a memoization store — the parallel twin of
    /// [`Explorer::with_memo`], with the same serve/record contract.
    #[must_use]
    pub fn with_memo(mut self, memo: Option<&'a MemoStore>) -> Self {
        self.memo = memo;
        self
    }

    /// Replaces the search budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Replaces the frontier policy (per-worker queues follow it; the
    /// global interleaving is schedule-dependent either way). Overrides
    /// [`SearchLimits::policy`] whether called before or after
    /// [`ParallelExplorer::with_limits`].
    #[must_use]
    pub fn with_policy(mut self, policy: FrontierPolicy) -> Self {
        self.policy_override = Some(policy);
        self
    }

    /// The effective frontier policy: an explicit
    /// [`ParallelExplorer::with_policy`] choice, else
    /// [`SearchLimits::policy`].
    #[must_use]
    pub fn policy(&self) -> FrontierPolicy {
        self.policy_override.unwrap_or(self.limits.policy)
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the visited-set shard count to `2^bits` (clamped to `[0, 16]`).
    #[must_use]
    pub fn with_shard_bits(mut self, bits: u32) -> Self {
        self.shard_bits = bits.min(16);
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured search budgets.
    #[must_use]
    pub fn limits(&self) -> &SearchLimits {
        &self.limits
    }

    /// The per-worker spill window: each worker's share of the configured
    /// frontier budget.
    fn per_worker_budget(&self) -> Option<usize> {
        self.limits
            .max_frontier_bytes
            .map(|b| (b / self.workers).max(1))
    }

    /// Exhaustively explores the state space from `seeds` on the worker
    /// pool, collecting terminal states that satisfy `predicate`.
    ///
    /// See the module docs for the determinism contract: exhausted searches
    /// reproduce the sequential engine's counts and solution set exactly;
    /// truncated searches explore a schedule-dependent prefix.
    #[must_use]
    pub fn explore(&self, seeds: Vec<MachineState>, predicate: &Predicate) -> SearchReport {
        let Some(store) = self.memo else {
            return self.explore_inner(seeds, predicate).0;
        };
        let Some(digest) =
            probe_digest(predicate, &self.limits, self.policy(), self.workers, &seeds)
        else {
            // Custom predicate: no encodable identity, bypass the store.
            return self.explore_inner(seeds, predicate).0;
        };
        if let Some(served) = store.serve(digest) {
            return served;
        }
        let (report, max_depth) = self.explore_inner(seeds, predicate);
        // Unlike the sequential engine, a truncated parallel search
        // explores a schedule-dependent prefix: only exhausted reports
        // are deterministic functions of the probe digest, so only they
        // may enter the store.
        if report.exhausted {
            store.record(digest, SubtreeSummary::from_report(&report, max_depth));
        }
        report
    }

    /// The pool-driving body behind [`ParallelExplorer::explore`],
    /// memo-blind. Returns the report plus the subtree depth (deepest
    /// terminal's step count beyond the shallowest seed's).
    fn explore_inner(
        &self,
        seeds: Vec<MachineState>,
        predicate: &Predicate,
    ) -> (SearchReport, u64) {
        let start = Instant::now();
        let base_steps = seeds.iter().map(MachineState::steps).min().unwrap_or(0);
        let (mut report, deepest) = if let FrontierPolicy::IterativeDeepening {
            initial_depth,
            depth_step,
        } = self.policy()
        {
            self.explore_iterative(seeds, predicate, start, initial_depth, depth_step)
        } else {
            let budget = self.per_worker_budget();
            let queues: Vec<WorkerQueue> = (0..self.workers)
                .map(|_| Mutex::new(self.policy().build(budget)))
                .collect();
            self.explore_round(seeds, predicate, queues, 0, start)
        };
        report.elapsed = start.elapsed();
        report.states_per_second = SearchReport::throughput(report.states_explored, report.elapsed);
        (report, deepest.saturating_sub(base_steps))
    }

    /// Iterative deepening on the worker pool: a loop of complete parallel
    /// sub-searches on depth-bounded LIFO deques, with a fresh (reset)
    /// visited set per round — the parallel form of the sequential engine's
    /// round loop. The final round's terminals/solutions are the report;
    /// `states_explored`/`duplicate_hits`/`steals` accumulate every
    /// round's work.
    fn explore_iterative(
        &self,
        seeds: Vec<MachineState>,
        predicate: &Predicate,
        start: Instant,
        initial_depth: u64,
        depth_step: u64,
    ) -> (SearchReport, u64) {
        let base = seeds.iter().map(MachineState::steps).min().unwrap_or(0);
        let mut bound = initial_depth;
        let step = depth_step.max(1);
        let mut total_states = 0usize;
        let mut total_dups = 0usize;
        let mut total_steals = 0usize;
        let mut peak_len = 0usize;
        let mut peak_bytes = 0usize;
        let mut deepest = 0u64;
        loop {
            let cut = Arc::new(AtomicBool::new(false));
            let queues: Vec<WorkerQueue> = (0..self.workers)
                .map(|_| {
                    Mutex::new(
                        Box::new(BoundedLifoQueue::new(base, bound, Arc::clone(&cut)))
                            as Box<dyn FrontierQueue<Arc<TraceNode>>>,
                    )
                })
                .collect();
            let (mut report, round_deepest) =
                self.explore_round(seeds.clone(), predicate, queues, total_states, start);
            deepest = deepest.max(round_deepest);
            total_states += report.states_explored;
            total_dups += report.duplicate_hits;
            total_steals += report.steals;
            peak_len = peak_len.max(report.peak_frontier_len);
            peak_bytes = peak_bytes.max(report.peak_frontier_bytes);
            let truncated = report.hit_state_cap || report.hit_solution_cap || report.hit_time_cap;
            if !truncated && cut.load(Ordering::Relaxed) {
                bound = bound.saturating_add(step);
                continue;
            }
            report.states_explored = total_states;
            report.duplicate_hits = total_dups;
            report.steals = total_steals;
            report.peak_frontier_len = peak_len;
            report.peak_frontier_bytes = peak_bytes;
            return (report, deepest);
        }
    }

    /// One complete parallel sub-search over caller-built worker queues.
    /// `states_used` seeds the shared expansion counter so state budgets
    /// span iterative rounds; the returned `states_explored` counts this
    /// round only. `elapsed`/`states_per_second` are left for the caller.
    fn explore_round(
        &self,
        seeds: Vec<MachineState>,
        predicate: &Predicate,
        queues: Vec<WorkerQueue>,
        states_used: usize,
        start: Instant,
    ) -> (SearchReport, u64) {
        let shared = Shared {
            program: self.program,
            detectors: self.detectors,
            limits: &self.limits,
            predicate,
            queues,
            visited: ShardedVisited::new(self.shard_bits),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            states: AtomicUsize::new(states_used),
            solutions_found: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            hit_state_cap: AtomicBool::new(false),
            hit_solution_cap: AtomicBool::new(false),
            hit_time_cap: AtomicBool::new(false),
            start,
        };

        // Seed round-robin across the worker queues, deduplicated exactly
        // like successors (single insertion point: enqueue time). In-flight
        // counts the queues' *actual* length growth, so a policy that drops
        // a push can never wedge termination.
        let mut enqueued = 0usize;
        for (i, seed) in seeds.into_iter().enumerate() {
            if shared.visited.insert(seed.fingerprint()) {
                let node = TraceNode::root(seed.pc());
                let mut queue = shared.queues[i % self.workers]
                    .lock()
                    .expect("seeding happens before workers start");
                let before = queue.len();
                queue.seed(seed, node);
                enqueued += queue.len() - before;
            }
        }
        // Snapshot the post-seeding footprint across *all* queues, so a
        // search that never pushes (all-terminal seeds) still reports a
        // consistent (len, bytes) peak pair.
        let seed_bytes: usize = shared
            .queues
            .iter()
            .map(|q| {
                q.lock()
                    .expect("seeding happens before workers start")
                    .approx_bytes()
            })
            .sum();
        shared.in_flight.store(enqueued, Ordering::Release);

        let pools: Vec<WorkerPool> = std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = (0..self.workers)
                .map(|id| scope.spawn(move || worker_loop(shared, id)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        });

        let mut report = SearchReport {
            states_explored: shared.states.load(Ordering::Acquire) - states_used,
            steals: shared.steals.load(Ordering::Acquire),
            workers: self.workers,
            hit_state_cap: shared.hit_state_cap.load(Ordering::Acquire),
            hit_solution_cap: shared.hit_solution_cap.load(Ordering::Acquire),
            hit_time_cap: shared.hit_time_cap.load(Ordering::Acquire),
            ..SearchReport::default()
        };
        // Peak frontier figures: the sum of per-worker peaks is an upper
        // bound on the true global peak (steals migrate states between
        // queues); the seed snapshot covers searches that never push.
        report.peak_frontier_len = enqueued;
        report.peak_frontier_bytes = seed_bytes;
        let mut worker_peak_len = 0usize;
        let mut worker_peak_bytes = 0usize;
        let mut deepest = 0u64;
        for pool in pools {
            report.terminals.absorb(&pool.terminals);
            report.duplicate_hits += pool.duplicate_hits;
            report.solutions.extend(pool.solutions);
            worker_peak_len += pool.peak_frontier_len;
            worker_peak_bytes += pool.peak_frontier_bytes;
            deepest = deepest.max(pool.deepest);
        }
        report.peak_frontier_len = report.peak_frontier_len.max(worker_peak_len);
        report.peak_frontier_bytes = report.peak_frontier_bytes.max(worker_peak_bytes);
        report.spilled_states = shared
            .queues
            .iter()
            .map(|q| q.lock().expect("workers joined").spilled_states())
            .sum();
        report.exhausted = !report.hit_state_cap
            && !report.hit_solution_cap
            && !report.hit_time_cap
            && shared.in_flight.load(Ordering::Acquire) == 0;

        // Canonical solution order (see module docs): discovery order is
        // schedule-dependent, so sort by witness length, then the trace
        // itself, then the terminal state's content digest.
        report.solutions.sort_by(|a, b| {
            (a.trace.len(), &a.trace)
                .cmp(&(b.trace.len(), &b.trace))
                .then_with(|| a.state.fingerprint().cmp(&b.state.fingerprint()))
        });
        // Workers race past the solution cap by at most one solution each;
        // trim the pooled excess so the cap is exact, like the sequential
        // engine's.
        if report.solutions.len() > self.limits.max_solutions {
            report.solutions.truncate(self.limits.max_solutions);
        }
        (report, deepest)
    }
}

/// One worker: drain the local frontier, steal when dry, stop cooperatively.
fn worker_loop(shared: &Shared<'_>, id: usize) -> WorkerPool {
    let mut pool = WorkerPool::default();
    let mut expanded = 0usize;
    let mut idle_spins = 0u32;
    // Per-worker scratch, allocated once for the worker's lifetime: the
    // shared decode of the program, the successor sink the dispatch fills,
    // and the batch buffer for the own-queue push. The fork hot path never
    // touches the global allocator for these again.
    let decoded = shared.program.decoded();
    let mut successors = SuccessorBuf::new();
    let mut fresh: Vec<(MachineState, Arc<TraceNode>)> = Vec::new();

    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Some((state, trace)) = pop_local(shared, id).or_else(|| {
            if try_steal(shared, id) {
                pop_local(shared, id)
            } else {
                None
            }
        }) else {
            if shared.in_flight.load(Ordering::Acquire) == 0 {
                break; // The space is swept; everyone else will follow.
            }
            // Work exists but lives in states other workers are expanding
            // right now; back off briefly and re-scan.
            idle_spins += 1;
            if idle_spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            continue;
        };
        idle_spins = 0;

        // State budget: claim an expansion slot; release it and stop if the
        // cap was already reached (the popped state stays unexpanded,
        // exactly like the sequential engine's pre-expansion cap check).
        let claimed = shared.states.fetch_add(1, Ordering::Relaxed);
        if claimed >= shared.limits.max_states {
            shared.states.fetch_sub(1, Ordering::Relaxed);
            shared.hit_state_cap.store(true, Ordering::Relaxed);
            shared.stop.store(true, Ordering::Release);
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            break;
        }

        // Wall-clock budget, checked every few expansions per worker —
        // including the worker's very first (`expanded` still 0 here), so
        // an already-expired budget stops the search before any expansion,
        // exactly as the sequential engine's check does.
        if let Some(budget) = shared.limits.max_time {
            if expanded & TIME_CHECK_MASK == 0 && shared.start.elapsed() >= budget {
                // Release the expansion slot claimed above: this state is
                // not expanded, so it must not be counted.
                shared.states.fetch_sub(1, Ordering::Relaxed);
                shared.hit_time_cap.store(true, Ordering::Relaxed);
                shared.stop.store(true, Ordering::Release);
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                break;
            }
        }
        expanded += 1;

        if state.status().is_terminal() {
            pool.terminals.record(&state);
            pool.deepest = pool.deepest.max(state.steps());
            if shared.predicate.matches(&state) {
                pool.solutions.push(Solution {
                    trace: trace.reconstruct(),
                    state,
                });
                let found = shared.solutions_found.fetch_add(1, Ordering::AcqRel) + 1;
                if found >= shared.limits.max_solutions {
                    shared.hit_solution_cap.store(true, Ordering::Relaxed);
                    shared.stop.store(true, Ordering::Release);
                }
            }
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            continue;
        }

        // Dedup each successor, then enqueue the fresh ones in one batch
        // under a single own-queue lock. In-flight grows by the queue's
        // *measured* length delta while the lock is held — items are
        // unreachable to thieves until the lock drops, so the counter can
        // never dip to zero with work outstanding, and policy-dropped
        // pushes (depth cuts) are never counted.
        state.step_into(
            decoded,
            shared.detectors,
            &shared.limits.exec,
            &mut successors,
        );
        for succ in successors.drain() {
            if shared.visited.insert(succ.fingerprint()) {
                let node = trace.child(succ.pc());
                fresh.push((succ, node));
            } else {
                pool.duplicate_hits += 1;
            }
        }
        if !fresh.is_empty() {
            let mut queue = shared.queues[id].lock().expect("own queue poisoned");
            let before = queue.len();
            for (succ, node) in fresh.drain(..) {
                queue.push(succ, node);
            }
            let grown = queue.len() - before;
            if grown > 0 {
                shared.in_flight.fetch_add(grown, Ordering::AcqRel);
            }
            pool.peak_frontier_len = pool.peak_frontier_len.max(queue.len());
            pool.peak_frontier_bytes = pool.peak_frontier_bytes.max(queue.approx_bytes());
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
    pool
}

fn pop_local(shared: &Shared<'_>, id: usize) -> Option<(MachineState, Arc<TraceNode>)> {
    shared.queues[id].lock().expect("own queue poisoned").pop()
}

/// Steals roughly half of the first non-empty victim frontier into `id`'s
/// own; `true` when anything was taken. Which half is the queue policy's
/// call — see [`FrontierQueue::steal_half`] for each discipline's choice.
/// Never holds two queue locks at once, so mutual steals cannot deadlock.
/// In-flight is untouched: stolen states were counted at their original
/// enqueue and remain enqueued, just elsewhere.
fn try_steal(shared: &Shared<'_>, id: usize) -> bool {
    let workers = shared.queues.len();
    for offset in 1..workers {
        let victim = (id + offset) % workers;
        let taken = shared.queues[victim]
            .lock()
            .expect("victim queue poisoned")
            .steal_half();
        if taken.is_empty() {
            continue;
        }
        shared.steals.fetch_add(1, Ordering::Relaxed);
        let mut own = shared.queues[id].lock().expect("own queue poisoned");
        for (state, node) in taken {
            // Re-entering through `seed` keeps already-admitted states
            // exempt from a depth bound they have already passed.
            own.seed(state, node);
        }
        return true;
    }
    false
}

fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl<'a> Explorer<'a> {
    /// Routes the search by budget: the [`ParallelExplorer`] when the state
    /// budget exceeds [`PARALLEL_STATE_THRESHOLD`] and more than one worker
    /// is available, the sequential engine otherwise.
    ///
    /// This is the entry point the campaign layers (`run_point_with`, the
    /// cluster worker loop, `symplfied::Framework`) drive: big-budget point
    /// searches saturate the machine, small ones skip the thread-pool
    /// overhead. The worker count is the hardware thread count unless the
    /// caller capped it with [`Explorer::with_workers_hint`] — callers that
    /// already run explorers concurrently (the cluster task pool) pass
    /// their per-task share so nested parallelism cannot oversubscribe the
    /// machine.
    #[must_use]
    pub fn explore_auto(&self, seeds: Vec<MachineState>, predicate: &Predicate) -> SearchReport {
        let workers = self
            .workers_hint()
            .unwrap_or_else(available_workers)
            .min(available_workers())
            .max(1);
        if workers >= 2 && self.limits().max_states > PARALLEL_STATE_THRESHOLD {
            ParallelExplorer::from_explorer(self)
                .with_workers(workers)
                .explore(seeds, predicate)
        } else {
            self.explore(seeds, predicate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PriorityHeuristic;
    use sympl_asm::{parse_program, Reg};
    use sympl_machine::ExecLimits;
    use sympl_symbolic::Value;

    fn dets() -> DetectorSet {
        DetectorSet::new()
    }

    /// A program whose error fork produces a few dozen states.
    fn forked_program() -> (Program, MachineState) {
        let p = parse_program(
            "beq $1, 0, t\nmov $2, 1\njmp join\nt: mov $2, 2\nnop\n\
             join: print $2\nprint $1\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        (p, s)
    }

    #[test]
    fn memoized_parallel_reruns_replay_and_never_cross_widths() {
        let (p, s) = forked_program();
        let d = dets();
        let store = crate::MemoStore::for_campaign(&p, &d);
        let two = ParallelExplorer::new(&p, &d)
            .with_workers(2)
            .with_memo(Some(&store));
        let cold = two.explore(vec![s.clone()], &Predicate::Any);
        assert!(cold.exhausted);
        assert_eq!(store.inserts(), 1, "exhausted search recorded");
        let warm = two.explore(vec![s.clone()], &Predicate::Any);
        assert_eq!(warm.memo_hits, 1, "re-run served from the store");
        assert_eq!(warm.states_explored, cold.states_explored);
        assert_eq!(warm.terminals, cold.terminals);
        assert_eq!(warm.solutions, cold.solutions);
        assert_eq!(warm.workers, cold.workers, "recorded width replays");
        // A different engine width is a different probe digest: entries
        // never cross between widths (traces record race winners).
        let one = ParallelExplorer::new(&p, &d)
            .with_workers(1)
            .with_memo(Some(&store));
        let other = one.explore(vec![s.clone()], &Predicate::Any);
        assert_eq!(other.memo_hits, 0);
        assert_eq!(store.len(), 2);
    }

    fn solution_digests(report: &SearchReport) -> Vec<Fingerprint> {
        let mut v: Vec<Fingerprint> = report
            .solutions
            .iter()
            .map(|s| s.state.fingerprint())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_sequential_engine_when_exhausted() {
        let (p, s) = forked_program();
        let sequential = Explorer::new(&p, &dets()).explore(vec![s.clone()], &Predicate::Any);
        assert!(sequential.exhausted);
        for workers in [1, 2, 4] {
            let parallel = ParallelExplorer::new(&p, &dets())
                .with_workers(workers)
                .explore(vec![s.clone()], &Predicate::Any);
            assert!(parallel.exhausted, "workers={workers}");
            assert_eq!(parallel.workers, workers);
            assert_eq!(parallel.states_explored, sequential.states_explored);
            assert_eq!(parallel.duplicate_hits, sequential.duplicate_hits);
            assert_eq!(parallel.terminals, sequential.terminals);
            assert_eq!(solution_digests(&parallel), solution_digests(&sequential));
        }
    }

    #[test]
    fn every_policy_matches_when_exhausted() {
        let (p, s) = forked_program();
        let sequential = Explorer::new(&p, &dets()).explore(vec![s.clone()], &Predicate::Any);
        for policy in [
            FrontierPolicy::Dfs,
            FrontierPolicy::Priority(PriorityHeuristic::ConstraintMapSize),
            FrontierPolicy::Priority(PriorityHeuristic::Depth),
            FrontierPolicy::Priority(PriorityHeuristic::OutputLen),
        ] {
            let parallel = ParallelExplorer::new(&p, &dets())
                .with_policy(policy)
                .with_workers(3)
                .explore(vec![s.clone()], &Predicate::Any);
            assert!(parallel.exhausted, "{policy:?}");
            assert_eq!(parallel.terminals, sequential.terminals, "{policy:?}");
            assert_eq!(
                parallel.states_explored, sequential.states_explored,
                "{policy:?}"
            );
            assert_eq!(
                solution_digests(&parallel),
                solution_digests(&sequential),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn iterative_deepening_matches_terminals_and_solutions() {
        let (p, s) = forked_program();
        let sequential = Explorer::new(&p, &dets()).explore(vec![s.clone()], &Predicate::Any);
        for workers in [1, 3] {
            let idd = ParallelExplorer::new(&p, &dets())
                .with_policy(FrontierPolicy::IterativeDeepening {
                    initial_depth: 1,
                    depth_step: 2,
                })
                .with_workers(workers)
                .explore(vec![s.clone()], &Predicate::Any);
            assert!(idd.exhausted, "workers={workers}");
            assert_eq!(idd.terminals, sequential.terminals, "workers={workers}");
            assert_eq!(
                solution_digests(&idd),
                solution_digests(&sequential),
                "workers={workers}"
            );
            assert!(
                idd.states_explored >= sequential.states_explored,
                "rounds re-expand shallow states"
            );
        }
    }

    #[test]
    fn spilling_frontier_matches_at_multiple_worker_counts() {
        let (p, s) = forked_program();
        let sequential = Explorer::new(&p, &dets()).explore(vec![s.clone()], &Predicate::Any);
        let limits = SearchLimits {
            max_frontier_bytes: Some(1), // clamped to the per-queue floor
            ..SearchLimits::default()
        };
        for workers in [1, 2, 4] {
            let parallel = ParallelExplorer::new(&p, &dets())
                .with_limits(limits.clone())
                .with_workers(workers)
                .explore(vec![s.clone()], &Predicate::Any);
            assert!(parallel.exhausted, "workers={workers}");
            assert_eq!(parallel.terminals, sequential.terminals);
            assert_eq!(parallel.states_explored, sequential.states_explored);
            assert_eq!(solution_digests(&parallel), solution_digests(&sequential));
        }
    }

    #[test]
    fn dfs_frontier_matches_too() {
        let (p, s) = forked_program();
        let sequential = Explorer::new(&p, &dets())
            .with_policy(FrontierPolicy::Dfs)
            .explore(vec![s.clone()], &Predicate::Any);
        let parallel = ParallelExplorer::new(&p, &dets())
            .with_policy(FrontierPolicy::Dfs)
            .with_workers(3)
            .explore(vec![s], &Predicate::Any);
        assert!(parallel.exhausted);
        assert_eq!(parallel.terminals, sequential.terminals);
        assert_eq!(parallel.states_explored, sequential.states_explored);
    }

    #[test]
    fn parallel_runs_are_deterministic_when_exhausted() {
        let (p, s) = forked_program();
        let run = || {
            ParallelExplorer::new(&p, &dets())
                .with_workers(4)
                .with_shard_bits(2)
                .explore(vec![s.clone()], &Predicate::Any)
        };
        let a = run();
        let b = run();
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(solution_digests(&a), solution_digests(&b));
        // Canonical order makes the full solution lists comparable, not
        // just the multisets.
        let traces = |r: &SearchReport| {
            r.solutions
                .iter()
                .map(|s| s.trace.len())
                .collect::<Vec<_>>()
        };
        assert!(traces(&a).windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn state_cap_truncates_and_is_reported() {
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let limits = SearchLimits {
            max_states: 300,
            exec: ExecLimits::with_max_steps(1_000_000),
            ..SearchLimits::default()
        };
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(2)
            .with_limits(limits)
            .explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_state_cap);
        assert!(!report.exhausted);
        // Workers may stop a few states short of the cap (cooperative
        // stop), never past it.
        assert!(report.states_explored <= 300);
        assert!(report.peak_frontier_len > 0);
    }

    #[test]
    fn solution_cap_is_exact_after_pooling() {
        let (p, s) = forked_program();
        let limits = SearchLimits {
            max_solutions: 1,
            ..SearchLimits::default()
        };
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(4)
            .with_limits(limits)
            .explore(vec![s], &Predicate::Any);
        assert_eq!(report.solutions.len(), 1);
        assert!(report.hit_solution_cap);
    }

    #[test]
    fn time_cap_stops_the_pool() {
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let limits = SearchLimits {
            max_time: Some(std::time::Duration::ZERO),
            exec: ExecLimits::with_max_steps(u64::MAX),
            ..SearchLimits::default()
        };
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(2)
            .with_limits(limits.clone())
            .explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_time_cap);
        assert!(!report.exhausted);
        // Even a space smaller than one check interval must see the
        // expired budget on the very first expansion, like the sequential
        // engine — not sweep the space and claim exhaustion.
        let tiny = parse_program("nop\nhalt").unwrap();
        let report = ParallelExplorer::new(&tiny, &dets())
            .with_workers(2)
            .with_limits(limits)
            .explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_time_cap);
        assert!(!report.exhausted);
        assert_eq!(report.states_explored, 0);
    }

    #[test]
    fn duplicate_seeds_collapse() {
        let p = parse_program("print $1\nhalt").unwrap();
        let s = MachineState::new();
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(3)
            .explore(vec![s.clone(), s.clone(), s], &Predicate::Any);
        assert_eq!(report.solutions.len(), 1);
        assert!(report.exhausted);
    }

    #[test]
    fn empty_seed_set_exhausts_immediately() {
        let p = parse_program("halt").unwrap();
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(2)
            .explore(Vec::new(), &Predicate::Any);
        assert!(report.exhausted);
        assert_eq!(report.states_explored, 0);
        assert_eq!(report.workers, 2);
    }

    #[test]
    fn sharded_visited_set_counts_inserts() {
        let visited = ShardedVisited::new(3);
        for v in 0..500u128 {
            assert!(visited.insert(Fingerprint(v * 0x9E37_79B9_7F4A_7C15)));
        }
        for v in 0..500u128 {
            assert!(!visited.insert(Fingerprint(v * 0x9E37_79B9_7F4A_7C15)));
        }
        assert_eq!(visited.len(), 500);
    }

    #[test]
    fn explore_auto_routes_by_budget() {
        let (p, s) = forked_program();
        // A tiny budget stays sequential regardless of core count.
        let small = Explorer::new(&p, &dets())
            .with_limits(SearchLimits {
                max_states: 100,
                ..SearchLimits::default()
            })
            .explore_auto(vec![s.clone()], &Predicate::Any);
        assert_eq!(small.workers, 1);
        // A big budget engages as many workers as the hardware offers (on
        // a single-core machine the sequential engine is the right call).
        let big = Explorer::new(&p, &dets()).explore_auto(vec![s.clone()], &Predicate::Any);
        assert_eq!(big.workers, available_workers());
        assert_eq!(big.terminals, small.terminals, "same exhaustive answer");
        // A workers hint of 1 forces the sequential path even on big
        // budgets (nested-parallel callers use this to avoid
        // oversubscription).
        let hinted = Explorer::new(&p, &dets())
            .with_workers_hint(Some(1))
            .explore_auto(vec![s], &Predicate::Any);
        assert_eq!(hinted.workers, 1);
        assert_eq!(hinted.steals, 0);
        assert_eq!(hinted.terminals, small.terminals);
    }

    #[test]
    fn trace_nodes_reconstruct_paths() {
        let root = TraceNode::root(0);
        let deep = root.child(1).child(2).child(5);
        assert_eq!(deep.reconstruct(), vec![0, 1, 2, 5]);
        assert_eq!(root.reconstruct(), vec![0]);
    }
}
