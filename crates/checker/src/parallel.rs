//! The work-stealing parallel exploration engine.
//!
//! The paper scaled its searches by fanning independent tasks across a
//! 150-node cluster; *within* one task the search stayed sequential. This
//! module parallelizes a single search: [`ParallelExplorer`] runs N worker
//! threads under `std::thread::scope`, each owning a local work deque and
//! stealing from victims when its own runs dry, all deduplicating against
//! one **sharded visited set**.
//!
//! # Shard scheme
//!
//! The visited set is split into `2^k` shards (default `2^6 = 64`), each a
//! mutex-guarded [`FingerprintSet`]. Fingerprints themselves are O(1) to
//! obtain — states maintain rolling component digests on every write — so
//! the dedup insert is pure shard-lock + probe cost. A state's shard is
//! chosen by the
//! **low** `k` bits of its 128-bit fingerprint ([`Fingerprint::shard`]);
//! within a shard, the identity `BuildHasher` buckets by the **high** 64
//! bits, so the two levels consume disjoint digest bits. Dedup inserts from
//! different workers only contend when their fingerprints agree in the low
//! `k` bits — with 64 shards and uniformly distributed digests, lock
//! contention is negligible next to the cost of expanding a state.
//!
//! # Work stealing
//!
//! Each worker pushes successors onto its own mutex-guarded deque and
//! consumes it locally (FIFO under [`Frontier::Bfs`], LIFO under
//! [`Frontier::Dfs`]). When empty, it scans the other workers round-robin
//! and steals half of the first non-empty deque it finds — from the end
//! its victim is *not* consuming, so a steal races minimally with the
//! victim's own pops. The number of successful steals is reported as
//! [`SearchReport::steals`].
//!
//! The deques are deliberately one-level: every worker's **whole**
//! sub-frontier stays in its stealable deque. An earlier two-level variant
//! (lock-free private buffer spilling to a shared deque) benchmarked
//! *slower* under a state cap — the small private window slides depth-wise
//! through one subtree, stranding spilled work and burning the budget on
//! deep, expensive states instead of the shallow BFS prefix. The own-deque
//! mutex is uncontended outside steals, costing ~tens of nanoseconds per
//! state against microseconds of expansion work.
//!
//! # Budget accounting and termination
//!
//! State and solution budgets live in shared atomics; any worker that
//! exhausts a budget raises a cooperative stop flag, which every worker
//! checks once per expansion. Wall-clock budgets are checked every 64
//! expansions per worker (mirroring the sequential engine). Global
//! completion is detected with an in-flight counter: enqueuing a state
//! increments it, finishing a state's expansion decrements it, and an idle
//! worker exits once the counter hits zero.
//!
//! # Determinism contract
//!
//! When a search **exhausts** its state space (no cap hit), every distinct
//! state is expanded exactly once regardless of worker count or schedule,
//! so `states_explored`, `duplicate_hits`, terminal outcome counts, and the
//! *set* of solutions are identical to the sequential [`Explorer`]'s.
//! Discovery *order* is schedule-dependent, so solutions are sorted into a
//! canonical order (trace length, then trace, then state fingerprint)
//! before the report is returned. Two caveats, both documented here rather
//! than papered over: (1) a truncated search (state/solution/time cap hit)
//! explores a schedule-dependent prefix of the space, exactly as the
//! paper's 30-minute task timeouts truncated nondeterministically across
//! cluster nodes; (2) witness traces record the path that *won the race*
//! to each state, which under Bfs is no longer guaranteed shortest.
//!
//! # Threshold heuristic
//!
//! [`Explorer::explore_auto`] routes a search here only when its **state
//! budget** exceeds [`PARALLEL_STATE_THRESHOLD`] and more than one hardware
//! thread is available. The budget is the only size signal available before
//! the search runs; small-budget searches (the per-point common case in
//! quick campaigns) stay on the sequential engine, whose single-threaded
//! loop has no atomics, locks, or thread-spawn overhead.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sympl_asm::Program;
use sympl_detect::DetectorSet;
use sympl_machine::{Fingerprint, FingerprintSet, MachineState};

use crate::{Explorer, Frontier, OutcomeCounts, Predicate, SearchLimits, SearchReport, Solution};

/// State-budget threshold above which [`Explorer::explore_auto`] hands a
/// search to the [`ParallelExplorer`]. Below it, thread spawn plus shared
/// counters cost more than they recover; the paper-scale searches that
/// dominate campaign wall-clock are far above it.
pub const PARALLEL_STATE_THRESHOLD: usize = 50_000;

/// Default number of visited-set shards (`2^6`).
const DEFAULT_SHARD_BITS: u32 = 6;

/// Expansions between wall-clock budget checks, as in the sequential engine.
const TIME_CHECK_MASK: usize = 0x3F;

/// A persistent parent chain for witness traces. Work items migrate between
/// workers, so the sequential engine's flat parent arena (indices into one
/// worker-local `Vec`) cannot work here; an `Arc` chain clones in O(1) and
/// is immutable, so it crosses threads freely.
#[derive(Debug)]
struct TraceNode {
    pc: usize,
    parent: Option<Arc<TraceNode>>,
}

impl TraceNode {
    fn root(pc: usize) -> Arc<Self> {
        Arc::new(TraceNode { pc, parent: None })
    }

    fn child(self: &Arc<Self>, pc: usize) -> Arc<Self> {
        Arc::new(TraceNode {
            pc,
            parent: Some(Arc::clone(self)),
        })
    }

    fn reconstruct(&self) -> Vec<usize> {
        let mut trace = Vec::new();
        let mut cur = Some(self);
        while let Some(node) = cur {
            trace.push(node.pc);
            cur = node.parent.as_deref();
        }
        trace.reverse();
        trace
    }
}

type WorkItem = (MachineState, Arc<TraceNode>);

/// The sharded visited set: fingerprint low bits pick a shard, the identity
/// hasher buckets by the high bits within it.
struct ShardedVisited {
    shards: Vec<Mutex<FingerprintSet>>,
}

impl ShardedVisited {
    fn new(bits: u32) -> Self {
        ShardedVisited {
            shards: (0..1usize << bits)
                .map(|_| Mutex::new(FingerprintSet::default()))
                .collect(),
        }
    }

    /// Inserts a fingerprint; `true` when it was not already present.
    fn insert(&self, fp: Fingerprint) -> bool {
        self.shards[fp.shard(self.shards.len())]
            .lock()
            .expect("a worker panicked while holding a visited shard")
            .insert(fp)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("visited shard poisoned").len())
            .sum()
    }
}

/// Shared coordination state for one parallel search.
struct Shared<'a> {
    program: &'a Program,
    detectors: &'a DetectorSet,
    limits: &'a SearchLimits,
    predicate: &'a Predicate,
    frontier: Frontier,
    queues: Vec<Mutex<VecDeque<WorkItem>>>,
    visited: ShardedVisited,
    /// Enqueued-but-unfinished states; 0 means the space is swept.
    in_flight: AtomicUsize,
    /// Cooperative stop: raised by whichever worker exhausts a budget.
    stop: AtomicBool,
    states: AtomicUsize,
    solutions_found: AtomicUsize,
    steals: AtomicUsize,
    hit_state_cap: AtomicBool,
    hit_solution_cap: AtomicBool,
    hit_time_cap: AtomicBool,
    start: Instant,
}

/// Per-worker result pool, merged after the scope joins.
#[derive(Default)]
struct WorkerPool {
    solutions: Vec<Solution>,
    terminals: OutcomeCounts,
    duplicate_hits: usize,
}

/// A work-stealing parallel twin of [`Explorer`]: same program/detector
/// set/budget/frontier configuration, N worker threads per search.
///
/// ```
/// use sympl_asm::parse_program;
/// use sympl_check::{ParallelExplorer, Predicate};
/// use sympl_detect::DetectorSet;
/// use sympl_machine::MachineState;
///
/// let program = parse_program("print $1\nhalt")?;
/// let detectors = DetectorSet::new();
/// let report = ParallelExplorer::new(&program, &detectors)
///     .with_workers(2)
///     .explore(vec![MachineState::new()], &Predicate::Any);
/// assert!(report.exhausted);
/// assert_eq!(report.workers, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelExplorer<'a> {
    program: &'a Program,
    detectors: &'a DetectorSet,
    limits: SearchLimits,
    frontier: Frontier,
    workers: usize,
    shard_bits: u32,
}

impl<'a> ParallelExplorer<'a> {
    /// An engine with default budgets, a BFS frontier, and one worker per
    /// available hardware thread.
    #[must_use]
    pub fn new(program: &'a Program, detectors: &'a DetectorSet) -> Self {
        ParallelExplorer {
            program,
            detectors,
            limits: SearchLimits::default(),
            frontier: Frontier::default(),
            workers: available_workers(),
            shard_bits: DEFAULT_SHARD_BITS,
        }
    }

    /// A parallel engine inheriting a sequential [`Explorer`]'s full
    /// configuration (program, detectors, budgets, frontier, worker cap).
    #[must_use]
    pub fn from_explorer(explorer: &Explorer<'a>) -> Self {
        ParallelExplorer {
            program: explorer.program(),
            detectors: explorer.detectors(),
            limits: explorer.limits().clone(),
            frontier: explorer.frontier(),
            workers: explorer.workers_hint().unwrap_or_else(available_workers),
            shard_bits: DEFAULT_SHARD_BITS,
        }
    }

    /// Replaces the search budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Replaces the frontier discipline (per-worker: FIFO for Bfs, LIFO for
    /// Dfs; the global interleaving is schedule-dependent either way).
    #[must_use]
    pub fn with_frontier(mut self, frontier: Frontier) -> Self {
        self.frontier = frontier;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the visited-set shard count to `2^bits` (clamped to `[0, 16]`).
    #[must_use]
    pub fn with_shard_bits(mut self, bits: u32) -> Self {
        self.shard_bits = bits.min(16);
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured search budgets.
    #[must_use]
    pub fn limits(&self) -> &SearchLimits {
        &self.limits
    }

    /// Exhaustively explores the state space from `seeds` on the worker
    /// pool, collecting terminal states that satisfy `predicate`.
    ///
    /// See the module docs for the determinism contract: exhausted searches
    /// reproduce the sequential engine's counts and solution set exactly;
    /// truncated searches explore a schedule-dependent prefix.
    #[must_use]
    pub fn explore(&self, seeds: Vec<MachineState>, predicate: &Predicate) -> SearchReport {
        let start = Instant::now();
        let shared = Shared {
            program: self.program,
            detectors: self.detectors,
            limits: &self.limits,
            predicate,
            frontier: self.frontier,
            queues: (0..self.workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            visited: ShardedVisited::new(self.shard_bits),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            states: AtomicUsize::new(0),
            solutions_found: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            hit_state_cap: AtomicBool::new(false),
            hit_solution_cap: AtomicBool::new(false),
            hit_time_cap: AtomicBool::new(false),
            start,
        };

        // Seed round-robin across the worker deques, deduplicated exactly
        // like successors (single insertion point: enqueue time).
        let mut enqueued = 0usize;
        for (i, seed) in seeds.into_iter().enumerate() {
            if shared.visited.insert(seed.fingerprint()) {
                let node = TraceNode::root(seed.pc());
                shared.queues[i % self.workers]
                    .lock()
                    .expect("seeding happens before workers start")
                    .push_back((seed, node));
                enqueued += 1;
            }
        }
        shared.in_flight.store(enqueued, Ordering::Release);

        let pools: Vec<WorkerPool> = std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = (0..self.workers)
                .map(|id| scope.spawn(move || worker_loop(shared, id)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        });

        let mut report = SearchReport {
            states_explored: shared.states.load(Ordering::Acquire),
            steals: shared.steals.load(Ordering::Acquire),
            workers: self.workers,
            hit_state_cap: shared.hit_state_cap.load(Ordering::Acquire),
            hit_solution_cap: shared.hit_solution_cap.load(Ordering::Acquire),
            hit_time_cap: shared.hit_time_cap.load(Ordering::Acquire),
            ..SearchReport::default()
        };
        for pool in pools {
            report.terminals.absorb(&pool.terminals);
            report.duplicate_hits += pool.duplicate_hits;
            report.solutions.extend(pool.solutions);
        }
        report.exhausted = !report.hit_state_cap
            && !report.hit_solution_cap
            && !report.hit_time_cap
            && shared.in_flight.load(Ordering::Acquire) == 0;

        // Canonical solution order (see module docs): discovery order is
        // schedule-dependent, so sort by witness length, then the trace
        // itself, then the terminal state's content digest.
        report.solutions.sort_by(|a, b| {
            (a.trace.len(), &a.trace)
                .cmp(&(b.trace.len(), &b.trace))
                .then_with(|| a.state.fingerprint().cmp(&b.state.fingerprint()))
        });
        // Workers race past the solution cap by at most one solution each;
        // trim the pooled excess so the cap is exact, like the sequential
        // engine's.
        if report.solutions.len() > self.limits.max_solutions {
            report.solutions.truncate(self.limits.max_solutions);
        }

        report.elapsed = start.elapsed();
        report.states_per_second = SearchReport::throughput(report.states_explored, report.elapsed);
        report
    }
}

/// One worker: drain the local deque, steal when dry, stop cooperatively.
fn worker_loop(shared: &Shared<'_>, id: usize) -> WorkerPool {
    let mut pool = WorkerPool::default();
    let mut expanded = 0usize;
    let mut idle_spins = 0u32;

    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Some((state, trace)) = pop_local(shared, id).or_else(|| {
            if try_steal(shared, id) {
                pop_local(shared, id)
            } else {
                None
            }
        }) else {
            if shared.in_flight.load(Ordering::Acquire) == 0 {
                break; // The space is swept; everyone else will follow.
            }
            // Work exists but lives in states other workers are expanding
            // right now; back off briefly and re-scan.
            idle_spins += 1;
            if idle_spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            continue;
        };
        idle_spins = 0;

        // State budget: claim an expansion slot; release it and stop if the
        // cap was already reached (the popped state stays unexpanded,
        // exactly like the sequential engine's pre-expansion cap check).
        let claimed = shared.states.fetch_add(1, Ordering::Relaxed);
        if claimed >= shared.limits.max_states {
            shared.states.fetch_sub(1, Ordering::Relaxed);
            shared.hit_state_cap.store(true, Ordering::Relaxed);
            shared.stop.store(true, Ordering::Release);
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            break;
        }

        // Wall-clock budget, checked every few expansions per worker —
        // including the worker's very first (`expanded` still 0 here), so
        // an already-expired budget stops the search before any expansion,
        // exactly as the sequential engine's check does.
        if let Some(budget) = shared.limits.max_time {
            if expanded & TIME_CHECK_MASK == 0 && shared.start.elapsed() >= budget {
                // Release the expansion slot claimed above: this state is
                // not expanded, so it must not be counted.
                shared.states.fetch_sub(1, Ordering::Relaxed);
                shared.hit_time_cap.store(true, Ordering::Relaxed);
                shared.stop.store(true, Ordering::Release);
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                break;
            }
        }
        expanded += 1;

        if state.status().is_terminal() {
            pool.terminals.record(&state);
            if shared.predicate.matches(&state) {
                pool.solutions.push(Solution {
                    trace: trace.reconstruct(),
                    state,
                });
                let found = shared.solutions_found.fetch_add(1, Ordering::AcqRel) + 1;
                if found >= shared.limits.max_solutions {
                    shared.hit_solution_cap.store(true, Ordering::Relaxed);
                    shared.stop.store(true, Ordering::Release);
                }
            }
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            continue;
        }

        for succ in state.step(shared.program, shared.detectors, &shared.limits.exec) {
            if shared.visited.insert(succ.fingerprint()) {
                let node = trace.child(succ.pc());
                // Increment before enqueuing so `in_flight` can never dip
                // to zero while this successor is still reachable.
                shared.in_flight.fetch_add(1, Ordering::AcqRel);
                shared.queues[id]
                    .lock()
                    .expect("own queue poisoned")
                    .push_back((succ, node));
            } else {
                pool.duplicate_hits += 1;
            }
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
    pool
}

fn pop_local(shared: &Shared<'_>, id: usize) -> Option<WorkItem> {
    let mut queue = shared.queues[id].lock().expect("own queue poisoned");
    match shared.frontier {
        Frontier::Bfs => queue.pop_front(),
        Frontier::Dfs => queue.pop_back(),
    }
}

/// Steals half of the first non-empty victim deque into `id`'s own deque;
/// `true` when anything was taken. Never holds two queue locks at once, so
/// mutual steals cannot deadlock.
fn try_steal(shared: &Shared<'_>, id: usize) -> bool {
    let workers = shared.queues.len();
    for offset in 1..workers {
        let victim = (id + offset) % workers;
        let taken: VecDeque<WorkItem> = {
            let mut queue = shared.queues[victim].lock().expect("victim queue poisoned");
            let len = queue.len();
            if len == 0 {
                continue;
            }
            let take = len.div_ceil(2);
            match shared.frontier {
                // Bfs victims consume the front: steal the back half.
                Frontier::Bfs => queue.split_off(len - take),
                // Dfs victims consume the back: steal the front half.
                Frontier::Dfs => {
                    let rest = queue.split_off(take);
                    std::mem::replace(&mut *queue, rest)
                }
            }
        };
        shared.steals.fetch_add(1, Ordering::Relaxed);
        shared.queues[id]
            .lock()
            .expect("own queue poisoned")
            .extend(taken);
        return true;
    }
    false
}

fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl<'a> Explorer<'a> {
    /// Routes the search by budget: the [`ParallelExplorer`] when the state
    /// budget exceeds [`PARALLEL_STATE_THRESHOLD`] and more than one worker
    /// is available, the sequential engine otherwise.
    ///
    /// This is the entry point the campaign layers (`run_point_with`, the
    /// cluster worker loop, `symplfied::Framework`) drive: big-budget point
    /// searches saturate the machine, small ones skip the thread-pool
    /// overhead. The worker count is the hardware thread count unless the
    /// caller capped it with [`Explorer::with_workers_hint`] — callers that
    /// already run explorers concurrently (the cluster task pool) pass
    /// their per-task share so nested parallelism cannot oversubscribe the
    /// machine.
    #[must_use]
    pub fn explore_auto(&self, seeds: Vec<MachineState>, predicate: &Predicate) -> SearchReport {
        let workers = self
            .workers_hint()
            .unwrap_or_else(available_workers)
            .min(available_workers())
            .max(1);
        if workers >= 2 && self.limits().max_states > PARALLEL_STATE_THRESHOLD {
            ParallelExplorer::from_explorer(self)
                .with_workers(workers)
                .explore(seeds, predicate)
        } else {
            self.explore(seeds, predicate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::{parse_program, Reg};
    use sympl_machine::ExecLimits;
    use sympl_symbolic::Value;

    fn dets() -> DetectorSet {
        DetectorSet::new()
    }

    /// A program whose error fork produces a few dozen states.
    fn forked_program() -> (Program, MachineState) {
        let p = parse_program(
            "beq $1, 0, t\nmov $2, 1\njmp join\nt: mov $2, 2\nnop\n\
             join: print $2\nprint $1\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        (p, s)
    }

    fn solution_digests(report: &SearchReport) -> Vec<Fingerprint> {
        let mut v: Vec<Fingerprint> = report
            .solutions
            .iter()
            .map(|s| s.state.fingerprint())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_sequential_engine_when_exhausted() {
        let (p, s) = forked_program();
        let sequential = Explorer::new(&p, &dets()).explore(vec![s.clone()], &Predicate::Any);
        assert!(sequential.exhausted);
        for workers in [1, 2, 4] {
            let parallel = ParallelExplorer::new(&p, &dets())
                .with_workers(workers)
                .explore(vec![s.clone()], &Predicate::Any);
            assert!(parallel.exhausted, "workers={workers}");
            assert_eq!(parallel.workers, workers);
            assert_eq!(parallel.states_explored, sequential.states_explored);
            assert_eq!(parallel.duplicate_hits, sequential.duplicate_hits);
            assert_eq!(parallel.terminals, sequential.terminals);
            assert_eq!(solution_digests(&parallel), solution_digests(&sequential));
        }
    }

    #[test]
    fn dfs_frontier_matches_too() {
        let (p, s) = forked_program();
        let sequential = Explorer::new(&p, &dets())
            .with_frontier(Frontier::Dfs)
            .explore(vec![s.clone()], &Predicate::Any);
        let parallel = ParallelExplorer::new(&p, &dets())
            .with_frontier(Frontier::Dfs)
            .with_workers(3)
            .explore(vec![s], &Predicate::Any);
        assert!(parallel.exhausted);
        assert_eq!(parallel.terminals, sequential.terminals);
        assert_eq!(parallel.states_explored, sequential.states_explored);
    }

    #[test]
    fn parallel_runs_are_deterministic_when_exhausted() {
        let (p, s) = forked_program();
        let run = || {
            ParallelExplorer::new(&p, &dets())
                .with_workers(4)
                .with_shard_bits(2)
                .explore(vec![s.clone()], &Predicate::Any)
        };
        let a = run();
        let b = run();
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.terminals, b.terminals);
        assert_eq!(solution_digests(&a), solution_digests(&b));
        // Canonical order makes the full solution lists comparable, not
        // just the multisets.
        let traces = |r: &SearchReport| {
            r.solutions
                .iter()
                .map(|s| s.trace.len())
                .collect::<Vec<_>>()
        };
        assert!(traces(&a).windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn state_cap_truncates_and_is_reported() {
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let limits = SearchLimits {
            max_states: 300,
            exec: ExecLimits::with_max_steps(1_000_000),
            ..SearchLimits::default()
        };
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(2)
            .with_limits(limits)
            .explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_state_cap);
        assert!(!report.exhausted);
        // Workers may stop a few states short of the cap (cooperative
        // stop), never past it.
        assert!(report.states_explored <= 300);
    }

    #[test]
    fn solution_cap_is_exact_after_pooling() {
        let (p, s) = forked_program();
        let limits = SearchLimits {
            max_solutions: 1,
            ..SearchLimits::default()
        };
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(4)
            .with_limits(limits)
            .explore(vec![s], &Predicate::Any);
        assert_eq!(report.solutions.len(), 1);
        assert!(report.hit_solution_cap);
    }

    #[test]
    fn time_cap_stops_the_pool() {
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let limits = SearchLimits {
            max_time: Some(std::time::Duration::ZERO),
            exec: ExecLimits::with_max_steps(u64::MAX),
            ..SearchLimits::default()
        };
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(2)
            .with_limits(limits.clone())
            .explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_time_cap);
        assert!(!report.exhausted);
        // Even a space smaller than one check interval must see the
        // expired budget on the very first expansion, like the sequential
        // engine — not sweep the space and claim exhaustion.
        let tiny = parse_program("nop\nhalt").unwrap();
        let report = ParallelExplorer::new(&tiny, &dets())
            .with_workers(2)
            .with_limits(limits)
            .explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_time_cap);
        assert!(!report.exhausted);
        assert_eq!(report.states_explored, 0);
    }

    #[test]
    fn duplicate_seeds_collapse() {
        let p = parse_program("print $1\nhalt").unwrap();
        let s = MachineState::new();
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(3)
            .explore(vec![s.clone(), s.clone(), s], &Predicate::Any);
        assert_eq!(report.solutions.len(), 1);
        assert!(report.exhausted);
    }

    #[test]
    fn empty_seed_set_exhausts_immediately() {
        let p = parse_program("halt").unwrap();
        let report = ParallelExplorer::new(&p, &dets())
            .with_workers(2)
            .explore(Vec::new(), &Predicate::Any);
        assert!(report.exhausted);
        assert_eq!(report.states_explored, 0);
        assert_eq!(report.workers, 2);
    }

    #[test]
    fn sharded_visited_set_counts_inserts() {
        let visited = ShardedVisited::new(3);
        for v in 0..500u128 {
            assert!(visited.insert(Fingerprint(v * 0x9E37_79B9_7F4A_7C15)));
        }
        for v in 0..500u128 {
            assert!(!visited.insert(Fingerprint(v * 0x9E37_79B9_7F4A_7C15)));
        }
        assert_eq!(visited.len(), 500);
    }

    #[test]
    fn explore_auto_routes_by_budget() {
        let (p, s) = forked_program();
        // A tiny budget stays sequential regardless of core count.
        let small = Explorer::new(&p, &dets())
            .with_limits(SearchLimits {
                max_states: 100,
                ..SearchLimits::default()
            })
            .explore_auto(vec![s.clone()], &Predicate::Any);
        assert_eq!(small.workers, 1);
        // A big budget engages as many workers as the hardware offers (on
        // a single-core machine the sequential engine is the right call).
        let big = Explorer::new(&p, &dets()).explore_auto(vec![s.clone()], &Predicate::Any);
        assert_eq!(big.workers, available_workers());
        assert_eq!(big.terminals, small.terminals, "same exhaustive answer");
        // A workers hint of 1 forces the sequential path even on big
        // budgets (nested-parallel callers use this to avoid
        // oversubscription).
        let hinted = Explorer::new(&p, &dets())
            .with_workers_hint(Some(1))
            .explore_auto(vec![s], &Predicate::Any);
        assert_eq!(hinted.workers, 1);
        assert_eq!(hinted.steals, 0);
        assert_eq!(hinted.terminals, small.terminals);
    }

    #[test]
    fn trace_nodes_reconstruct_paths() {
        let root = TraceNode::root(0);
        let deep = root.child(1).child(2).child(5);
        assert_eq!(deep.reconstruct(), vec![0, 1, 2, 5]);
        assert_eq!(root.reconstruct(), vec![0]);
    }
}
