//! Wire codecs for the checker's report and configuration types.
//!
//! These extend the state codec (`sympl_machine::codec`) upward: a
//! [`Solution`] is an encoded state plus its witness trace, a
//! [`SearchReport`] is solutions plus the exploration statistics, and a
//! [`SearchLimits`] record carries everything a remote worker needs to run
//! the *same* search — the watchdog/fork bounds, the state/solution/time
//! budgets, the frontier policy, and the spill budget. Together with the
//! predicate codec they are the payload vocabulary of the `sympl_wire`
//! network protocol.
//!
//! The same varint/tag discipline as the lower layers applies: every
//! variant choice is a tag byte, every count a varint, every record
//! self-delimiting. [`encode_predicate`] is the one fallible encoder:
//! [`Predicate::Custom`] wraps an arbitrary closure and has no wire
//! representation, so encoding it surfaces [`CodecError::Unsupported`]
//! instead of silently shipping a different query.

use sympl_machine::codec::{
    decode_exec_limits, decode_state, encode_exec_limits, encode_state, CodecError,
};
use sympl_symbolic::codec::{
    decode_bool, decode_duration, decode_f64, decode_i64, decode_opt_duration, decode_u64,
    encode_bool, encode_duration, encode_f64, encode_i64, encode_opt_duration, encode_u64,
};

use crate::{
    FrontierPolicy, OutcomeCounts, Predicate, PriorityHeuristic, SearchLimits, SearchReport,
    Solution,
};

fn decode_usize(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    usize::try_from(decode_u64(bytes, pos)?).map_err(|_| CodecError::Overflow)
}

fn take_byte(bytes: &[u8], pos: &mut usize) -> Result<u8, CodecError> {
    let &b = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
    *pos += 1;
    Ok(b)
}

const PRED_OUTPUT_CONTAINS_ERR: u8 = 0;
const PRED_WRONG_OUTPUT: u8 = 1;
const PRED_EXACT_OUTPUT: u8 = 2;
const PRED_CRASHED: u8 = 3;
const PRED_HUNG: u8 = 4;
const PRED_DETECTED: u8 = 5;
const PRED_ANY: u8 = 6;

/// Appends a [`Predicate`].
///
/// # Errors
///
/// [`CodecError::Unsupported`] for [`Predicate::Custom`]: closures cannot
/// cross the wire, so distributed campaigns must use the data-carrying
/// variants.
pub fn encode_predicate(predicate: &Predicate, buf: &mut Vec<u8>) -> Result<(), CodecError> {
    match predicate {
        Predicate::OutputContainsErr => buf.push(PRED_OUTPUT_CONTAINS_ERR),
        Predicate::WrongOutput { expected } => {
            buf.push(PRED_WRONG_OUTPUT);
            encode_i64_seq(expected, buf);
        }
        Predicate::ExactOutput { output } => {
            buf.push(PRED_EXACT_OUTPUT);
            encode_i64_seq(output, buf);
        }
        Predicate::Crashed => buf.push(PRED_CRASHED),
        Predicate::Hung => buf.push(PRED_HUNG),
        Predicate::Detected => buf.push(PRED_DETECTED),
        Predicate::Any => buf.push(PRED_ANY),
        Predicate::Custom(_) => return Err(CodecError::Unsupported("custom predicate")),
    }
    Ok(())
}

/// Decodes a [`Predicate`] at `*pos`, advancing it.
///
/// # Errors
///
/// [`CodecError::BadTag`] on an unknown tag, plus the varint errors.
pub fn decode_predicate(bytes: &[u8], pos: &mut usize) -> Result<Predicate, CodecError> {
    match take_byte(bytes, pos)? {
        PRED_OUTPUT_CONTAINS_ERR => Ok(Predicate::OutputContainsErr),
        PRED_WRONG_OUTPUT => Ok(Predicate::WrongOutput {
            expected: decode_i64_seq(bytes, pos)?,
        }),
        PRED_EXACT_OUTPUT => Ok(Predicate::ExactOutput {
            output: decode_i64_seq(bytes, pos)?,
        }),
        PRED_CRASHED => Ok(Predicate::Crashed),
        PRED_HUNG => Ok(Predicate::Hung),
        PRED_DETECTED => Ok(Predicate::Detected),
        PRED_ANY => Ok(Predicate::Any),
        tag => Err(CodecError::BadTag {
            what: "predicate",
            tag,
        }),
    }
}

/// Appends a zigzag-varint integer sequence with a count prefix.
pub fn encode_i64_seq(values: &[i64], buf: &mut Vec<u8>) {
    encode_u64(values.len() as u64, buf);
    for &v in values {
        encode_i64(v, buf);
    }
}

/// Decodes an integer sequence at `*pos`, advancing it.
///
/// # Errors
///
/// Propagates the varint errors.
pub fn decode_i64_seq(bytes: &[u8], pos: &mut usize) -> Result<Vec<i64>, CodecError> {
    let n = decode_usize(bytes, pos)?;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(decode_i64(bytes, pos)?);
    }
    Ok(out)
}

const POLICY_BFS: u8 = 0;
const POLICY_DFS: u8 = 1;
const POLICY_PRIORITY: u8 = 2;
const POLICY_IDDFS: u8 = 3;

const HEUR_CONSTRAINTS: u8 = 0;
const HEUR_DEPTH: u8 = 1;
const HEUR_OUTPUT: u8 = 2;

/// Appends a [`FrontierPolicy`]: a tag byte plus the variant's payload.
pub fn encode_policy(policy: FrontierPolicy, buf: &mut Vec<u8>) {
    match policy {
        FrontierPolicy::Bfs => buf.push(POLICY_BFS),
        FrontierPolicy::Dfs => buf.push(POLICY_DFS),
        FrontierPolicy::Priority(h) => {
            buf.push(POLICY_PRIORITY);
            buf.push(match h {
                PriorityHeuristic::ConstraintMapSize => HEUR_CONSTRAINTS,
                PriorityHeuristic::Depth => HEUR_DEPTH,
                PriorityHeuristic::OutputLen => HEUR_OUTPUT,
            });
        }
        FrontierPolicy::IterativeDeepening {
            initial_depth,
            depth_step,
        } => {
            buf.push(POLICY_IDDFS);
            encode_u64(initial_depth, buf);
            encode_u64(depth_step, buf);
        }
    }
}

/// Decodes a [`FrontierPolicy`] at `*pos`, advancing it.
///
/// # Errors
///
/// [`CodecError::BadTag`] on an unknown policy or heuristic tag.
pub fn decode_policy(bytes: &[u8], pos: &mut usize) -> Result<FrontierPolicy, CodecError> {
    match take_byte(bytes, pos)? {
        POLICY_BFS => Ok(FrontierPolicy::Bfs),
        POLICY_DFS => Ok(FrontierPolicy::Dfs),
        POLICY_PRIORITY => Ok(FrontierPolicy::Priority(match take_byte(bytes, pos)? {
            HEUR_CONSTRAINTS => PriorityHeuristic::ConstraintMapSize,
            HEUR_DEPTH => PriorityHeuristic::Depth,
            HEUR_OUTPUT => PriorityHeuristic::OutputLen,
            tag => {
                return Err(CodecError::BadTag {
                    what: "priority heuristic",
                    tag,
                })
            }
        })),
        POLICY_IDDFS => Ok(FrontierPolicy::IterativeDeepening {
            initial_depth: decode_u64(bytes, pos)?,
            depth_step: decode_u64(bytes, pos)?,
        }),
        tag => Err(CodecError::BadTag {
            what: "frontier policy",
            tag,
        }),
    }
}

/// Appends a full [`SearchLimits`] record — everything a remote worker
/// needs to reproduce a search's budgets, including the frontier policy
/// and spill budget.
pub fn encode_search_limits(limits: &SearchLimits, buf: &mut Vec<u8>) {
    encode_exec_limits(&limits.exec, buf);
    encode_u64(limits.max_states as u64, buf);
    encode_u64(limits.max_solutions as u64, buf);
    encode_opt_duration(limits.max_time, buf);
    encode_policy(limits.policy, buf);
    match limits.max_frontier_bytes {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            encode_u64(v as u64, buf);
        }
    }
}

/// Decodes a [`SearchLimits`] at `*pos`, advancing it.
///
/// # Errors
///
/// Any [`CodecError`] on truncated or malformed bytes.
pub fn decode_search_limits(bytes: &[u8], pos: &mut usize) -> Result<SearchLimits, CodecError> {
    Ok(SearchLimits {
        exec: decode_exec_limits(bytes, pos)?,
        max_states: decode_usize(bytes, pos)?,
        max_solutions: decode_usize(bytes, pos)?,
        max_time: decode_opt_duration(bytes, pos)?,
        policy: decode_policy(bytes, pos)?,
        max_frontier_bytes: if decode_bool(bytes, pos)? {
            Some(decode_usize(bytes, pos)?)
        } else {
            None
        },
    })
}

/// Appends a [`Solution`]: the encoded terminal state plus its witness
/// trace (count, then per-hop program counters as varints).
pub fn encode_solution(solution: &Solution, buf: &mut Vec<u8>) {
    encode_state(&solution.state, buf);
    encode_u64(solution.trace.len() as u64, buf);
    for &pc in &solution.trace {
        encode_u64(pc as u64, buf);
    }
}

/// Decodes a [`Solution`] at `*pos`, advancing it.
///
/// # Errors
///
/// Any [`CodecError`] from the state codec or the trace varints.
pub fn decode_solution(bytes: &[u8], pos: &mut usize) -> Result<Solution, CodecError> {
    let (state, consumed) = decode_state(&bytes[*pos..])?;
    *pos += consumed;
    let n = decode_usize(bytes, pos)?;
    let mut trace = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        trace.push(decode_usize(bytes, pos)?);
    }
    Ok(Solution { state, trace })
}

/// Appends an [`OutcomeCounts`] tally.
pub fn encode_outcome_counts(counts: &OutcomeCounts, buf: &mut Vec<u8>) {
    encode_u64(counts.halted as u64, buf);
    encode_u64(counts.crashed as u64, buf);
    encode_u64(counts.hung as u64, buf);
    encode_u64(counts.detected as u64, buf);
}

/// Decodes an [`OutcomeCounts`] at `*pos`, advancing it.
///
/// # Errors
///
/// Propagates the varint errors.
pub fn decode_outcome_counts(bytes: &[u8], pos: &mut usize) -> Result<OutcomeCounts, CodecError> {
    Ok(OutcomeCounts {
        halted: decode_usize(bytes, pos)?,
        crashed: decode_usize(bytes, pos)?,
        hung: decode_usize(bytes, pos)?,
        detected: decode_usize(bytes, pos)?,
    })
}

/// Appends a full [`SearchReport`]: solutions, statistics, and truncation
/// flags, exactly the fields a coordinator pools into campaign results.
///
/// `memo_hits`/`memo_states_skipped` are deliberately **not** encoded:
/// they are process-local accounting of where a result came from, not part
/// of the result itself, and keeping them off the wire leaves the frame
/// format (and the checked-in golden vectors) byte-identical whether or
/// not a memo store was attached.
pub fn encode_search_report(report: &SearchReport, buf: &mut Vec<u8>) {
    encode_u64(report.solutions.len() as u64, buf);
    for sol in &report.solutions {
        encode_solution(sol, buf);
    }
    encode_u64(report.states_explored as u64, buf);
    encode_outcome_counts(&report.terminals, buf);
    encode_u64(report.duplicate_hits as u64, buf);
    encode_bool(report.exhausted, buf);
    encode_bool(report.hit_state_cap, buf);
    encode_bool(report.hit_solution_cap, buf);
    encode_bool(report.hit_time_cap, buf);
    encode_duration(report.elapsed, buf);
    encode_f64(report.states_per_second, buf);
    encode_u64(report.workers as u64, buf);
    encode_u64(report.steals as u64, buf);
    encode_u64(report.peak_frontier_len as u64, buf);
    encode_u64(report.peak_frontier_bytes as u64, buf);
    encode_u64(report.spilled_states as u64, buf);
}

/// Decodes a [`SearchReport`] at `*pos`, advancing it.
///
/// # Errors
///
/// Any [`CodecError`] on truncated or malformed bytes — including a
/// non-finite `states_per_second`, which no encoder emits
/// ([`SearchReport::throughput`] guards the division) and which would
/// break `SearchReport`'s `Eq` reflexivity if let through.
pub fn decode_search_report(bytes: &[u8], pos: &mut usize) -> Result<SearchReport, CodecError> {
    let n = decode_usize(bytes, pos)?;
    let mut solutions = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        solutions.push(decode_solution(bytes, pos)?);
    }
    let report = SearchReport {
        solutions,
        states_explored: decode_usize(bytes, pos)?,
        terminals: decode_outcome_counts(bytes, pos)?,
        duplicate_hits: decode_usize(bytes, pos)?,
        exhausted: decode_bool(bytes, pos)?,
        hit_state_cap: decode_bool(bytes, pos)?,
        hit_solution_cap: decode_bool(bytes, pos)?,
        hit_time_cap: decode_bool(bytes, pos)?,
        elapsed: decode_duration(bytes, pos)?,
        states_per_second: decode_f64(bytes, pos)?,
        workers: decode_usize(bytes, pos)?,
        steals: decode_usize(bytes, pos)?,
        peak_frontier_len: decode_usize(bytes, pos)?,
        peak_frontier_bytes: decode_usize(bytes, pos)?,
        spilled_states: decode_usize(bytes, pos)?,
        // Not on the wire (see `encode_search_report`): a decoded report
        // was computed elsewhere, so locally it answered no memo probes.
        memo_hits: 0,
        memo_states_skipped: 0,
    };
    if !report.states_per_second.is_finite() {
        return Err(CodecError::Unsupported("non-finite states_per_second"));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_machine::MachineState;
    use sympl_symbolic::Value;

    fn sample_solution() -> Solution {
        let mut state = MachineState::with_input(vec![4, 5]);
        state.set_reg(sympl_asm::Reg::r(2), Value::Err);
        state.set_status(sympl_machine::Status::Halted);
        Solution {
            state,
            trace: vec![0, 1, 5, 6, 6],
        }
    }

    #[test]
    fn predicates_roundtrip_and_custom_is_rejected() {
        let preds = [
            Predicate::OutputContainsErr,
            Predicate::WrongOutput {
                expected: vec![1, -2, 3],
            },
            Predicate::ExactOutput { output: vec![] },
            Predicate::Crashed,
            Predicate::Hung,
            Predicate::Detected,
            Predicate::Any,
        ];
        for p in preds {
            let mut buf = Vec::new();
            encode_predicate(&p, &mut buf).unwrap();
            let mut pos = 0;
            let decoded = decode_predicate(&buf, &mut pos).unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(format!("{decoded:?}"), format!("{p:?}"));
        }
        let custom = Predicate::custom(|_| true);
        assert_eq!(
            encode_predicate(&custom, &mut Vec::new()),
            Err(CodecError::Unsupported("custom predicate"))
        );
        assert!(matches!(
            decode_predicate(&[99], &mut 0),
            Err(CodecError::BadTag {
                what: "predicate",
                ..
            })
        ));
    }

    #[test]
    fn policies_and_limits_roundtrip() {
        let policies = [
            FrontierPolicy::Bfs,
            FrontierPolicy::Dfs,
            FrontierPolicy::Priority(PriorityHeuristic::ConstraintMapSize),
            FrontierPolicy::Priority(PriorityHeuristic::Depth),
            FrontierPolicy::Priority(PriorityHeuristic::OutputLen),
            FrontierPolicy::IterativeDeepening {
                initial_depth: 7,
                depth_step: 13,
            },
        ];
        for policy in policies {
            let limits = SearchLimits {
                policy,
                max_frontier_bytes: Some(1 << 20),
                max_time: Some(std::time::Duration::from_millis(1234)),
                ..SearchLimits::default()
            };
            let mut buf = Vec::new();
            encode_search_limits(&limits, &mut buf);
            let mut pos = 0;
            let decoded = decode_search_limits(&buf, &mut pos).unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(decoded.policy, limits.policy);
            assert_eq!(decoded.exec, limits.exec);
            assert_eq!(decoded.max_states, limits.max_states);
            assert_eq!(decoded.max_solutions, limits.max_solutions);
            assert_eq!(decoded.max_time, limits.max_time);
            assert_eq!(decoded.max_frontier_bytes, limits.max_frontier_bytes);
        }
    }

    #[test]
    fn solutions_and_reports_roundtrip() {
        let report = SearchReport {
            solutions: vec![sample_solution(), sample_solution()],
            states_explored: 1234,
            terminals: OutcomeCounts {
                halted: 3,
                crashed: 1,
                hung: 0,
                detected: 2,
            },
            duplicate_hits: 55,
            exhausted: true,
            hit_state_cap: false,
            hit_solution_cap: true,
            hit_time_cap: false,
            elapsed: std::time::Duration::from_micros(987_654),
            states_per_second: 1_234_567.89,
            workers: 8,
            steals: 17,
            peak_frontier_len: 99,
            peak_frontier_bytes: 4096,
            spilled_states: 12,
            memo_hits: 0,
            memo_states_skipped: 0,
        };
        let mut buf = Vec::new();
        encode_search_report(&report, &mut buf);
        let mut pos = 0;
        let decoded = decode_search_report(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(decoded, report, "full Eq round-trip");
        // Decoded solution states carry live fingerprint caches.
        assert_eq!(
            decoded.solutions[0].state.fingerprint(),
            decoded.solutions[0].state.fingerprint_from_scratch()
        );
    }

    #[test]
    fn truncated_reports_error_cleanly() {
        let mut buf = Vec::new();
        encode_search_report(&SearchReport::default(), &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_search_report(&buf[..cut], &mut 0).is_err());
        }
    }

    #[test]
    fn non_finite_throughput_is_rejected() {
        // A hostile/corrupt frame must not smuggle NaN into a type whose
        // `Eq` relies on throughput never being NaN.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let report = SearchReport {
                states_per_second: bad,
                ..SearchReport::default()
            };
            let mut buf = Vec::new();
            encode_search_report(&report, &mut buf);
            assert_eq!(
                decode_search_report(&buf, &mut 0),
                Err(CodecError::Unsupported("non-finite states_per_second"))
            );
        }
    }
}
