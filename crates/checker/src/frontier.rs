//! The pluggable frontier subsystem: which state the engines expand next,
//! and where the not-yet-expanded states live.
//!
//! Both engines ([`crate::Explorer`] and [`crate::ParallelExplorer`]) drive
//! their frontier exclusively through the [`FrontierQueue`] trait — push,
//! pop, steal-half, byte accounting, and round control all live behind it,
//! so **adding a frontier policy is a change to this file only**: no engine,
//! campaign, or report code matches on the policy anywhere else (the old
//! two-variant `Frontier` enum was matched inline in both engine loops and
//! in the steal path).
//!
//! # Policies and their determinism contracts
//!
//! A search that **exhausts** its state space expands every distinct state
//! exactly once under *any* policy, so outcome counts and the canonical
//! solution set are policy-independent — the equivalence property tests pin
//! Bfs/Dfs/Priority/Spilling against each other on the paper workloads.
//! What each policy additionally guarantees:
//!
//! * [`FrontierPolicy::Bfs`] — FIFO; sequential searches find shortest
//!   witnesses first (Maude's `search =>!`). The default.
//! * [`FrontierPolicy::Dfs`] — LIFO; dives to terminals with a much
//!   smaller live frontier; witnesses are not length-minimal.
//! * [`FrontierPolicy::Priority`] — binary heap on a pluggable
//!   [`PriorityHeuristic`], ties broken by the state's 128-bit fingerprint
//!   (smallest first), so the expansion order — and therefore every
//!   truncated-search prefix — is a pure function of the state *contents*,
//!   never of allocation or scheduling accidents.
//! * [`FrontierPolicy::IterativeDeepening`] — depth-bounded DFS restarted
//!   from the root seeds with a rising bound and a **dedup reset per
//!   round**; its live frontier is O(depth), the memory-minimal discipline
//!   for catastrophic hunts. Completed searches report the final (deepest,
//!   complete) round, so terminal counts and solutions match the other
//!   policies; `states_explored` counts every round's work, which is the
//!   honest IDDFS re-expansion cost.
//!
//! # Disk spilling
//!
//! [`SpillingFrontier`] wraps the FIFO/LIFO disciplines with a bounded
//! in-RAM window: overflow is encoded through the compact state codec
//! (`sympl_machine::codec`) and appended to sequential segment files in a
//! private temp directory; when the window drains, the appropriate segment
//! is replayed back (decoded states re-derive their rolling fingerprint
//! folds, pinned to `fingerprint_from_scratch` by the codec tests). The
//! strata are arranged so FIFO and LIFO pop order are preserved **exactly**
//! — a spilling search expands states in the same order as its unbounded
//! twin, which is what lets exhaustive searches whose frontier exceeds RAM
//! reproduce the unbounded run's outcome counts and solution sets verbatim.
//! Copy-on-write sharing does not survive a spill round-trip (the merged
//! image is written flat); that trade is the point — RAM is the scarce
//! resource.
//!
//! The spill budget rides in `SearchLimits::max_frontier_bytes`; the
//! priority and iterative-deepening policies ignore it (a heap spill would
//! break the global order, and iterative deepening's frontier is O(depth)
//! by design — pick one of them *or* a spilling Bfs/Dfs window, not both).

use std::collections::{BinaryHeap, VecDeque};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sympl_machine::{decode_state, encode_state, Fingerprint, MachineState};

/// The frontier discipline configuration: which state the engine expands
/// next. See the [module docs](self) for each policy's determinism
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontierPolicy {
    /// Breadth-first (the paper's exhaustive `search =>!`): shortest
    /// witness traces are found first.
    #[default]
    Bfs,
    /// Depth-first: reaches terminals with a much smaller live frontier;
    /// witness traces are not length-minimal.
    Dfs,
    /// Best-first on a pluggable heuristic, ties broken canonically by
    /// state fingerprint.
    Priority(PriorityHeuristic),
    /// Depth-bounded DFS with a rising bound, re-seeded from the roots
    /// with a dedup reset each round.
    IterativeDeepening {
        /// Depth bound (in executed instructions past the shallowest seed)
        /// of the first round.
        initial_depth: u64,
        /// Bound increase per round.
        depth_step: u64,
    },
}

/// The key a [`FrontierPolicy::Priority`] frontier orders by. Largest key
/// pops first; ties break by smallest fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityHeuristic {
    /// Most-constrained first: states whose constraint map has the most
    /// entries are deepest into the interesting (symbolic) branching and
    /// closest to resolution or pruning.
    ConstraintMapSize,
    /// Deepest first (by the watchdog instruction counter): a quasi-DFS
    /// with a single globally-ordered frontier.
    Depth,
    /// Longest output first: drives toward states that have already
    /// produced observable behavior — useful when the predicate is about
    /// the output stream.
    OutputLen,
}

impl PriorityHeuristic {
    fn key(self, state: &MachineState) -> u64 {
        match self {
            PriorityHeuristic::ConstraintMapSize => state.constraints().len() as u64,
            PriorityHeuristic::Depth => state.steps(),
            PriorityHeuristic::OutputLen => state.output().len() as u64,
        }
    }
}

impl FrontierPolicy {
    /// Iterative-deepening with the default round geometry (first bound 64
    /// instructions past the shallowest seed, +64 per round).
    #[must_use]
    pub fn iterative_deepening() -> Self {
        FrontierPolicy::IterativeDeepening {
            initial_depth: 64,
            depth_step: 64,
        }
    }

    /// Whether this policy restarts in rounds (engines must reset their
    /// visited set between rounds; see [`FrontierQueue::next_round`]).
    #[must_use]
    pub fn is_iterative(&self) -> bool {
        matches!(self, FrontierPolicy::IterativeDeepening { .. })
    }

    /// One-line determinism contract per policy, for reports and CLI help.
    /// Exhausted searches are policy-independent (same outcome counts and
    /// canonical solution set); this describes what each policy additionally
    /// guarantees about *order*.
    #[must_use]
    pub fn determinism_contract(&self) -> &'static str {
        match self {
            FrontierPolicy::Bfs => {
                "FIFO: sequential searches find shortest witnesses first; \
                 exhausted searches are policy-independent"
            }
            FrontierPolicy::Dfs => {
                "LIFO: smallest live frontier to a first witness; \
                 witness traces are not length-minimal"
            }
            FrontierPolicy::Priority(_) => {
                "best-first: expansion order is a pure function of state \
                 contents (heuristic key, then fingerprint), so truncated \
                 prefixes are reproducible"
            }
            FrontierPolicy::IterativeDeepening { .. } => {
                "depth-bounded DFS rounds with per-round dedup reset: \
                 completed searches report the final complete round; \
                 states_explored includes the per-round re-expansion cost"
            }
        }
    }

    /// Builds a frontier queue implementing this policy. `max_frontier_bytes`
    /// bounds the in-RAM window for Bfs/Dfs (overflow spills to disk); the
    /// priority and iterative-deepening policies ignore it (see the module
    /// docs).
    #[must_use]
    pub fn build<M: Send + Clone + 'static>(
        &self,
        max_frontier_bytes: Option<usize>,
    ) -> Box<dyn FrontierQueue<M>> {
        match (*self, max_frontier_bytes) {
            (FrontierPolicy::Bfs, None) => Box::new(FifoQueue::new()),
            (FrontierPolicy::Bfs, Some(budget)) => {
                Box::new(SpillingFrontier::new(SpillOrder::Fifo, budget))
            }
            (FrontierPolicy::Dfs, None) => Box::new(LifoQueue::new()),
            (FrontierPolicy::Dfs, Some(budget)) => {
                Box::new(SpillingFrontier::new(SpillOrder::Lifo, budget))
            }
            (FrontierPolicy::Priority(h), _) => Box::new(PriorityFrontier::new(h)),
            (
                FrontierPolicy::IterativeDeepening {
                    initial_depth,
                    depth_step,
                },
                _,
            ) => Box::new(IddQueue::new(initial_depth, depth_step)),
        }
    }
}

/// A frontier of not-yet-expanded states, each carrying an engine-chosen
/// trace token `M` (the sequential engine's parent-arena index, the
/// parallel engine's `Arc` trace node).
///
/// Everything the engines do to a frontier goes through this trait —
/// including work stealing and iterative-deepening round control — so a new
/// policy is a new implementation here and nothing else.
pub trait FrontierQueue<M: Send>: Send {
    /// Enqueues an initial (root) state. Differs from [`push`](Self::push)
    /// only for policies that treat roots specially: iterative deepening
    /// records them for re-seeding and exempts them from the depth bound.
    fn seed(&mut self, state: MachineState, meta: M) {
        self.push(state, meta);
    }

    /// Enqueues a successor state. Policies may drop it (iterative
    /// deepening cuts beyond-bound states and remembers that a deeper round
    /// is needed).
    fn push(&mut self, state: MachineState, meta: M);

    /// Removes and returns the next state to expand, or `None` when the
    /// frontier is empty (see [`next_round`](Self::next_round) before
    /// concluding the search space is swept).
    fn pop(&mut self) -> Option<(MachineState, M)>;

    /// Number of states in the frontier (including any spilled to disk).
    fn len(&self) -> usize;

    /// Whether the frontier holds no states.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of frontier state held **in RAM** (spilled states
    /// excluded — that is the budget a spilling frontier enforces).
    fn approx_bytes(&self) -> usize;

    /// Removes and returns roughly half the frontier for a work-stealing
    /// thief to enqueue locally. Which half is the policy's choice: the
    /// FIFO/LIFO disciplines (and their spilling windows) hand over the
    /// half the owner would consume *last*, so a steal races minimally
    /// with the victim's own pops; the best-first frontier instead hands
    /// over the current *best* half, so both workers immediately drive
    /// globally-promising states. An empty return means there was nothing
    /// worth taking right now.
    fn steal_half(&mut self) -> Vec<(MachineState, M)>;

    /// Round control for restarting policies: called when [`pop`](Self::pop)
    /// returned `None`. `Some(roots)` means another round must run — the
    /// engine resets its visited set (and per-round report state) and
    /// re-enqueues the returned roots through [`seed`](Self::seed)/dedup.
    /// `None` (the default, and every non-restarting policy) means the
    /// space is swept within the final bound.
    fn next_round(&mut self) -> Option<Vec<(MachineState, M)>> {
        None
    }

    /// Cumulative number of states this frontier has written to disk
    /// (always 0 for purely in-RAM policies).
    fn spilled_states(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------
// In-RAM disciplines
// ---------------------------------------------------------------------

/// The FIFO (breadth-first) frontier.
#[derive(Debug, Default)]
pub struct FifoQueue<M> {
    items: VecDeque<(MachineState, M)>,
    bytes: usize,
}

impl<M> FifoQueue<M> {
    /// An empty FIFO frontier.
    #[must_use]
    pub fn new() -> Self {
        FifoQueue {
            items: VecDeque::new(),
            bytes: 0,
        }
    }
}

impl<M: Send> FrontierQueue<M> for FifoQueue<M> {
    fn push(&mut self, state: MachineState, meta: M) {
        self.bytes += state.approx_bytes();
        self.items.push_back((state, meta));
    }

    fn pop(&mut self) -> Option<(MachineState, M)> {
        let item = self.items.pop_front()?;
        self.bytes -= item.0.approx_bytes();
        Some(item)
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn steal_half(&mut self) -> Vec<(MachineState, M)> {
        // The owner consumes the front; give away the back half.
        let take = self.items.len().div_ceil(2);
        let taken: Vec<_> = self.items.split_off(self.items.len() - take).into();
        self.bytes -= taken.iter().map(|(s, _)| s.approx_bytes()).sum::<usize>();
        taken
    }
}

/// The LIFO (depth-first) frontier.
#[derive(Debug, Default)]
pub struct LifoQueue<M> {
    items: Vec<(MachineState, M)>,
    bytes: usize,
}

impl<M> LifoQueue<M> {
    /// An empty LIFO frontier.
    #[must_use]
    pub fn new() -> Self {
        LifoQueue {
            items: Vec::new(),
            bytes: 0,
        }
    }
}

impl<M: Send> FrontierQueue<M> for LifoQueue<M> {
    fn push(&mut self, state: MachineState, meta: M) {
        self.bytes += state.approx_bytes();
        self.items.push((state, meta));
    }

    fn pop(&mut self) -> Option<(MachineState, M)> {
        let item = self.items.pop()?;
        self.bytes -= item.0.approx_bytes();
        Some(item)
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn steal_half(&mut self) -> Vec<(MachineState, M)> {
        // The owner consumes the back (top of stack); give away the front.
        let take = self.items.len().div_ceil(2);
        let taken: Vec<_> = self.items.drain(..take).collect();
        self.bytes -= taken.iter().map(|(s, _)| s.approx_bytes()).sum::<usize>();
        taken
    }
}

// ---------------------------------------------------------------------
// Priority frontier
// ---------------------------------------------------------------------

struct PrioEntry<M> {
    key: u64,
    fingerprint: Fingerprint,
    state: MachineState,
    meta: M,
}

impl<M> PartialEq for PrioEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.fingerprint == other.fingerprint
    }
}

impl<M> Eq for PrioEntry<M> {}

impl<M> Ord for PrioEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: largest key first; among equal keys the *smallest*
        // fingerprint pops first (canonical tie-break), so the expansion
        // order is a pure function of state contents.
        (self.key, std::cmp::Reverse(self.fingerprint))
            .cmp(&(other.key, std::cmp::Reverse(other.fingerprint)))
    }
}

impl<M> PartialOrd for PrioEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The best-first frontier: a binary heap on a [`PriorityHeuristic`] key
/// with the canonical fingerprint tie-break.
pub struct PriorityFrontier<M> {
    heap: BinaryHeap<PrioEntry<M>>,
    heuristic: PriorityHeuristic,
    bytes: usize,
}

impl<M> PriorityFrontier<M> {
    /// An empty best-first frontier ordered by `heuristic`.
    #[must_use]
    pub fn new(heuristic: PriorityHeuristic) -> Self {
        PriorityFrontier {
            heap: BinaryHeap::new(),
            heuristic,
            bytes: 0,
        }
    }
}

impl<M: Send> FrontierQueue<M> for PriorityFrontier<M> {
    fn push(&mut self, state: MachineState, meta: M) {
        self.bytes += state.approx_bytes();
        self.heap.push(PrioEntry {
            key: self.heuristic.key(&state),
            fingerprint: state.fingerprint(),
            state,
            meta,
        });
    }

    fn pop(&mut self) -> Option<(MachineState, M)> {
        let entry = self.heap.pop()?;
        self.bytes -= entry.state.approx_bytes();
        Some((entry.state, entry.meta))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn steal_half(&mut self) -> Vec<(MachineState, M)> {
        // Give the thief the current best half: O(k log n), and the thief
        // re-heaps on push so the global best-first tendency survives the
        // migration.
        let take = self.heap.len().div_ceil(2);
        let mut taken = Vec::with_capacity(take);
        for _ in 0..take {
            match self.pop() {
                Some(item) => taken.push(item),
                None => break,
            }
        }
        taken
    }
}

// ---------------------------------------------------------------------
// Iterative deepening
// ---------------------------------------------------------------------

/// The iterative-deepening frontier: a depth-bounded LIFO stack that
/// remembers its root seeds and restarts with a deeper bound whenever a
/// round cut any successor.
pub struct IddQueue<M> {
    stack: Vec<(MachineState, M)>,
    roots: Vec<(MachineState, M)>,
    /// The shallowest seed's instruction counter; depth is measured from
    /// here so concrete-prefix steps don't eat the bound.
    base: u64,
    bound: u64,
    step: u64,
    cut: bool,
    rounds_started: bool,
    bytes: usize,
}

impl<M> IddQueue<M> {
    /// An empty iterative-deepening frontier with the given first-round
    /// bound and per-round increment.
    #[must_use]
    pub fn new(initial_depth: u64, depth_step: u64) -> Self {
        IddQueue {
            stack: Vec::new(),
            roots: Vec::new(),
            base: u64::MAX,
            bound: initial_depth,
            step: depth_step.max(1),
            cut: false,
            rounds_started: false,
            bytes: 0,
        }
    }
}

impl<M: Send + Clone> FrontierQueue<M> for IddQueue<M> {
    fn seed(&mut self, state: MachineState, meta: M) {
        // Roots are recorded once (the first round's seeds) and are exempt
        // from the depth bound; re-seeds after `next_round` come back
        // through here with `rounds_started` already set.
        if !self.rounds_started {
            self.base = self.base.min(state.steps());
            self.roots.push((state.clone(), meta.clone()));
        }
        self.bytes += state.approx_bytes();
        self.stack.push((state, meta));
    }

    fn push(&mut self, state: MachineState, meta: M) {
        let base = if self.base == u64::MAX { 0 } else { self.base };
        if state.steps().saturating_sub(base) > self.bound {
            // Beyond this round's bound: cut, and remember that the space
            // is not swept until a deeper round runs clean.
            self.cut = true;
            return;
        }
        self.bytes += state.approx_bytes();
        self.stack.push((state, meta));
    }

    fn pop(&mut self) -> Option<(MachineState, M)> {
        let item = self.stack.pop()?;
        self.bytes -= item.0.approx_bytes();
        Some(item)
    }

    fn len(&self) -> usize {
        self.stack.len()
    }

    fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn steal_half(&mut self) -> Vec<(MachineState, M)> {
        // The sequential engine is the only driver of this queue (the
        // parallel engine runs its rounds on bounded LIFO deques instead),
        // but honor the contract anyway: owner consumes the top.
        let take = self.stack.len().div_ceil(2);
        let taken: Vec<_> = self.stack.drain(..take).collect();
        self.bytes -= taken.iter().map(|(s, _)| s.approx_bytes()).sum::<usize>();
        taken
    }

    fn next_round(&mut self) -> Option<Vec<(MachineState, M)>> {
        if !self.cut {
            return None; // the last round ran clean: the space is swept.
        }
        self.cut = false;
        self.rounds_started = true;
        self.bound = self.bound.saturating_add(self.step);
        Some(self.roots.clone())
    }
}

/// A depth-bounded LIFO deque for the parallel engine's iterative-deepening
/// rounds: the round coordinator owns the bound and the shared cut flag,
/// one of these runs per worker per round.
pub(crate) struct BoundedLifoQueue<M> {
    inner: LifoQueue<M>,
    base: u64,
    bound: u64,
    cut: Arc<AtomicBool>,
}

impl<M> BoundedLifoQueue<M> {
    pub(crate) fn new(base: u64, bound: u64, cut: Arc<AtomicBool>) -> Self {
        BoundedLifoQueue {
            inner: LifoQueue::new(),
            base,
            bound,
            cut,
        }
    }
}

impl<M: Send> FrontierQueue<M> for BoundedLifoQueue<M> {
    fn seed(&mut self, state: MachineState, meta: M) {
        self.inner.push(state, meta); // roots are exempt from the bound
    }

    fn push(&mut self, state: MachineState, meta: M) {
        if state.steps().saturating_sub(self.base) > self.bound {
            self.cut.store(true, Ordering::Relaxed);
            return;
        }
        self.inner.push(state, meta);
    }

    fn pop(&mut self) -> Option<(MachineState, M)> {
        self.inner.pop()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn approx_bytes(&self) -> usize {
        self.inner.approx_bytes()
    }

    fn steal_half(&mut self) -> Vec<(MachineState, M)> {
        self.inner.steal_half()
    }
}

// ---------------------------------------------------------------------
// Disk spilling
// ---------------------------------------------------------------------

/// Which in-RAM discipline a [`SpillingFrontier`] preserves across its
/// disk strata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillOrder {
    /// Breadth-first: RAM holds the *oldest* states, newer overflow appends
    /// to segment files, and segments replay oldest-first.
    Fifo,
    /// Depth-first: RAM holds the *newest* states (the stack top), the
    /// stack bottom spills to segment files, and segments replay
    /// newest-stratum-first.
    Lifo,
}

/// Distinguishes spill directories across engines and searches within one
/// process.
static SPILL_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

struct Segment<M> {
    path: PathBuf,
    metas: VecDeque<M>,
    /// Approximate **in-RAM** bytes of the states in this segment — what
    /// the window will grow by when the segment replays. Segments are
    /// capped on this figure (not the much smaller encoded size) so a
    /// refill roughly half-fills, never floods, the budgeted window.
    approx_bytes: usize,
    /// Open only on the newest FIFO segment (still being appended to).
    writer: Option<std::io::BufWriter<std::fs::File>>,
}

/// A disk-spilling wrapper around the FIFO/LIFO disciplines: a bounded
/// in-RAM window plus sequential codec-encoded segment files in a private
/// temp directory. Pop order is **exactly** the unbounded discipline's —
/// see the [module docs](self) for the strata layout per order.
///
/// Trace tokens (`M`) stay in RAM (they are pointer-sized; the hundreds of
/// bytes per state are what spills), kept in per-segment queues zipped back
/// with their states on replay.
pub struct SpillingFrontier<M> {
    order: SpillOrder,
    ram: VecDeque<(MachineState, M)>,
    ram_bytes: usize,
    budget: usize,
    /// Approximate in-RAM bytes per segment before a new one starts; sized
    /// so a replayed segment roughly half-fills (never floods) the window.
    seg_cap: usize,
    dir: Option<PathBuf>,
    /// FIFO: front = oldest stratum (next to replay). LIFO: back = the
    /// stratum directly below the RAM stack top (next to replay).
    segments: VecDeque<Segment<M>>,
    seg_counter: u64,
    spilled: usize,
    encode_buf: Vec<u8>,
}

impl<M> SpillingFrontier<M> {
    /// A spilling frontier preserving `order` with an in-RAM window of
    /// roughly `max_frontier_bytes`.
    #[must_use]
    pub fn new(order: SpillOrder, max_frontier_bytes: usize) -> Self {
        let budget = max_frontier_bytes.max(4096);
        SpillingFrontier {
            order,
            ram: VecDeque::new(),
            ram_bytes: 0,
            budget,
            seg_cap: (budget / 2).max(4096),
            dir: None,
            segments: VecDeque::new(),
            seg_counter: 0,
            spilled: 0,
            encode_buf: Vec::new(),
        }
    }

    fn spill_dir(&mut self) -> &PathBuf {
        self.dir.get_or_insert_with(|| {
            let dir = std::env::temp_dir().join(format!(
                "symplfied-spill-{}-{}",
                std::process::id(),
                SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("failed to create the frontier spill directory");
            dir
        })
    }

    /// Opens a fresh segment file at the back of the strata, closing the
    /// previous back segment's writer if it was still open.
    fn start_segment(&mut self) {
        if let Some(seg) = self.segments.back_mut() {
            if let Some(mut w) = seg.writer.take() {
                w.flush().expect("failed to flush a frontier spill segment");
            }
        }
        let n = self.seg_counter;
        self.seg_counter += 1;
        let path = self.spill_dir().join(format!("seg-{n}.bin"));
        let file = std::fs::File::create(&path).expect("failed to create a frontier spill segment");
        self.segments.push_back(Segment {
            path,
            metas: VecDeque::new(),
            approx_bytes: 0,
            writer: Some(std::io::BufWriter::new(file)),
        });
    }

    /// Encodes one state onto the back segment (opening a new one at the
    /// cap), recording its meta in the segment's RAM-side queue.
    fn append_to_back_segment(&mut self, state: &MachineState, meta: M) {
        let needs_new = match self.segments.back() {
            Some(seg) => seg.writer.is_none() || seg.approx_bytes >= self.seg_cap,
            None => true,
        };
        if needs_new {
            self.start_segment();
        }
        self.encode_buf.clear();
        encode_state(state, &mut self.encode_buf);
        let seg = self.segments.back_mut().expect("segment just ensured");
        seg.writer
            .as_mut()
            .expect("back segment writer open")
            .write_all(&self.encode_buf)
            .expect("failed to append to a frontier spill segment");
        seg.approx_bytes += state.approx_bytes();
        seg.metas.push_back(meta);
        self.spilled += 1;
    }

    /// Decodes a whole segment back into the (empty) RAM window, in file
    /// order, and deletes the file. Decoded states re-derive their rolling
    /// fingerprint folds (`MachineState::from_decoded`), which the codec
    /// round-trip property tests pin to `fingerprint_from_scratch`.
    fn replay(&mut self, mut seg: Segment<M>) {
        debug_assert!(self.ram.is_empty(), "replay only refills a drained window");
        if let Some(mut w) = seg.writer.take() {
            w.flush().expect("failed to flush a frontier spill segment");
        }
        let bytes = std::fs::read(&seg.path).expect("failed to read back a frontier spill segment");
        let mut pos = 0usize;
        while pos < bytes.len() {
            let (state, consumed) =
                decode_state(&bytes[pos..]).expect("corrupt frontier spill segment");
            pos += consumed;
            debug_assert_eq!(state.fingerprint(), state.fingerprint_from_scratch());
            let meta = seg.metas.pop_front().expect("one meta per spilled state");
            self.ram_bytes += state.approx_bytes();
            self.ram.push_back((state, meta));
        }
        debug_assert!(seg.metas.is_empty(), "one spilled state per meta");
        let _ = std::fs::remove_file(&seg.path);
    }

    /// Refills the RAM window from the next stratum, if any.
    fn refill(&mut self) -> bool {
        let seg = match self.order {
            SpillOrder::Fifo => self.segments.pop_front(),
            SpillOrder::Lifo => self.segments.pop_back(),
        };
        match seg {
            Some(seg) => {
                self.replay(seg);
                true
            }
            None => false,
        }
    }

    fn ram_push(&mut self, state: MachineState, meta: M) {
        self.ram_bytes += state.approx_bytes();
        self.ram.push_back((state, meta));
    }

    fn ram_pop_front(&mut self) -> Option<(MachineState, M)> {
        let item = self.ram.pop_front()?;
        self.ram_bytes -= item.0.approx_bytes();
        Some(item)
    }

    fn ram_pop_back(&mut self) -> Option<(MachineState, M)> {
        let item = self.ram.pop_back()?;
        self.ram_bytes -= item.0.approx_bytes();
        Some(item)
    }
}

impl<M: Send> FrontierQueue<M> for SpillingFrontier<M> {
    fn push(&mut self, state: MachineState, meta: M) {
        match self.order {
            SpillOrder::Fifo => {
                // Pushes are the newest states. Once any stratum exists (or
                // the window is full) they must go behind it, or they would
                // jump the queue.
                if self.segments.is_empty() && self.ram_bytes < self.budget {
                    self.ram_push(state, meta);
                } else {
                    self.append_to_back_segment(&state, meta);
                }
            }
            SpillOrder::Lifo => {
                // Pushes always land on the stack top (RAM); the *bottom*
                // half of the window spills when it overflows, preserving
                // exact LIFO across strata.
                self.ram_push(state, meta);
                if self.ram_bytes > self.budget && self.ram.len() >= 2 {
                    let spill_count = self.ram.len() / 2;
                    self.start_segment();
                    for _ in 0..spill_count {
                        let (s, m) = self.ram_pop_front().expect("counted above");
                        self.append_to_back_segment(&s, m);
                    }
                    if let Some(seg) = self.segments.back_mut() {
                        if let Some(mut w) = seg.writer.take() {
                            w.flush().expect("failed to flush a frontier spill segment");
                        }
                    }
                }
            }
        }
    }

    fn pop(&mut self) -> Option<(MachineState, M)> {
        match self.order {
            SpillOrder::Fifo => {
                if let Some(item) = self.ram_pop_front() {
                    return Some(item);
                }
                if self.refill() {
                    return self.ram_pop_front();
                }
                None
            }
            SpillOrder::Lifo => {
                if let Some(item) = self.ram_pop_back() {
                    return Some(item);
                }
                if self.refill() {
                    return self.ram_pop_back();
                }
                None
            }
        }
    }

    fn len(&self) -> usize {
        self.ram.len() + self.segments.iter().map(|s| s.metas.len()).sum::<usize>()
    }

    fn approx_bytes(&self) -> usize {
        self.ram_bytes
    }

    fn steal_half(&mut self) -> Vec<(MachineState, M)> {
        if self.ram.is_empty() && !self.refill() {
            return Vec::new();
        }
        let take = self.ram.len().div_ceil(2);
        let taken: Vec<(MachineState, M)> = match self.order {
            // FIFO owner consumes the front: give the back half.
            SpillOrder::Fifo => self.ram.split_off(self.ram.len() - take).into(),
            // LIFO owner consumes the back: give the front half.
            SpillOrder::Lifo => self.ram.drain(..take).collect(),
        };
        self.ram_bytes -= taken.iter().map(|(s, _)| s.approx_bytes()).sum::<usize>();
        taken
    }

    fn spilled_states(&self) -> usize {
        self.spilled
    }
}

impl<M> Drop for SpillingFrontier<M> {
    fn drop(&mut self) {
        for seg in &mut self.segments {
            drop(seg.writer.take());
            let _ = std::fs::remove_file(&seg.path);
        }
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::Reg;
    use sympl_symbolic::Value;

    /// Distinct states (the step counter distinguishes them) with some bulk
    /// so byte budgets mean something.
    fn state(tag: u64) -> MachineState {
        let mut s = MachineState::new();
        s.load_memory((0..32).map(|i| (i * 8, i as i64)));
        s.set_reg(Reg::r(3), Value::Int(tag as i64));
        for _ in 0..tag {
            s.bump_steps();
        }
        s
    }

    fn drain<M: Send>(q: &mut dyn FrontierQueue<M>) -> Vec<(MachineState, M)> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn fifo_and_lifo_orders() {
        let mut fifo = FifoQueue::new();
        let mut lifo = LifoQueue::new();
        for i in 0..5u64 {
            fifo.push(state(i), i);
            lifo.push(state(i), i);
        }
        assert_eq!(fifo.len(), 5);
        assert!(fifo.approx_bytes() > 0);
        let fifo_metas: Vec<u64> = drain(&mut fifo).into_iter().map(|(_, m)| m).collect();
        let lifo_metas: Vec<u64> = drain(&mut lifo).into_iter().map(|(_, m)| m).collect();
        assert_eq!(fifo_metas, vec![0, 1, 2, 3, 4]);
        assert_eq!(lifo_metas, vec![4, 3, 2, 1, 0]);
        assert_eq!(fifo.approx_bytes(), 0, "byte accounting drains to zero");
        assert_eq!(lifo.approx_bytes(), 0);
    }

    #[test]
    fn steal_takes_the_half_the_owner_consumes_last() {
        let mut fifo = FifoQueue::new();
        let mut lifo = LifoQueue::new();
        for i in 0..6u64 {
            fifo.push(state(i), i);
            lifo.push(state(i), i);
        }
        let fifo_stolen: Vec<u64> = fifo.steal_half().into_iter().map(|(_, m)| m).collect();
        let lifo_stolen: Vec<u64> = lifo.steal_half().into_iter().map(|(_, m)| m).collect();
        assert_eq!(fifo_stolen, vec![3, 4, 5], "FIFO victim keeps the front");
        assert_eq!(lifo_stolen, vec![0, 1, 2], "LIFO victim keeps the top");
        assert_eq!(fifo.pop().unwrap().1, 0);
        assert_eq!(lifo.pop().unwrap().1, 5);
    }

    #[test]
    fn priority_orders_by_key_with_fingerprint_tiebreak() {
        let mut q = PriorityFrontier::new(PriorityHeuristic::Depth);
        for tag in [2u64, 5, 1, 5, 3] {
            q.push(state(tag), tag);
        }
        // One of the two 5-deep states pops first (smallest fingerprint of
        // the pair), then the other, then 3, 2, 1.
        let metas: Vec<u64> = drain(&mut q).into_iter().map(|(_, m)| m).collect();
        assert_eq!(metas[..2], [5, 5]);
        assert_eq!(metas[2..], [3, 2, 1]);
        assert_eq!(q.approx_bytes(), 0);

        // The tie-break is canonical: the same contents always pop in the
        // same order regardless of insertion order.
        let run = |tags: &[u64]| {
            let mut q = PriorityFrontier::new(PriorityHeuristic::ConstraintMapSize);
            for &t in tags {
                q.push(state(t), t);
            }
            drain(&mut q)
                .into_iter()
                .map(|(_, m)| m)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&[1, 2, 3, 4]), run(&[4, 3, 2, 1]));
    }

    #[test]
    fn priority_heuristics_read_the_right_component() {
        let mut s = state(0);
        s.push_output(sympl_machine::OutItem::Val(Value::Int(1)));
        assert_eq!(PriorityHeuristic::OutputLen.key(&s), 1);
        assert_eq!(PriorityHeuristic::Depth.key(&state(7)), 7);
        let mut c = state(0);
        let _ = c.constraints_mut().constrain(
            sympl_symbolic::Location::reg(3),
            sympl_symbolic::Constraint::Gt(0),
        );
        assert_eq!(PriorityHeuristic::ConstraintMapSize.key(&c), 1);
    }

    #[test]
    fn iterative_deepening_rounds_reseed_and_terminate() {
        let mut q: IddQueue<usize> = IddQueue::new(2, 3);
        q.seed(state(10), 0); // base = 10
        q.seed(state(11), 1);
        assert_eq!(q.len(), 2);
        // Within bound (depth 2 from base 10): kept.
        q.push(state(12), 2);
        // Beyond bound: cut.
        q.push(state(13), 3);
        let popped: Vec<usize> = drain(&mut q).into_iter().map(|(_, m)| m).collect();
        assert_eq!(popped, vec![2, 1, 0], "LIFO within the round");
        // The cut forces another round with the original roots and a raised
        // bound.
        let roots = q.next_round().expect("cut state demands a deeper round");
        assert_eq!(roots.len(), 2);
        for (s, m) in roots {
            q.seed(s, m);
        }
        q.push(state(13), 3); // now within bound 5
        assert_eq!(q.len(), 3);
        let _ = drain(&mut q);
        assert!(q.next_round().is_none(), "clean round ends the search");
    }

    #[test]
    fn bounded_lifo_raises_the_shared_cut_flag() {
        let cut = Arc::new(AtomicBool::new(false));
        let mut q: BoundedLifoQueue<usize> = BoundedLifoQueue::new(10, 2, Arc::clone(&cut));
        q.seed(state(20), 0); // seeds bypass the bound
        q.push(state(12), 1); // depth 2: kept
        assert_eq!(q.len(), 2);
        assert!(!cut.load(Ordering::Relaxed));
        q.push(state(13), 2); // depth 3: cut
        assert_eq!(q.len(), 2);
        assert!(cut.load(Ordering::Relaxed));
    }

    #[test]
    fn spilling_fifo_preserves_exact_order_across_strata() {
        // A budget that fits only a couple of states forces heavy spilling.
        let budget = state(0).approx_bytes() * 2;
        let mut q: SpillingFrontier<u64> = SpillingFrontier::new(SpillOrder::Fifo, budget);
        let mut reference: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        // Interleave pushes and pops so refills happen mid-stream.
        for round in 0..6 {
            for _ in 0..10 {
                q.push(state(next), next);
                reference.push_back(next);
                next += 1;
            }
            for _ in 0..(3 + round) {
                let (s, m) = q.pop().expect("reference nonempty");
                assert_eq!(m, reference.pop_front().unwrap());
                assert_eq!(s, state(m), "spilled state round-trips");
                assert_eq!(s.fingerprint(), s.fingerprint_from_scratch());
            }
        }
        assert!(q.spilled_states() > 0, "budget must have forced spills");
        // The window never grows past the (floor-clamped) budget by more
        // than one state: RAM fills to the budget before spilling starts,
        // and a refill brings back at most one ~half-budget segment.
        let effective = budget.max(4096);
        assert!(
            q.approx_bytes() <= effective + state(0).approx_bytes(),
            "window stays near the budget: {} vs {}",
            q.approx_bytes(),
            effective
        );
        while let Some((_, m)) = q.pop() {
            assert_eq!(m, reference.pop_front().unwrap());
        }
        assert!(reference.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn spilling_lifo_preserves_exact_order_across_strata() {
        let budget = state(0).approx_bytes() * 2;
        let mut q: SpillingFrontier<u64> = SpillingFrontier::new(SpillOrder::Lifo, budget);
        let mut reference: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for _ in 0..6 {
            for _ in 0..10 {
                q.push(state(next), next);
                reference.push(next);
                next += 1;
            }
            for _ in 0..4 {
                let (_, m) = q.pop().expect("reference nonempty");
                assert_eq!(m, reference.pop().unwrap());
            }
        }
        assert!(q.spilled_states() > 0);
        while let Some((_, m)) = q.pop() {
            assert_eq!(m, reference.pop().unwrap());
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn spill_directory_is_cleaned_up_on_drop() {
        let budget = 4096;
        let mut q: SpillingFrontier<u64> = SpillingFrontier::new(SpillOrder::Fifo, budget);
        for i in 0..200 {
            q.push(state(i), i);
        }
        assert!(q.spilled_states() > 0);
        let dir = q.dir.clone().expect("spilling created a directory");
        assert!(dir.exists());
        drop(q);
        assert!(!dir.exists(), "drop removes segments and the directory");
    }

    #[test]
    fn spilling_steal_reaches_spilled_work() {
        let budget = state(0).approx_bytes() * 2;
        let mut q: SpillingFrontier<u64> = SpillingFrontier::new(SpillOrder::Fifo, budget);
        for i in 0..40 {
            q.push(state(i), i);
        }
        // Drain RAM so only disk strata remain, then steal: the thief must
        // still get work (after an internal refill).
        while !q.ram.is_empty() {
            let _ = q.ram_pop_front();
        }
        let stolen = q.steal_half();
        assert!(!stolen.is_empty(), "steal must refill from disk");
    }

    #[test]
    fn policy_builder_honors_spill_budget_only_for_bfs_dfs() {
        let policies = [
            FrontierPolicy::Bfs,
            FrontierPolicy::Dfs,
            FrontierPolicy::Priority(PriorityHeuristic::Depth),
            FrontierPolicy::iterative_deepening(),
        ];
        for policy in policies {
            let mut q: Box<dyn FrontierQueue<usize>> = policy.build(Some(4096));
            for i in 0..200u64 {
                q.seed(state(i), i as usize);
            }
            let expect_spill = matches!(policy, FrontierPolicy::Bfs | FrontierPolicy::Dfs);
            assert_eq!(
                q.spilled_states() > 0,
                expect_spill,
                "{policy:?} spilling expectation"
            );
            assert!(!policy.determinism_contract().is_empty());
        }
        assert!(FrontierPolicy::iterative_deepening().is_iterative());
        assert!(!FrontierPolicy::Bfs.is_iterative());
    }
}
