//! The breadth-first exhaustive search (Maude's `search =>!`).

use std::time::Duration;

use sympl_asm::Program;
use sympl_detect::DetectorSet;
use sympl_machine::{ExecLimits, MachineState};

use crate::{Explorer, FrontierPolicy, Predicate, SearchReport};

/// Budgets for one search task.
///
/// `exec` bounds each *path* (the watchdog); the remaining fields bound the
/// *search*: total states, matching solutions (the paper capped each
/// cluster task at 10 findings), and wall-clock time (the paper allotted 30
/// minutes per task). `policy` and `max_frontier_bytes` configure the
/// frontier subsystem; they live here so every campaign layer (cluster
/// config, `symplfied::Framework`, the CLI) threads them through for free.
///
/// Neither this type nor any campaign code branches on the policy: the
/// engines build a [`crate::FrontierQueue`] from it and drive the trait,
/// so adding a policy is a change to `crate::frontier` alone. See that
/// module for each policy's determinism contract
/// ([`FrontierPolicy::determinism_contract`]).
#[derive(Debug, Clone)]
pub struct SearchLimits {
    /// Per-path execution bounds (watchdog + fork caps).
    pub exec: ExecLimits,
    /// Maximum states to expand before giving up.
    pub max_states: usize,
    /// Stop after this many predicate matches.
    pub max_solutions: usize,
    /// Wall-clock budget for the whole search.
    pub max_time: Option<Duration>,
    /// Which state the engine expands next (BFS, DFS, best-first, or
    /// iterative deepening).
    pub policy: FrontierPolicy,
    /// In-RAM frontier budget for the BFS/DFS disciplines: beyond roughly
    /// this many bytes of live frontier, overflow spills to codec-encoded
    /// segment files and replays on demand, preserving the expansion order
    /// exactly. `None` (the default) never spills; the priority and
    /// iterative-deepening policies ignore the budget (see
    /// [`crate::frontier`]).
    pub max_frontier_bytes: Option<usize>,
}

impl SearchLimits {
    /// Limits with the given watchdog bound.
    #[must_use]
    pub fn with_max_steps(max_steps: u64) -> Self {
        SearchLimits {
            exec: ExecLimits::with_max_steps(max_steps),
            ..SearchLimits::default()
        }
    }
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            exec: ExecLimits::default(),
            max_states: 1_000_000,
            max_solutions: 10,
            max_time: None,
            policy: FrontierPolicy::default(),
            max_frontier_bytes: None,
        }
    }
}

/// Exhaustively explores the symbolic state space from `initial`,
/// collecting terminal states that satisfy `predicate`.
///
/// Thin wrapper over [`Explorer`]: breadth-first from the initial state,
/// each distinct machine state visited once (deduplicated by fingerprint),
/// exactly like the paper's §5.4 search command; it stops early when a
/// state, solution, or time budget is exceeded, and reports which.
#[must_use]
pub fn search(
    program: &Program,
    detectors: &DetectorSet,
    initial: MachineState,
    predicate: &Predicate,
    limits: &SearchLimits,
) -> SearchReport {
    search_many(program, detectors, vec![initial], predicate, limits)
}

/// Like [`search`] but seeded with several initial states (e.g. one per
/// non-deterministic injection choice).
#[must_use]
pub fn search_many(
    program: &Program,
    detectors: &DetectorSet,
    initials: Vec<MachineState>,
    predicate: &Predicate,
    limits: &SearchLimits,
) -> SearchReport {
    Explorer::new(program, detectors)
        .with_limits(limits.clone())
        .explore(initials, predicate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::{parse_program, Reg};
    use sympl_machine::Status;
    use sympl_symbolic::Value;

    fn dets() -> DetectorSet {
        DetectorSet::new()
    }

    #[test]
    fn error_free_program_is_proof() {
        let p = parse_program("mov $1, 1\nprint $1\nhalt").unwrap();
        let report = search(
            &p,
            &dets(),
            MachineState::new(),
            &Predicate::OutputContainsErr,
            &SearchLimits::default(),
        );
        assert!(report.is_proof_of_resilience());
        assert_eq!(report.terminals.halted, 1);
    }

    #[test]
    fn finds_err_output_with_trace() {
        let p = parse_program("beq $1, 0, skip\nnop\nskip: print $1\nhalt").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let report = search(
            &p,
            &dets(),
            s,
            &Predicate::OutputContainsErr,
            &SearchLimits::default(),
        );
        // Branch forks: taken ($1==0, substituted -> prints 0, not err) and
        // not-taken ($1 != 0 -> prints err).
        assert_eq!(report.solutions.len(), 1);
        let sol = &report.solutions[0];
        assert!(sol.state.output_contains_err());
        assert_eq!(sol.trace.first(), Some(&0));
        // The not-taken path goes 0 -> 1 -> 2 -> 3(terminal halt keeps pc).
        assert!(sol.trace.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn solution_cap_respected() {
        // Loop that forks every iteration and prints err before halting on
        // one side: produces many solutions; cap at 3.
        let p =
            parse_program("loop: beq $1, 0, out\nprint $1\nbeq $0, 0, loop\nout: print $1\nhalt")
                .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let limits = SearchLimits {
            max_solutions: 3,
            exec: ExecLimits::with_max_steps(200),
            ..SearchLimits::default()
        };
        let report = search(&p, &dets(), s, &Predicate::OutputContainsErr, &limits);
        assert!(report.solutions.len() <= 3);
        assert!(report.hit_solution_cap || report.exhausted);
    }

    #[test]
    fn state_cap_truncates() {
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let limits = SearchLimits {
            max_states: 50,
            exec: ExecLimits::with_max_steps(1_000_000),
            ..SearchLimits::default()
        };
        let report = search(&p, &dets(), MachineState::new(), &Predicate::Any, &limits);
        assert!(report.hit_state_cap);
        assert!(!report.exhausted);
    }

    #[test]
    fn time_cap_truncates() {
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let limits = SearchLimits {
            max_time: Some(Duration::ZERO),
            exec: ExecLimits::with_max_steps(u64::MAX),
            ..SearchLimits::default()
        };
        let report = search(&p, &dets(), MachineState::new(), &Predicate::Any, &limits);
        assert!(report.hit_time_cap);
    }

    #[test]
    fn pure_cycles_surface_as_hangs() {
        // A loop that revisits the same configuration forever: the search
        // must NOT dedup it into silence — it must run into the watchdog
        // and report timed-out terminals, because a real execution hangs.
        let p = parse_program("loop: beq $1, 0, loop\njmp loop").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(60),
            max_states: 100_000,
            ..SearchLimits::default()
        };
        let report = search(&p, &dets(), s, &Predicate::Hung, &limits);
        // Exactly two hanging paths: the $1 = 0 path (pinned by the first
        // taken fork) and the $1 != 0 path. Later taken forks are pruned by
        // the Ne(0) constraint learned on the not-taken path, so the state
        // space stays linear in the watchdog bound.
        assert_eq!(report.solutions.len(), 2, "{report}");
        assert!(report.terminals.hung >= 2, "{report}");
        assert!(
            report.states_explored < 200,
            "solver must prune re-forks: {report}"
        );
    }

    #[test]
    fn bfs_finds_shortest_witness_first() {
        // Two paths to err output: a short one and a long one.
        let p = parse_program(
            "beq $1, 0, long\nprint $1\nhalt\nlong: nop\nnop\nnop\nnop\nmov $1, 1\nprint $1\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let report = search(
            &p,
            &dets(),
            s,
            &Predicate::OutputContainsErr,
            &SearchLimits::default(),
        );
        assert_eq!(report.solutions.len(), 1);
        assert!(
            report.solutions[0].trace.len() <= 4,
            "BFS should find the short witness: {:?}",
            report.solutions[0].trace
        );
    }

    #[test]
    fn search_many_explores_all_seeds() {
        let p = parse_program("print $1\nhalt").unwrap();
        let mut a = MachineState::new();
        a.set_reg(Reg::r(1), Value::Err);
        let b = MachineState::new(); // prints 0
        let report = search_many(
            &p,
            &dets(),
            vec![a, b],
            &Predicate::Any,
            &SearchLimits::default(),
        );
        assert_eq!(report.solutions.len(), 2);
        assert!(report.exhausted);
    }

    #[test]
    fn wrong_output_predicate_on_forked_program() {
        // Program should print 7; an err in $1 can redirect the branch.
        let p = parse_program(
            "beq $1, 1, bad\nmov $2, 7\nprint $2\nhalt\nbad: mov $2, 9\nprint $2\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let report = search(
            &p,
            &dets(),
            s,
            &Predicate::WrongOutput { expected: vec![7] },
            &SearchLimits::default(),
        );
        assert_eq!(report.solutions.len(), 1);
        assert_eq!(report.solutions[0].state.output_ints(), vec![9]);
    }

    #[test]
    fn detected_terminal_counted() {
        use sympl_detect::Detector;
        let mut detectors = DetectorSet::new();
        detectors.insert(Detector::parse("det(1, $(1), ==, (5))").unwrap());
        let p = parse_program("check 1\nprint $1\nhalt").unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let report = search(&p, &detectors, s, &Predicate::Any, &SearchLimits::default());
        assert_eq!(report.terminals.detected, 1);
        assert_eq!(report.terminals.halted, 1);
        assert!(report
            .solutions
            .iter()
            .any(|sol| matches!(sol.state.status(), Status::Detected(1))));
    }
}
