//! # sympl-check — the bounded model checker
//!
//! Implements the paper's §5.4: Maude's exhaustive `search` command,
//! re-expressed as an explicit breadth-first exploration of the symbolic
//! machine's state space. The searcher starts from an initial (possibly
//! already-corrupted) state, expands every non-deterministic successor of
//! the error model, deduplicates revisited states, bounds the exploration
//! with the watchdog instruction limit plus state/solution/time budgets,
//! and collects every *terminal* state satisfying a user-supplied outcome
//! predicate — the analogue of
//!
//! ```text
//! search regErrors(start(program, first, detectors)) =>!
//!     (S:MachineState) such that (output(S) contains err) .
//! ```
//!
//! Each solution carries a witness *trace* (the program-counter path from
//! the initial state), which is the paper's "execution trace of how the
//! error evaded detection and led to the failure".
//!
//! ```
//! use sympl_asm::parse_program;
//! use sympl_check::{search, Predicate, SearchLimits};
//! use sympl_detect::DetectorSet;
//! use sympl_machine::MachineState;
//! use sympl_symbolic::Value;
//! use sympl_asm::Reg;
//!
//! let program = parse_program("print $1\nhalt")?;
//! let mut initial = MachineState::new();
//! initial.set_reg(Reg::r(1), Value::Err);
//! let report = search(
//!     &program,
//!     &DetectorSet::new(),
//!     initial,
//!     &Predicate::OutputContainsErr,
//!     &SearchLimits::default(),
//! );
//! assert_eq!(report.solutions.len(), 1);
//! assert!(report.exhausted);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod explorer;
pub mod frontier;
pub mod memo;
mod parallel;
mod predicate;
mod report;
mod search;

pub use explorer::Explorer;
pub use frontier::{
    FifoQueue, FrontierPolicy, FrontierQueue, IddQueue, LifoQueue, PriorityFrontier,
    PriorityHeuristic, SpillOrder, SpillingFrontier,
};
pub use memo::{memo_key, probe_digest, MemoError, MemoStore, SubtreeSummary};
pub use parallel::{ParallelExplorer, PARALLEL_STATE_THRESHOLD};
pub use predicate::Predicate;
pub use report::{OutcomeCounts, SearchReport, Solution};
pub use search::{search, search_many, SearchLimits};
