//! Outcome predicates: the user-defined functions on terminal machine
//! states that the search command filters by (paper §5.4).

use std::fmt;
use std::sync::Arc;

use sympl_machine::{MachineState, Status};

/// A predicate over *terminal* machine states.
///
/// The paper lets the user supply any first-order formula over the final
/// state; the common queries from the evaluation are provided as variants
/// and anything else via [`Predicate::Custom`].
///
/// Predicates are **frontier-policy agnostic**: they see only terminal
/// states, never the frontier, so which states a search *matches* is
/// independent of [`crate::FrontierPolicy`] — the policy can only change
/// discovery order (and, on truncated searches, which prefix was explored;
/// see [`crate::FrontierPolicy::determinism_contract`]). Nothing in this
/// module may branch on the policy; everything policy-shaped lives in
/// [`crate::frontier`], which is what keeps a new policy a one-file
/// change.
#[derive(Clone)]
pub enum Predicate {
    /// `output(S) contains err` — the paper's running example query.
    OutputContainsErr,
    /// The program halted normally (no exception/hang) but its printed
    /// integers differ from the expected sequence — the §6.1 "incorrect
    /// output" query (erroneous advisory, wrong substitution, …).
    WrongOutput {
        /// The error-free (golden) output.
        expected: Vec<i64>,
    },
    /// The program halted normally and printed exactly this sequence —
    /// used to hunt a *specific* catastrophic outcome (tcas printing 2).
    ExactOutput {
        /// The outcome searched for.
        output: Vec<i64>,
    },
    /// The program crashed (threw an exception).
    Crashed,
    /// The program hit the watchdog bound (hang).
    Hung,
    /// A detector fired.
    Detected,
    /// Every terminal state matches.
    Any,
    /// An arbitrary user predicate.
    Custom(Arc<dyn Fn(&MachineState) -> bool + Send + Sync>),
}

impl Predicate {
    /// Evaluates the predicate on a terminal state.
    ///
    /// Allocation-free: this runs once per terminal state on the engines'
    /// hot path, so output comparisons stream
    /// [`MachineState::output_ints_iter`] against the expected sequence
    /// instead of collecting a fresh `Vec` per call, and the contains-err
    /// probe is an O(1) cached counter check.
    #[must_use]
    pub fn matches(&self, state: &MachineState) -> bool {
        match self {
            Predicate::OutputContainsErr => state.output_contains_err(),
            Predicate::WrongOutput { expected } => {
                state.status() == &Status::Halted
                    && (state.output_contains_err()
                        || !state.output_ints_iter().eq(expected.iter().copied()))
            }
            Predicate::ExactOutput { output } => {
                state.status() == &Status::Halted
                    && !state.output_contains_err()
                    && state.output_ints_iter().eq(output.iter().copied())
            }
            Predicate::Crashed => matches!(state.status(), Status::Exception(_)),
            Predicate::Hung => state.status() == &Status::TimedOut,
            Predicate::Detected => matches!(state.status(), Status::Detected(_)),
            Predicate::Any => true,
            Predicate::Custom(f) => f(state),
        }
    }

    /// A custom predicate from a closure.
    #[must_use]
    pub fn custom(f: impl Fn(&MachineState) -> bool + Send + Sync + 'static) -> Self {
        Predicate::Custom(Arc::new(f))
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::OutputContainsErr => f.write_str("OutputContainsErr"),
            Predicate::WrongOutput { expected } => {
                write!(f, "WrongOutput {{ expected: {expected:?} }}")
            }
            Predicate::ExactOutput { output } => write!(f, "ExactOutput {{ output: {output:?} }}"),
            Predicate::Crashed => f.write_str("Crashed"),
            Predicate::Hung => f.write_str("Hung"),
            Predicate::Detected => f.write_str("Detected"),
            Predicate::Any => f.write_str("Any"),
            Predicate::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_machine::{Exception, OutItem};
    use sympl_symbolic::Value;

    fn halted_with(values: &[Value]) -> MachineState {
        let mut s = MachineState::new();
        for v in values {
            s.push_output(OutItem::Val(*v));
        }
        s.set_status(Status::Halted);
        s
    }

    #[test]
    fn output_contains_err() {
        let p = Predicate::OutputContainsErr;
        assert!(p.matches(&halted_with(&[Value::Err])));
        assert!(!p.matches(&halted_with(&[Value::Int(1)])));
    }

    #[test]
    fn wrong_output_requires_normal_halt() {
        let p = Predicate::WrongOutput { expected: vec![1] };
        assert!(p.matches(&halted_with(&[Value::Int(2)])));
        assert!(
            p.matches(&halted_with(&[Value::Err])),
            "err output is wrong"
        );
        assert!(!p.matches(&halted_with(&[Value::Int(1)])));
        let mut crashed = halted_with(&[Value::Int(2)]);
        crashed.set_status(Status::Exception(Exception::DivByZero));
        assert!(!p.matches(&crashed), "crashes are not wrong-output");
    }

    #[test]
    fn exact_output_excludes_err() {
        let p = Predicate::ExactOutput { output: vec![2] };
        assert!(p.matches(&halted_with(&[Value::Int(2)])));
        assert!(!p.matches(&halted_with(&[Value::Int(2), Value::Err])));
        assert!(!p.matches(&halted_with(&[Value::Int(1)])));
    }

    #[test]
    fn status_predicates() {
        let mut s = MachineState::new();
        s.set_status(Status::Exception(Exception::IllegalAddress));
        assert!(Predicate::Crashed.matches(&s));
        s.set_status(Status::TimedOut);
        assert!(Predicate::Hung.matches(&s));
        s.set_status(Status::Detected(3));
        assert!(Predicate::Detected.matches(&s));
        assert!(Predicate::Any.matches(&s));
    }

    #[test]
    fn custom_predicate() {
        let p = Predicate::custom(|s| s.output_ints().len() == 2);
        assert!(p.matches(&halted_with(&[Value::Int(1), Value::Int(2)])));
        assert!(!p.matches(&halted_with(&[Value::Int(1)])));
        assert!(format!("{p:?}").contains("Custom"));
    }
}
