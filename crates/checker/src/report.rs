//! Search results: solutions with witness traces, plus exploration
//! statistics.

use std::fmt;
use std::time::Duration;

use sympl_machine::{MachineState, Status};

/// One terminal state satisfying the search predicate, with its witness
/// trace — the program-counter path from the initial state, the paper's
/// "execution trace of how the error evaded detection".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The terminal machine state.
    pub state: MachineState,
    /// Program counters visited from the initial state to this terminal,
    /// inclusive of the initial PC.
    pub trace: Vec<usize>,
}

impl Solution {
    /// Renders the trace as `pc0 -> pc1 -> …`, eliding long middles.
    #[must_use]
    pub fn trace_summary(&self, max_shown: usize) -> String {
        let pcs: Vec<String> = if self.trace.len() <= max_shown || max_shown < 4 {
            self.trace.iter().map(ToString::to_string).collect()
        } else {
            let head = max_shown / 2;
            let tail = max_shown - head - 1;
            let mut v: Vec<String> = self.trace[..head].iter().map(ToString::to_string).collect();
            v.push(format!("…({} more)…", self.trace.len() - head - tail));
            v.extend(
                self.trace[self.trace.len() - tail..]
                    .iter()
                    .map(ToString::to_string),
            );
            v
        };
        pcs.join(" -> ")
    }
}

/// Counts of terminal states by outcome class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Normal halts.
    pub halted: usize,
    /// Exceptions (crashes).
    pub crashed: usize,
    /// Watchdog timeouts (hangs).
    pub hung: usize,
    /// Detector firings.
    pub detected: usize,
}

impl OutcomeCounts {
    /// Records a terminal state.
    pub fn record(&mut self, state: &MachineState) {
        match state.status() {
            Status::Halted => self.halted += 1,
            Status::Exception(_) => self.crashed += 1,
            Status::TimedOut => self.hung += 1,
            Status::Detected(_) => self.detected += 1,
            Status::Running => {}
        }
    }

    /// Total terminal states recorded.
    #[must_use]
    pub fn total(&self) -> usize {
        self.halted + self.crashed + self.hung + self.detected
    }

    /// Adds another set of counts (pooling per-worker or per-task tallies).
    pub fn absorb(&mut self, other: &OutcomeCounts) {
        self.halted += other.halted;
        self.crashed += other.crashed;
        self.hung += other.hung;
        self.detected += other.detected;
    }
}

impl fmt::Display for OutcomeCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "halted={} crashed={} hung={} detected={}",
            self.halted, self.crashed, self.hung, self.detected
        )
    }
}

/// The result of one exhaustive search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchReport {
    /// Terminal states matching the predicate, in BFS discovery order.
    pub solutions: Vec<Solution>,
    /// States expanded (dequeued) during the search.
    pub states_explored: usize,
    /// Terminal states reached (matching or not).
    pub terminals: OutcomeCounts,
    /// Successors skipped because an identical state was already seen.
    pub duplicate_hits: usize,
    /// Whether the frontier emptied — the state space was fully explored
    /// within the watchdog bound. With zero solutions this constitutes the
    /// paper's *proof* that the program (with its detectors) is resilient
    /// to the injected error class under the given bounds.
    pub exhausted: bool,
    /// The state budget was hit.
    pub hit_state_cap: bool,
    /// The solution cap was hit (paper §6.1 capped each task at 10).
    pub hit_solution_cap: bool,
    /// The wall-clock budget was hit (paper: 30-minute task budget).
    pub hit_time_cap: bool,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
    /// Engine throughput: states expanded per wall-clock second. Populated
    /// by the Explorer at the end of a search (and recomputed by
    /// [`SearchReport::merge`]); campaign summaries and the benchmark
    /// table binaries surface it so BENCH_*.json entries can track engine
    /// speed across revisions.
    pub states_per_second: f64,
    /// Worker threads that executed the search: 1 for the sequential
    /// [`crate::Explorer`], N for the work-stealing
    /// [`crate::ParallelExplorer`] (0 only in empty default reports that
    /// ran no search at all).
    pub workers: usize,
    /// Successful work-steal operations between workers (always 0 for the
    /// sequential engine). A healthy parallel search steals rarely relative
    /// to `states_explored`; a steal-dominated run signals a frontier too
    /// small to parallelize.
    pub steals: usize,
    /// Largest number of states the frontier held at once (including any
    /// spilled to disk). For the parallel engine this sums the per-worker
    /// deque peaks, an upper bound on the true global peak.
    pub peak_frontier_len: usize,
    /// Largest approximate number of bytes of frontier state held **in
    /// RAM** at once ([`MachineState::approx_bytes`] per queued state;
    /// spilled states excluded). This is the figure a
    /// [`crate::SearchLimits::max_frontier_bytes`] budget bounds — compare
    /// it across a spilling and an unbounded run of the same search to see
    /// the spill working. Parallel runs sum per-worker peaks (upper bound).
    pub peak_frontier_bytes: usize,
    /// States the frontier wrote to disk over the whole search (0 unless a
    /// `max_frontier_bytes` budget forced spilling).
    pub spilled_states: usize,
    /// Searches answered from a [`crate::MemoStore`] instead of expanding
    /// (0 or 1 for a single search; campaign pooling sums them). A memo hit
    /// replays the stored exhausted-subtree summary verbatim, so every
    /// other statistic in a served report equals the original search's.
    pub memo_hits: usize,
    /// States the memo hit saved: the `states_explored` figure of the
    /// stored search, which this run did *not* re-expand. `states_explored`
    /// still reports the replayed figure (summary fidelity), so the saved
    /// work is only visible here.
    pub memo_states_skipped: usize,
}

// `states_per_second` is a pure function of `states_explored`/`elapsed`
// and never NaN (`throughput` guards the division), so the derived
// `PartialEq` is reflexive and `Eq` is sound.
impl Eq for SearchReport {}

impl SearchReport {
    /// Whether this search proves resilience: complete exploration with no
    /// predicate match.
    #[must_use]
    pub fn is_proof_of_resilience(&self) -> bool {
        self.exhausted && self.solutions.is_empty()
    }

    /// Whether the search ran to completion (was not truncated by a cap).
    #[must_use]
    pub fn completed(&self) -> bool {
        self.exhausted || self.hit_solution_cap
    }

    /// Merges another report (used when pooling sharded searches).
    pub fn merge(&mut self, other: SearchReport) {
        self.solutions.extend(other.solutions);
        self.states_explored += other.states_explored;
        self.terminals.absorb(&other.terminals);
        self.duplicate_hits += other.duplicate_hits;
        self.workers = self.workers.max(other.workers);
        self.steals += other.steals;
        // Sharded searches run one after another (or independently), so the
        // widest single frontier is the meaningful pooled figure.
        self.peak_frontier_len = self.peak_frontier_len.max(other.peak_frontier_len);
        self.peak_frontier_bytes = self.peak_frontier_bytes.max(other.peak_frontier_bytes);
        self.spilled_states += other.spilled_states;
        self.memo_hits += other.memo_hits;
        self.memo_states_skipped += other.memo_states_skipped;
        self.exhausted &= other.exhausted;
        self.hit_state_cap |= other.hit_state_cap;
        self.hit_solution_cap |= other.hit_solution_cap;
        self.hit_time_cap |= other.hit_time_cap;
        self.elapsed += other.elapsed;
        self.states_per_second = Self::throughput(self.states_explored, self.elapsed);
    }

    /// States-per-second over a measured interval (0 when no time has
    /// been observed, so idle reports do not divide by zero).
    #[must_use]
    pub fn throughput(states: usize, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            states as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for SearchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "search: {} solution(s), {} states explored ({:.0} states/s, {} worker(s), {} steals), \
             {} duplicates, terminals: {}",
            self.solutions.len(),
            self.states_explored,
            self.states_per_second,
            self.workers,
            self.steals,
            self.duplicate_hits,
            self.terminals
        )?;
        writeln!(
            f,
            "frontier: peak {} state(s) / ~{} bytes in RAM, {} spilled to disk",
            self.peak_frontier_len, self.peak_frontier_bytes, self.spilled_states
        )?;
        if self.memo_hits > 0 {
            writeln!(
                f,
                "memo: {} hit(s) served {} state(s) without expansion",
                self.memo_hits, self.memo_states_skipped
            )?;
        }
        if self.is_proof_of_resilience() {
            writeln!(f, "PROOF: program is resilient to this error (bounded)")?;
        }
        for (i, sol) in self.solutions.iter().enumerate() {
            writeln!(
                f,
                "  #{i}: status={} output=`{}` trace={}",
                sol.state.status(),
                sol.state.rendered_output(),
                sol.trace_summary(12)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counts_record_all_statuses() {
        use sympl_machine::Exception;
        let mut counts = OutcomeCounts::default();
        let mut s = MachineState::new();
        s.set_status(Status::Halted);
        counts.record(&s);
        s.set_status(Status::Exception(Exception::DivByZero));
        counts.record(&s);
        s.set_status(Status::TimedOut);
        counts.record(&s);
        s.set_status(Status::Detected(1));
        counts.record(&s);
        assert_eq!(counts.total(), 4);
        assert_eq!(
            counts,
            OutcomeCounts {
                halted: 1,
                crashed: 1,
                hung: 1,
                detected: 1
            }
        );
    }

    #[test]
    fn trace_summary_elides_long_traces() {
        let sol = Solution {
            state: MachineState::new(),
            trace: (0..100).collect(),
        };
        let text = sol.trace_summary(8);
        assert!(text.contains("more"));
        assert!(text.starts_with("0 -> 1"));
        assert!(text.ends_with("98 -> 99"));
        let short = Solution {
            state: MachineState::new(),
            trace: vec![0, 1, 2],
        };
        assert_eq!(short.trace_summary(8), "0 -> 1 -> 2");
    }

    #[test]
    fn proof_of_resilience_requires_exhaustion() {
        let mut r = SearchReport {
            exhausted: true,
            ..SearchReport::default()
        };
        assert!(r.is_proof_of_resilience());
        r.solutions.push(Solution {
            state: MachineState::new(),
            trace: vec![],
        });
        assert!(!r.is_proof_of_resilience());
        r.exhausted = false;
        assert!(!r.is_proof_of_resilience());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SearchReport {
            states_explored: 10,
            exhausted: true,
            ..SearchReport::default()
        };
        let b = SearchReport {
            states_explored: 5,
            exhausted: false,
            hit_time_cap: true,
            ..SearchReport::default()
        };
        a.merge(b);
        assert_eq!(a.states_explored, 15);
        assert!(!a.exhausted);
        assert!(a.hit_time_cap);
    }
}
