//! The reusable exploration engine behind every campaign.
//!
//! [`Explorer`] packages the pieces a search task needs — program, detector
//! set, budgets, and a frontier policy — so that `sympl-inject`'s
//! per-point searches, `sympl-cluster`'s worker loop, `sympl-ssim`'s
//! symbolic cross-validation, and `symplfied::Framework` all drive the same
//! engine instead of each re-implementing the loop around `search()`.
//!
//! Engine properties:
//!
//! * **Fingerprint deduplication.** The visited set stores 128-bit
//!   [`Fingerprint`]s (16 bytes per state) rather than whole
//!   [`MachineState`] values; combined with the copy-on-write state
//!   representation this is what lets one task sweep millions of states.
//!   `fingerprint()` is O(1) at the enqueue call site — the state carries
//!   rolling Zobrist-style component digests updated per write — so dedup
//!   costs O(writes) along a path, never O(|state|) per successor.
//! * **Single insertion point.** A state's fingerprint enters the visited
//!   set exactly once, when the state is enqueued (the old `search()`
//!   redundantly re-inserted on dequeue as well).
//! * **Pluggable frontier.** The engine drives its frontier exclusively
//!   through the [`FrontierQueue`] trait: FIFO/LIFO, best-first, iterative
//!   deepening, and the disk-spilling window all plug in via
//!   [`SearchLimits::policy`] / [`SearchLimits::max_frontier_bytes`] with
//!   no engine change (see [`crate::frontier`] for the policies and their
//!   determinism contracts). Iterative deepening's rounds are the one
//!   engine-visible wrinkle: when the frontier drains,
//!   [`FrontierQueue::next_round`] may hand back the root seeds, and the
//!   engine resets its visited set (the per-round dedup reset) plus the
//!   per-round terminal/solution tallies before re-seeding.
//! * **Budget accounting.** State, solution, and wall-clock budgets are
//!   tracked per [`SearchLimits`] and reported in the [`SearchReport`],
//!   along with throughput and peak-frontier-footprint figures
//!   (`peak_frontier_len` / `peak_frontier_bytes` / `spilled_states`) for
//!   campaign summaries and benchmark tables.
//!
//! [`Fingerprint`]: sympl_machine::Fingerprint

use std::time::Instant;

use sympl_asm::Program;
use sympl_detect::DetectorSet;
use sympl_machine::{ExecLimits, FingerprintSet, MachineState, SuccessorBuf};

use crate::memo::{probe_digest, MemoStore, SubtreeSummary};
use crate::{
    FrontierPolicy, FrontierQueue, OutcomeCounts, Predicate, SearchLimits, SearchReport, Solution,
};

/// A reusable, configured exploration engine over one program + detector
/// set. Construction is cheap; campaigns build one per task (or per point
/// when budgets shrink as the task progresses).
#[derive(Debug, Clone)]
pub struct Explorer<'a> {
    program: &'a Program,
    detectors: &'a DetectorSet,
    limits: SearchLimits,
    /// A policy chosen via [`Explorer::with_policy`]. Kept separate from
    /// `limits.policy` so the two builders compose in either order — a
    /// later `with_limits` cannot silently revert an explicit
    /// `with_policy` choice.
    policy_override: Option<FrontierPolicy>,
    workers_hint: Option<usize>,
    /// An attached memo store ([`Explorer::with_memo`]): searches are
    /// probed against it before expanding and recorded into it when they
    /// finish deterministically. `None` (the default) explores
    /// unconditionally.
    memo: Option<&'a MemoStore>,
}

impl<'a> Explorer<'a> {
    /// An engine with default budgets and a BFS frontier.
    #[must_use]
    pub fn new(program: &'a Program, detectors: &'a DetectorSet) -> Self {
        Explorer {
            program,
            detectors,
            limits: SearchLimits::default(),
            policy_override: None,
            workers_hint: None,
            memo: None,
        }
    }

    /// Attaches (or detaches) a memoization store. With a store attached,
    /// [`Explorer::explore`] first derives the search's probe digest
    /// ([`crate::probe_digest`]) and serves a hit without expanding a
    /// single state; on a miss it explores normally and records its
    /// summary for later identical searches. Because this traversal is
    /// deterministic, even state- and solution-capped reports are
    /// reproducible and recordable — only time-capped searches (where the
    /// wall clock, not the search's identity, decides the cut) are never
    /// recorded. Closure-backed [`Predicate::Custom`] searches bypass the
    /// store (their identity cannot be encoded). Served reports replay
    /// the recorded statistics and truncation flags verbatim, so
    /// memoization never changes a search's outcome — only
    /// [`SearchReport::memo_hits`] / [`SearchReport::memo_states_skipped`]
    /// reveal it.
    #[must_use]
    pub fn with_memo(mut self, memo: Option<&'a MemoStore>) -> Self {
        self.memo = memo;
        self
    }

    /// The attached memo store, if any.
    #[must_use]
    pub fn memo(&self) -> Option<&'a MemoStore> {
        self.memo
    }

    /// Caps the worker count [`Explorer::explore_auto`] may engage when it
    /// routes a big-budget search to the parallel engine. `1` forces the
    /// sequential path; `None` (the default) uses every hardware thread.
    ///
    /// Callers that are *themselves* running many explorers concurrently
    /// (the cluster's task pool) set this to their share of the machine so
    /// nested parallelism does not oversubscribe it.
    #[must_use]
    pub fn with_workers_hint(mut self, workers: Option<usize>) -> Self {
        self.workers_hint = workers.map(|w| w.max(1));
        self
    }

    /// The configured worker cap for auto-routed searches (`None` = all
    /// hardware threads).
    #[must_use]
    pub fn workers_hint(&self) -> Option<usize> {
        self.workers_hint
    }

    /// Replaces the search budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Replaces the frontier policy. Overrides [`SearchLimits::policy`]
    /// whether called before or after [`Explorer::with_limits`].
    #[must_use]
    pub fn with_policy(mut self, policy: FrontierPolicy) -> Self {
        self.policy_override = Some(policy);
        self
    }

    /// The effective frontier policy: an explicit
    /// [`Explorer::with_policy`] choice, else [`SearchLimits::policy`].
    #[must_use]
    pub fn policy(&self) -> FrontierPolicy {
        self.policy_override.unwrap_or(self.limits.policy)
    }

    /// The program under exploration.
    #[must_use]
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The detector set the program's `check` instructions reference.
    #[must_use]
    pub fn detectors(&self) -> &'a DetectorSet {
        self.detectors
    }

    /// The configured search budgets.
    #[must_use]
    pub fn limits(&self) -> &SearchLimits {
        &self.limits
    }

    /// The per-path execution bounds (watchdog + fork caps).
    #[must_use]
    pub fn exec_limits(&self) -> &ExecLimits {
        &self.limits.exec
    }

    /// Exhaustively explores the state space from `seeds`, collecting
    /// terminal states that satisfy `predicate`.
    ///
    /// Every distinct machine state is expanded once (deduplicated by
    /// fingerprint); the exploration stops early when a state, solution,
    /// or time budget is exhausted, and the report records which. Under an
    /// iterative-deepening policy, "once" holds per round, and the report's
    /// terminal counts and solutions describe the final (deepest) round —
    /// complete whenever the search exhausts (see [`crate::frontier`]).
    #[must_use]
    pub fn explore(&self, seeds: Vec<MachineState>, predicate: &Predicate) -> SearchReport {
        let Some(store) = self.memo else {
            return self.explore_core(seeds, predicate).0;
        };
        let Some(digest) = probe_digest(predicate, &self.limits, self.policy(), 1, &seeds) else {
            // Custom predicate: no encodable identity, bypass the store.
            return self.explore_core(seeds, predicate).0;
        };
        if let Some(served) = store.serve(digest) {
            return served;
        }
        let (report, max_depth) = self.explore_core(seeds, predicate);
        // The sequential traversal is deterministic, so a state- or
        // solution-capped report truncates at the same state on every
        // identical search and is just as replayable as an exhausted one.
        // Only a wall-clock stop depends on something outside the probe
        // digest and must never be recorded.
        if !report.hit_time_cap {
            store.record(digest, SubtreeSummary::from_report(&report, max_depth));
        }
        report
    }

    /// The expansion loop behind [`Explorer::explore`], memo-blind.
    /// Returns the report plus the subtree depth: the deepest terminal's
    /// step count beyond the shallowest seed's.
    fn explore_core(&self, seeds: Vec<MachineState>, predicate: &Predicate) -> (SearchReport, u64) {
        let start = Instant::now();
        let mut report = SearchReport::default();
        let mut terminals = OutcomeCounts::default();
        let base_steps = seeds.iter().map(MachineState::steps).min().unwrap_or(0);
        let mut deepest = base_steps;

        // Parent arena for witness traces: (parent index or usize::MAX, pc).
        // Survives iterative-deepening rounds: indices recorded in round 0
        // stay valid as re-seed metadata.
        let mut arena: Vec<(usize, usize)> = Vec::new();
        // Fingerprints only (16 bytes per visited state), bucketed by their
        // own digest bits — no SipHash re-hash per probe.
        let mut visited = FingerprintSet::default();
        let mut frontier: Box<dyn FrontierQueue<usize>> =
            self.policy().build(self.limits.max_frontier_bytes);

        for s in seeds {
            let pc = s.pc();
            // The single insertion point: enqueue time.
            if visited.insert(s.fingerprint()) {
                arena.push((usize::MAX, pc));
                frontier.seed(s, arena.len() - 1);
            }
        }
        // Root entries occupy the arena prefix; iterative-deepening rounds
        // truncate back to here so dead trace nodes from earlier rounds
        // don't accumulate in the one mode sold as memory-minimal.
        let root_arena_len = arena.len();
        report.peak_frontier_len = frontier.len();
        report.peak_frontier_bytes = frontier.approx_bytes();

        // Check the time budget only every few expansions; Instant::now()
        // is cheap but not free, and tasks expand millions of states.
        const TIME_CHECK_MASK: usize = 0x3F;

        // Decode once per search, then dispatch over the dense IR with one
        // successor buffer reused for the whole sweep (no per-step Vec).
        let decoded = self.program.decoded();
        let mut successors = SuccessorBuf::new();

        // Whether the loop exited by sweeping the space (frontier drained
        // and no further round demanded), as opposed to a cap break.
        let mut swept = false;
        'rounds: loop {
            while let Some((state, idx)) = frontier.pop() {
                if report.states_explored >= self.limits.max_states {
                    report.hit_state_cap = true;
                    break 'rounds;
                }
                if let Some(budget) = self.limits.max_time {
                    if report.states_explored & TIME_CHECK_MASK == 0 && start.elapsed() >= budget {
                        report.hit_time_cap = true;
                        break 'rounds;
                    }
                }
                report.states_explored += 1;

                if state.status().is_terminal() {
                    terminals.record(&state);
                    deepest = deepest.max(state.steps());
                    if predicate.matches(&state) {
                        report.solutions.push(Solution {
                            trace: reconstruct_trace(&arena, idx),
                            state,
                        });
                        if report.solutions.len() >= self.limits.max_solutions {
                            report.hit_solution_cap = true;
                            break 'rounds;
                        }
                    }
                    continue;
                }

                state.step_into(decoded, self.detectors, &self.limits.exec, &mut successors);
                for succ in successors.drain() {
                    if visited.insert(succ.fingerprint()) {
                        arena.push((idx, succ.pc()));
                        frontier.push(succ, arena.len() - 1);
                    } else {
                        report.duplicate_hits += 1;
                    }
                }
                report.peak_frontier_len = report.peak_frontier_len.max(frontier.len());
                report.peak_frontier_bytes =
                    report.peak_frontier_bytes.max(frontier.approx_bytes());
            }

            // The frontier drained. A restarting policy (iterative
            // deepening) may demand another round from the roots: reset the
            // visited set (per-round dedup reset), the per-round tallies,
            // and the arena's non-root suffix (its entries are unreachable
            // once the round's solutions are cleared), then re-seed through
            // the normal dedup path. `None` means the space is swept within
            // the final bound — the loop's only complete exit.
            match frontier.next_round() {
                Some(roots) => {
                    visited.clear();
                    terminals = OutcomeCounts::default();
                    report.solutions.clear();
                    arena.truncate(root_arena_len);
                    for (s, meta) in roots {
                        if visited.insert(s.fingerprint()) {
                            frontier.seed(s, meta);
                        }
                    }
                }
                None => {
                    swept = true;
                    break;
                }
            }
        }

        report.exhausted =
            swept && !report.hit_state_cap && !report.hit_solution_cap && !report.hit_time_cap;
        report.spilled_states = frontier.spilled_states();
        report.terminals = terminals;
        report.elapsed = start.elapsed();
        report.states_per_second = SearchReport::throughput(report.states_explored, report.elapsed);
        report.workers = 1;
        (report, deepest - base_steps)
    }
}

fn reconstruct_trace(arena: &[(usize, usize)], mut idx: usize) -> Vec<usize> {
    let mut trace = Vec::new();
    loop {
        let (parent, pc) = arena[idx];
        trace.push(pc);
        if parent == usize::MAX {
            break;
        }
        idx = parent;
    }
    trace.reverse();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PriorityHeuristic;
    use std::time::Duration;
    use sympl_asm::{parse_program, Reg};
    use sympl_symbolic::Value;

    fn dets() -> DetectorSet {
        DetectorSet::new()
    }

    #[test]
    fn bfs_and_dfs_find_the_same_terminals() {
        let p = parse_program(
            "beq $1, 0, long\nprint $1\nhalt\nlong: nop\nnop\nmov $1, 1\nprint $1\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let explore = |policy| {
            Explorer::new(&p, &dets())
                .with_policy(policy)
                .explore(vec![s.clone()], &Predicate::Any)
        };
        let bfs = explore(FrontierPolicy::Bfs);
        let dfs = explore(FrontierPolicy::Dfs);
        assert!(bfs.exhausted && dfs.exhausted);
        assert_eq!(bfs.terminals, dfs.terminals);
        assert_eq!(bfs.states_explored, dfs.states_explored);
        assert_eq!(bfs.solutions.len(), dfs.solutions.len());
        // BFS returns the shortest witness first; DFS dives deep first.
        assert!(bfs.solutions[0].trace.len() <= dfs.solutions[0].trace.len());
    }

    #[test]
    fn every_policy_agrees_on_an_exhausted_search() {
        let p = parse_program(
            "beq $1, 0, t\nmov $2, 1\njmp join\nt: mov $2, 2\nnop\n\
             join: print $2\nprint $1\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let bfs = Explorer::new(&p, &dets()).explore(vec![s.clone()], &Predicate::Any);
        assert!(bfs.exhausted);
        for policy in [
            FrontierPolicy::Dfs,
            FrontierPolicy::Priority(PriorityHeuristic::ConstraintMapSize),
            FrontierPolicy::Priority(PriorityHeuristic::Depth),
            FrontierPolicy::Priority(PriorityHeuristic::OutputLen),
        ] {
            let report = Explorer::new(&p, &dets())
                .with_policy(policy)
                .explore(vec![s.clone()], &Predicate::Any);
            assert!(report.exhausted, "{policy:?}");
            assert_eq!(report.terminals, bfs.terminals, "{policy:?}");
            assert_eq!(report.states_explored, bfs.states_explored, "{policy:?}");
            assert_eq!(report.solutions.len(), bfs.solutions.len(), "{policy:?}");
        }
        // Iterative deepening re-explores per round, so only the terminal
        // picture must agree.
        let idd = Explorer::new(&p, &dets())
            .with_policy(FrontierPolicy::IterativeDeepening {
                initial_depth: 1,
                depth_step: 1,
            })
            .explore(vec![s.clone()], &Predicate::Any);
        assert!(idd.exhausted);
        assert_eq!(idd.terminals, bfs.terminals);
        assert_eq!(idd.solutions.len(), bfs.solutions.len());
        assert!(
            idd.states_explored >= bfs.states_explored,
            "rounds re-expand shallow states"
        );
    }

    #[test]
    fn spilling_bfs_reproduces_the_unbounded_run() {
        let p = parse_program(
            "beq $1, 0, long\nprint $1\nhalt\nlong: nop\nnop\nmov $1, 1\nprint $1\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let unbounded = Explorer::new(&p, &dets()).explore(vec![s.clone()], &Predicate::Any);
        let limits = SearchLimits {
            max_frontier_bytes: Some(1), // clamped to the 4 KiB floor
            ..SearchLimits::default()
        };
        let spilled = Explorer::new(&p, &dets())
            .with_limits(limits)
            .explore(vec![s], &Predicate::Any);
        assert!(spilled.exhausted);
        assert_eq!(spilled.terminals, unbounded.terminals);
        assert_eq!(spilled.states_explored, unbounded.states_explored);
        assert_eq!(spilled.duplicate_hits, unbounded.duplicate_hits);
        // Identical expansion order means identical witness traces, too.
        let traces = |r: &SearchReport| {
            r.solutions
                .iter()
                .map(|s| s.trace.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(traces(&spilled), traces(&unbounded));
    }

    #[test]
    fn converging_paths_deduplicate_by_fingerprint() {
        // A diamond whose sides are the same length (3 steps each) and
        // converge completely after `join` clears the forked register and
        // its constraints: the second arrival's successor is a duplicate,
        // so the tail (print/halt) is explored exactly once.
        let p = parse_program(
            "beq $1, 0, t\nmov $2, 1\njmp join\nt: mov $2, 1\nnop\n\
             join: mov $1, 0\nprint $2\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let report = Explorer::new(&p, &dets()).explore(vec![s], &Predicate::Any);
        assert!(report.exhausted);
        assert_eq!(
            report.duplicate_hits, 1,
            "the post-join state must be recognised as already visited: {report}"
        );
        assert_eq!(
            report.terminals.halted, 1,
            "only one path survives past the join: {report}"
        );
        // seed + both fork successors + one more state per side + the
        // merged join/print/halt tail expanded once = 10 expansions.
        assert_eq!(report.states_explored, 10, "{report}");
    }

    #[test]
    fn seeds_are_deduplicated_by_fingerprint() {
        let p = parse_program("print $1\nhalt").unwrap();
        let s = MachineState::new();
        let report =
            Explorer::new(&p, &dets()).explore(vec![s.clone(), s.clone(), s], &Predicate::Any);
        assert_eq!(report.solutions.len(), 1, "duplicate seeds collapse");
        assert!(report.exhausted);
    }

    #[test]
    fn throughput_and_peaks_are_reported() {
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let limits = SearchLimits {
            max_states: 500,
            exec: ExecLimits::with_max_steps(1_000_000),
            ..SearchLimits::default()
        };
        let report = Explorer::new(&p, &dets())
            .with_limits(limits)
            .explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_state_cap);
        assert!(
            report.states_per_second > 0.0,
            "throughput must be populated: {report}"
        );
        assert!(report.peak_frontier_len > 0, "{report}");
        assert!(report.peak_frontier_bytes > 0, "{report}");
        assert_eq!(report.spilled_states, 0, "no budget, no spilling");
    }

    #[test]
    fn with_policy_survives_with_limits_in_any_order() {
        let p = parse_program("halt").unwrap();
        let d = dets();
        let after = Explorer::new(&p, &d)
            .with_policy(FrontierPolicy::Dfs)
            .with_limits(SearchLimits::default());
        assert_eq!(after.policy(), FrontierPolicy::Dfs);
        let before = Explorer::new(&p, &d)
            .with_limits(SearchLimits::default())
            .with_policy(FrontierPolicy::Dfs);
        assert_eq!(before.policy(), FrontierPolicy::Dfs);
        // With no explicit override, the limits' policy governs.
        let from_limits = Explorer::new(&p, &d).with_limits(SearchLimits {
            policy: FrontierPolicy::Dfs,
            ..SearchLimits::default()
        });
        assert_eq!(from_limits.policy(), FrontierPolicy::Dfs);
    }

    #[test]
    fn memoized_reruns_serve_identical_reports() {
        let p = parse_program(
            "beq $1, 0, t\nmov $2, 1\njmp join\nt: mov $2, 2\nnop\n\
             join: print $2\nprint $1\nhalt",
        )
        .unwrap();
        let d = dets();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let store = crate::MemoStore::for_campaign(&p, &d);
        let e = Explorer::new(&p, &d).with_memo(Some(&store));
        let cold = e.explore(vec![s.clone()], &Predicate::Any);
        assert!(cold.exhausted);
        assert_eq!(cold.memo_hits, 0, "first run expands");
        assert_eq!(store.inserts(), 1, "exhausted search recorded");
        let warm = e.explore(vec![s.clone()], &Predicate::Any);
        assert_eq!(warm.memo_hits, 1, "second run serves");
        assert_eq!(warm.memo_states_skipped, cold.states_explored);
        // Everything outcome-shaped replays verbatim.
        assert_eq!(warm.states_explored, cold.states_explored);
        assert_eq!(warm.terminals, cold.terminals);
        assert_eq!(warm.duplicate_hits, cold.duplicate_hits);
        assert_eq!(warm.solutions, cold.solutions);
        assert!(warm.exhausted);
        // A different seed set is a different search: miss, then record.
        let fresh = e.explore(vec![MachineState::new()], &Predicate::Any);
        assert_eq!(fresh.memo_hits, 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn state_capped_searches_are_memoized_and_replay_their_truncation() {
        // The sequential traversal is deterministic, so a state-capped
        // report truncates at the same state on every identical search:
        // it is recorded, and a warm run replays the cap flag verbatim.
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let d = dets();
        let store = crate::MemoStore::for_campaign(&p, &d);
        let limits = SearchLimits {
            max_states: 100,
            exec: ExecLimits::with_max_steps(1_000_000),
            ..SearchLimits::default()
        };
        let e = Explorer::new(&p, &d)
            .with_limits(limits)
            .with_memo(Some(&store));
        let cold = e.explore(vec![MachineState::new()], &Predicate::Any);
        assert!(cold.hit_state_cap && !cold.exhausted);
        assert_eq!(store.inserts(), 1, "deterministic truncation recorded");
        let warm = e.explore(vec![MachineState::new()], &Predicate::Any);
        assert_eq!(warm.memo_hits, 1);
        assert!(warm.hit_state_cap && !warm.exhausted);
        assert_eq!(warm.states_explored, cold.states_explored);
    }

    #[test]
    fn time_capped_searches_are_never_memoized() {
        // Where a wall clock truncates is not a function of the search's
        // identity, so a time-capped report must never enter the store.
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let d = dets();
        let store = crate::MemoStore::for_campaign(&p, &d);
        let limits = SearchLimits {
            max_time: Some(Duration::ZERO),
            exec: ExecLimits::with_max_steps(1_000_000),
            ..SearchLimits::default()
        };
        let e = Explorer::new(&p, &d)
            .with_limits(limits)
            .with_memo(Some(&store));
        let report = e.explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_time_cap);
        assert!(
            store.is_empty(),
            "a wall-clock stop describes the clock, not the subtree"
        );
    }

    #[test]
    fn custom_predicates_bypass_the_store() {
        let p = parse_program("print $1\nhalt").unwrap();
        let d = dets();
        let store = crate::MemoStore::for_campaign(&p, &d);
        let e = Explorer::new(&p, &d).with_memo(Some(&store));
        let report = e.explore(vec![MachineState::new()], &Predicate::custom(|_| true));
        assert!(report.exhausted);
        assert!(store.is_empty(), "no encodable identity, nothing stored");
        assert_eq!(store.misses(), 0, "not even probed");
    }

    #[test]
    fn accessors_expose_configuration() {
        let p = parse_program("halt").unwrap();
        let d = dets();
        let limits = SearchLimits::with_max_steps(42);
        let e = Explorer::new(&p, &d)
            .with_limits(limits)
            .with_policy(FrontierPolicy::Dfs);
        assert_eq!(e.limits().exec.max_steps, 42);
        assert_eq!(e.exec_limits().max_steps, 42);
        assert_eq!(e.policy(), FrontierPolicy::Dfs);
        assert_eq!(e.program().len(), 1);
        assert_eq!(e.detectors().len(), 0);
    }
}
