//! The reusable exploration engine behind every campaign.
//!
//! [`Explorer`] packages the pieces a search task needs — program, detector
//! set, budgets, and a frontier discipline — so that `sympl-inject`'s
//! per-point searches, `sympl-cluster`'s worker loop, `sympl-ssim`'s
//! symbolic cross-validation, and `symplfied::Framework` all drive the same
//! engine instead of each re-implementing the loop around `search()`.
//!
//! Engine properties:
//!
//! * **Fingerprint deduplication.** The visited set stores 128-bit
//!   [`Fingerprint`]s (16 bytes per state) rather than whole
//!   [`MachineState`] values; combined with the copy-on-write state
//!   representation this is what lets one task sweep millions of states.
//!   `fingerprint()` is O(1) at the enqueue call site — the state carries
//!   rolling Zobrist-style component digests updated per write — so dedup
//!   costs O(writes) along a path, never O(|state|) per successor.
//! * **Single insertion point.** A state's fingerprint enters the visited
//!   set exactly once, when the state is enqueued (the old `search()`
//!   redundantly re-inserted on dequeue as well).
//! * **Pluggable frontier.** [`Frontier::Bfs`] reproduces Maude's
//!   breadth-first `search =>!` (shortest witnesses first, the default);
//!   [`Frontier::Dfs`] dives to terminals quickly, which suits
//!   memory-constrained sweeps that only need *a* witness.
//! * **Budget accounting.** State, solution, and wall-clock budgets are
//!   tracked per [`SearchLimits`] and reported in the [`SearchReport`],
//!   along with a `states_per_second` throughput figure for campaign
//!   summaries and benchmark tables.

use std::collections::VecDeque;
use std::time::Instant;

use sympl_asm::Program;
use sympl_detect::DetectorSet;
use sympl_machine::{ExecLimits, FingerprintSet, MachineState};

use crate::{OutcomeCounts, Predicate, SearchLimits, SearchReport, Solution};

/// The frontier discipline: which state the engine expands next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontier {
    /// Breadth-first (the paper's exhaustive `search =>!`): shortest
    /// witness traces are found first.
    #[default]
    Bfs,
    /// Depth-first: reaches terminals with a much smaller live frontier;
    /// witness traces are not length-minimal.
    Dfs,
}

/// A reusable, configured exploration engine over one program + detector
/// set. Construction is cheap; campaigns build one per task (or per point
/// when budgets shrink as the task progresses).
#[derive(Debug, Clone)]
pub struct Explorer<'a> {
    program: &'a Program,
    detectors: &'a DetectorSet,
    limits: SearchLimits,
    frontier: Frontier,
    workers_hint: Option<usize>,
}

impl<'a> Explorer<'a> {
    /// An engine with default budgets and a BFS frontier.
    #[must_use]
    pub fn new(program: &'a Program, detectors: &'a DetectorSet) -> Self {
        Explorer {
            program,
            detectors,
            limits: SearchLimits::default(),
            frontier: Frontier::default(),
            workers_hint: None,
        }
    }

    /// Caps the worker count [`Explorer::explore_auto`] may engage when it
    /// routes a big-budget search to the parallel engine. `1` forces the
    /// sequential path; `None` (the default) uses every hardware thread.
    ///
    /// Callers that are *themselves* running many explorers concurrently
    /// (the cluster's task pool) set this to their share of the machine so
    /// nested parallelism does not oversubscribe it.
    #[must_use]
    pub fn with_workers_hint(mut self, workers: Option<usize>) -> Self {
        self.workers_hint = workers.map(|w| w.max(1));
        self
    }

    /// The configured worker cap for auto-routed searches (`None` = all
    /// hardware threads).
    #[must_use]
    pub fn workers_hint(&self) -> Option<usize> {
        self.workers_hint
    }

    /// Replaces the search budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Replaces the frontier discipline.
    #[must_use]
    pub fn with_frontier(mut self, frontier: Frontier) -> Self {
        self.frontier = frontier;
        self
    }

    /// The configured frontier discipline.
    #[must_use]
    pub fn frontier(&self) -> Frontier {
        self.frontier
    }

    /// The program under exploration.
    #[must_use]
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The detector set the program's `check` instructions reference.
    #[must_use]
    pub fn detectors(&self) -> &'a DetectorSet {
        self.detectors
    }

    /// The configured search budgets.
    #[must_use]
    pub fn limits(&self) -> &SearchLimits {
        &self.limits
    }

    /// The per-path execution bounds (watchdog + fork caps).
    #[must_use]
    pub fn exec_limits(&self) -> &ExecLimits {
        &self.limits.exec
    }

    /// Exhaustively explores the state space from `seeds`, collecting
    /// terminal states that satisfy `predicate`.
    ///
    /// Every distinct machine state is expanded once (deduplicated by
    /// fingerprint); the exploration stops early when a state, solution,
    /// or time budget is exhausted, and the report records which.
    #[must_use]
    pub fn explore(&self, seeds: Vec<MachineState>, predicate: &Predicate) -> SearchReport {
        let start = Instant::now();
        let mut report = SearchReport::default();
        let mut terminals = OutcomeCounts::default();

        // Parent arena for witness traces: (parent index or usize::MAX, pc).
        let mut arena: Vec<(usize, usize)> = Vec::new();
        // Fingerprints only (16 bytes per visited state), bucketed by their
        // own digest bits — no SipHash re-hash per probe.
        let mut visited = FingerprintSet::default();
        let mut frontier: VecDeque<(MachineState, usize)> = VecDeque::new();

        for s in seeds {
            let pc = s.pc();
            // The single insertion point: enqueue time.
            if visited.insert(s.fingerprint()) {
                arena.push((usize::MAX, pc));
                frontier.push_back((s, arena.len() - 1));
            }
        }

        // Check the time budget only every few expansions; Instant::now()
        // is cheap but not free, and tasks expand millions of states.
        const TIME_CHECK_MASK: usize = 0x3F;

        while let Some((state, idx)) = self.pop(&mut frontier) {
            if report.states_explored >= self.limits.max_states {
                report.hit_state_cap = true;
                break;
            }
            if let Some(budget) = self.limits.max_time {
                if report.states_explored & TIME_CHECK_MASK == 0 && start.elapsed() >= budget {
                    report.hit_time_cap = true;
                    break;
                }
            }
            report.states_explored += 1;

            if state.status().is_terminal() {
                terminals.record(&state);
                if predicate.matches(&state) {
                    report.solutions.push(Solution {
                        trace: reconstruct_trace(&arena, idx),
                        state,
                    });
                    if report.solutions.len() >= self.limits.max_solutions {
                        report.hit_solution_cap = true;
                        break;
                    }
                }
                continue;
            }

            for succ in state.step(self.program, self.detectors, &self.limits.exec) {
                if visited.insert(succ.fingerprint()) {
                    arena.push((idx, succ.pc()));
                    frontier.push_back((succ, arena.len() - 1));
                } else {
                    report.duplicate_hits += 1;
                }
            }
        }

        report.exhausted = frontier.is_empty()
            && !report.hit_state_cap
            && !report.hit_solution_cap
            && !report.hit_time_cap;
        report.terminals = terminals;
        report.elapsed = start.elapsed();
        report.states_per_second = SearchReport::throughput(report.states_explored, report.elapsed);
        report.workers = 1;
        report
    }

    fn pop(&self, frontier: &mut VecDeque<(MachineState, usize)>) -> Option<(MachineState, usize)> {
        match self.frontier {
            Frontier::Bfs => frontier.pop_front(),
            Frontier::Dfs => frontier.pop_back(),
        }
    }
}

fn reconstruct_trace(arena: &[(usize, usize)], mut idx: usize) -> Vec<usize> {
    let mut trace = Vec::new();
    loop {
        let (parent, pc) = arena[idx];
        trace.push(pc);
        if parent == usize::MAX {
            break;
        }
        idx = parent;
    }
    trace.reverse();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::{parse_program, Reg};
    use sympl_symbolic::Value;

    fn dets() -> DetectorSet {
        DetectorSet::new()
    }

    #[test]
    fn bfs_and_dfs_find_the_same_terminals() {
        let p = parse_program(
            "beq $1, 0, long\nprint $1\nhalt\nlong: nop\nnop\nmov $1, 1\nprint $1\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let explore = |frontier| {
            Explorer::new(&p, &dets())
                .with_frontier(frontier)
                .explore(vec![s.clone()], &Predicate::Any)
        };
        let bfs = explore(Frontier::Bfs);
        let dfs = explore(Frontier::Dfs);
        assert!(bfs.exhausted && dfs.exhausted);
        assert_eq!(bfs.terminals, dfs.terminals);
        assert_eq!(bfs.states_explored, dfs.states_explored);
        assert_eq!(bfs.solutions.len(), dfs.solutions.len());
        // BFS returns the shortest witness first; DFS dives deep first.
        assert!(bfs.solutions[0].trace.len() <= dfs.solutions[0].trace.len());
    }

    #[test]
    fn converging_paths_deduplicate_by_fingerprint() {
        // A diamond whose sides are the same length (3 steps each) and
        // converge completely after `join` clears the forked register and
        // its constraints: the second arrival's successor is a duplicate,
        // so the tail (print/halt) is explored exactly once.
        let p = parse_program(
            "beq $1, 0, t\nmov $2, 1\njmp join\nt: mov $2, 1\nnop\n\
             join: mov $1, 0\nprint $2\nhalt",
        )
        .unwrap();
        let mut s = MachineState::new();
        s.set_reg(Reg::r(1), Value::Err);
        let report = Explorer::new(&p, &dets()).explore(vec![s], &Predicate::Any);
        assert!(report.exhausted);
        assert_eq!(
            report.duplicate_hits, 1,
            "the post-join state must be recognised as already visited: {report}"
        );
        assert_eq!(
            report.terminals.halted, 1,
            "only one path survives past the join: {report}"
        );
        // seed + both fork successors + one more state per side + the
        // merged join/print/halt tail expanded once = 10 expansions.
        assert_eq!(report.states_explored, 10, "{report}");
    }

    #[test]
    fn seeds_are_deduplicated_by_fingerprint() {
        let p = parse_program("print $1\nhalt").unwrap();
        let s = MachineState::new();
        let report =
            Explorer::new(&p, &dets()).explore(vec![s.clone(), s.clone(), s], &Predicate::Any);
        assert_eq!(report.solutions.len(), 1, "duplicate seeds collapse");
        assert!(report.exhausted);
    }

    #[test]
    fn throughput_is_reported() {
        let p = parse_program("loop: addi $2, $2, 1\nbeq $0, 0, loop").unwrap();
        let limits = SearchLimits {
            max_states: 500,
            exec: ExecLimits::with_max_steps(1_000_000),
            ..SearchLimits::default()
        };
        let report = Explorer::new(&p, &dets())
            .with_limits(limits)
            .explore(vec![MachineState::new()], &Predicate::Any);
        assert!(report.hit_state_cap);
        assert!(
            report.states_per_second > 0.0,
            "throughput must be populated: {report}"
        );
    }

    #[test]
    fn accessors_expose_configuration() {
        let p = parse_program("halt").unwrap();
        let d = dets();
        let limits = SearchLimits::with_max_steps(42);
        let e = Explorer::new(&p, &d).with_limits(limits);
        assert_eq!(e.limits().exec.max_steps, 42);
        assert_eq!(e.exec_limits().max_steps, 42);
        assert_eq!(e.program().len(), 1);
        assert_eq!(e.detectors().len(), 0);
    }
}
