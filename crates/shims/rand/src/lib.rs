//! Minimal offline stand-in for the subset of the `rand` crate API this
//! workspace uses (`StdRng::seed_from_u64` + `Rng::gen::<i64>()`).
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. The campaign code only needs a deterministic,
//! seedable 64-bit generator; this shim provides one built on SplitMix64
//! (Steele, Lea & Flood 2014) feeding a xoshiro256** core — statistically
//! solid for fault-value sampling, deterministic for a fixed seed, and
//! stable across platforms.
//!
//! It is **not** the real `rand`: streams differ from upstream `StdRng`,
//! and only the APIs the workspace exercises are implemented.

#![forbid(unsafe_code)]

/// Low-level 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<i64>) -> i64
    where
        Self: Sized,
    {
        assert!(
            range.start < range.end,
            "gen_range called with an empty or reversed range"
        );
        let span = range.end.wrapping_sub(range.start) as u64;
        // Modulo bias is negligible for the spans used here and
        // acceptable for fault-value sampling.
        range.start.wrapping_add((self.next_u64() % span) as i64)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from uniform bits (stand-in for `distributions::Standard`).
pub trait Standard {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<i64>(), b.gen::<i64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<i64>() == b.gen::<i64>()).count();
        assert!(same < 4, "streams from different seeds must differ");
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5..17);
            assert!((-5..17).contains(&v));
        }
    }
}
