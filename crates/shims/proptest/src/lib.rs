//! Minimal offline stand-in for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be fetched. This shim implements the pieces the
//! property tests exercise — the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `boxed`, range/tuple/`Just`/`any` strategies, the
//! `prop_oneof!` union (with weights), `prop::collection::vec`,
//! `prop::sample::select`, a tiny `[class]{m,n}` string-pattern strategy,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case index and message
//!   but is not minimized.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test name, so runs are reproducible (and CI is stable) without a
//!   persisted regression file.

#![forbid(unsafe_code)]

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A test-case failure (subset of `proptest::test_runner::TestCaseError`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given reason.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator driving the strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded deterministically from a label (the test
        /// name), so every run of the suite samples the same cases.
        #[must_use]
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label picks the stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each produced value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + (rng.below(span as u64) as i128)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    if span > u64::MAX as i128 {
                        // Full-domain range (e.g. i64::MIN..=i64::MAX):
                        // every bit pattern is in range.
                        return rng.next_u64() as $t;
                    }
                    (*self.start() as i128 + (rng.below(span as u64) as i128)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, G)
    );

    /// Produces any value of `T` from uniform bits.
    pub struct Any<T>(PhantomData<T>);

    /// The full-range strategy for `T` (subset of `proptest::prelude::any`).
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl Strategy for Any<i64> {
        type Value = i64;
        fn sample(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Weighted union over same-valued strategies (`prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    /// Builds a weighted union; weights must not all be zero.
    #[must_use]
    pub fn union<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed during construction")
        }
    }

    /// String strategy from a `[class]{m,n}`-style pattern (the tiny regex
    /// subset the suite's tests use). Supports literal characters, `?` has
    /// no special meaning here, character classes with ranges
    /// (`[a-cx0-9]`), and `{m,n}` repetition after a class or literal.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                i += 1;
                assert!(
                    chars.get(i) != Some(&'^'),
                    "negated classes are not supported by the proptest shim"
                );
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '-' && !set.is_empty() && chars.get(i + 1) != Some(&']') {
                        let from = *set.last().expect("nonempty set") as u32;
                        let to = chars[i + 1] as u32;
                        for c in (from + 1)..=to {
                            set.push(char::from_u32(c).expect("valid range"));
                        }
                        i += 2;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // skip ']'
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m,n} repetition.
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {m,n}")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = body
                    .split_once(',')
                    .expect("the shim supports only {m,n} repetitions");
                i = close + 1;
                (
                    lo.parse::<usize>().expect("bad lower repeat bound"),
                    hi.parse::<usize>().expect("bad upper repeat bound"),
                )
            } else {
                (1, 1)
            };
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..len {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vec strategy (subset of `proptest::collection::vec`).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size.start..size.end` elements drawn from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice among fixed items (subset of `proptest::sample::select`).
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Picks uniformly from `items`.
    #[must_use]
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over no items");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Weighted (or unweighted) choice among strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$(($weight as u32, {
            // Real proptest needs parens around range arms; they are
            // redundant (but harmless) in this shim's expansion.
            #[allow(unused_parens)]
            let strategy = $strat;
            $crate::strategy::Strategy::boxed(strategy)
        })),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$((1u32, {
            #[allow(unused_parens)]
            let strategy = $strat;
            $crate::strategy::Strategy::boxed(strategy)
        })),+])
    };
}

/// Asserts inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@tests ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(&format!(
                "{}::{}",
                module_path!(),
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&{ $strat }, &mut rng);
                )+
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
