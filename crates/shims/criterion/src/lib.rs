//! Minimal offline stand-in for the subset of the `criterion` crate API
//! this workspace's benches use.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be fetched. This shim keeps every bench target
//! compiling and runnable under `cargo bench`: it times each benchmark
//! with `std::time::Instant` over `sample_size` iterations (after one
//! warm-up) and prints a mean per iteration, plus a throughput figure when
//! one is configured. No statistical analysis, outlier rejection, or
//! HTML reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut b);
        report(name, &b, None);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// Runs and times one benchmark body (subset of `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `sample_size` runs of `f` after one warm-up run.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.measured = Some(start.elapsed() / self.sample_size as u32);
    }
}

/// A group of related benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive a rate for following benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            measured: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b, self.throughput);
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            measured: None,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b, self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    match b.measured {
        Some(mean) => {
            let rate = throughput.map_or(String::new(), |t| {
                let per_sec = t.count() as f64 / mean.as_secs_f64();
                format!("  ({per_sec:.0} {}/s)", t.unit())
            });
            println!("bench {name:<48} {mean:>12.3?}/iter{rate}");
        }
        None => println!("bench {name:<48} (no measurement: iter() never called)"),
    }
}

/// Work-per-iteration descriptor (subset of `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

impl Throughput {
    fn count(self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }
    }

    fn unit(self) -> &'static str {
        match self {
            Throughput::Elements(_) => "elem",
            Throughput::Bytes(_) => "B",
        }
    }
}

/// A benchmark identifier (subset of `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Declares a group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
