//! # sympl-cluster — the parallel campaign runner
//!
//! The paper's evaluation (§6.1) ran its searches "on a cluster of 150
//! dual-processor AMD Opteron machines": the overall search command was
//! "split into multiple smaller searches, each of which sweeps a particular
//! section of the program code", performed independently and pooled, with
//! each task capped at 10 findings and a 30-minute wall budget.
//!
//! This crate reproduces that harness on a thread pool. A [`Campaign`]'s
//! injection points are sharded into [`TaskSpec`]s; worker threads run each
//! task's points through the model checker under per-task caps; results are
//! pooled into a [`CampaignReport`] whose task-completion statistics mirror
//! the ones the paper reports (tasks completed / found errors / found
//! nothing, average completion time).
//!
//! ```no_run
//! use sympl_asm::parse_program;
//! use sympl_check::Predicate;
//! use sympl_cluster::{run_cluster, ClusterConfig};
//! use sympl_detect::DetectorSet;
//! use sympl_inject::{Campaign, ErrorClass};
//!
//! let program = parse_program("read $1\nprint $1\nhalt")?;
//! let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
//! let report = run_cluster(
//!     &program,
//!     &DetectorSet::new(),
//!     &[7],
//!     &campaign,
//!     &Predicate::OutputContainsErr,
//!     &ClusterConfig::default(),
//! );
//! println!("{}", report.summary());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sympl_asm::Program;
use sympl_check::{Explorer, MemoStore, Predicate, SearchLimits, Solution};
use sympl_detect::DetectorSet;
use sympl_inject::{run_point_cached, Campaign, InjectionPoint, PrefixCache};
use sympl_symbolic::Fnv128Hasher;

/// One shard of a campaign: a set of injection points examined by a single
/// worker under one time/finding budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task identifier (its index in the shard list).
    pub id: usize,
    /// The injection points this task sweeps.
    pub points: Vec<InjectionPoint>,
}

/// Shards a campaign into [`TaskSpec`]s — the canonical task partition
/// shared by the in-process pool ([`run_cluster`]) and the network
/// coordinator (`sympl_wire`), so a distributed campaign sweeps exactly
/// the same task boundaries as a local one.
#[must_use]
pub fn shard_specs(campaign: &Campaign, tasks: usize) -> Vec<TaskSpec> {
    campaign
        .shards(tasks)
        .into_iter()
        .enumerate()
        .map(|(id, points)| TaskSpec { id, points })
        .collect()
}

/// Splits a task's point list deterministically in two contiguous halves,
/// both carrying the *parent's* id — the steal-half discipline of the
/// parallel point engine lifted to whole shards. The left half gets the
/// extra point when the count is odd (the same rounding as
/// [`Campaign::shards`]); concatenating the halves reproduces the parent's
/// point list exactly, which is what lets a coordinator re-queue the two
/// halves, run them anywhere, and [`merge_part_results`] back into the
/// result an uninterrupted sweep would have produced. Returns `None` for a
/// task with fewer than two points — there is nothing to share.
#[must_use]
pub fn split_spec(spec: &TaskSpec) -> Option<(TaskSpec, TaskSpec)> {
    if spec.points.len() < 2 {
        return None;
    }
    let mid = spec.points.len().div_ceil(2);
    Some((
        TaskSpec {
            id: spec.id,
            points: spec.points[..mid].to_vec(),
        },
        TaskSpec {
            id: spec.id,
            points: spec.points[mid..].to_vec(),
        },
    ))
}

/// Whether splitting `spec` under `config` preserves result-exactness.
///
/// [`run_task_spec`]'s finding cap couples points to each other: once a
/// task has accumulated `max_findings_per_task` findings, later points are
/// skipped and each point's solution budget shrinks to the cap's
/// remainder. A split part replays its points with the counter reset, so
/// splitting is only exact when the cap can never bind — no task budget,
/// and a finding cap at least `points × max_solutions` (every point can
/// max out its own solution budget without the task-level `min` or the
/// early break ever firing). Any sub-range of a spec that satisfies this
/// satisfies it too, so the guarantee survives recursive splitting.
#[must_use]
pub fn split_preserves_outcome(spec: &TaskSpec, config: &ClusterConfig) -> bool {
    config.task_budget.is_none()
        && config.max_findings_per_task
            >= spec
                .points
                .len()
                .saturating_mul(config.search.max_solutions)
}

/// Whether consulting a cross-campaign [`MemoStore`] under `config`
/// preserves result-exactness — the memoization analogue of
/// [`split_preserves_outcome`].
///
/// A memo hit replays the statistics the search recorded when it first
/// ran, so memo-on and memo-off campaigns produce identical
/// [`CampaignReport::outcome_digest`]s exactly when every point search is
/// itself run-to-run deterministic:
///
/// * no task budget — a wall-clock budget folds the remaining time into
///   each point's `max_time`, making the probe digest (and whether a
///   search is even exhaustive) time-dependent;
/// * sequential point searches ([`ClusterConfig::point_share`] of 1) —
///   the multi-worker engine's truncated searches are schedule-dependent,
///   and its per-width memo entries would be populated by one
///   nondeterministic representative run.
///
/// [`run_task_spec_with_cancel`] applies this gate itself (a store passed
/// under a non-conforming config is simply ignored), so callers use it to
/// decide whether warming a store is worthwhile, not for soundness.
#[must_use]
pub fn memo_preserves_outcome(config: &ClusterConfig) -> bool {
    config.task_budget.is_none() && config.point_share() == 1
}

/// Re-merges the results of split parts of one task — given in canonical
/// order (each part's position in the parent's point list) — into the
/// `(TaskResult, findings)` an uninterrupted sweep of the parent would
/// have produced: counters sum, `completed` ANDs, engine high-water marks
/// max, and findings concatenate (part order *is* point order). Returns
/// `None` for an empty part list. Exact only under the
/// [`split_preserves_outcome`] conditions.
#[must_use]
pub fn merge_part_results(
    parts: Vec<(TaskResult, Vec<Finding>)>,
) -> Option<(TaskResult, Vec<Finding>)> {
    let mut parts = parts.into_iter();
    let (mut merged, mut findings) = parts.next()?;
    for (part, part_findings) in parts {
        debug_assert_eq!(part.id, merged.id, "parts of one task share its id");
        merged.points_examined += part.points_examined;
        merged.points_total += part.points_total;
        merged.activated += part.activated;
        merged.findings += part.findings;
        merged.completed &= part.completed;
        merged.elapsed += part.elapsed;
        merged.states_explored += part.states_explored;
        merged.point_workers = merged.point_workers.max(part.point_workers);
        merged.steals += part.steals;
        merged.peak_frontier_len = merged.peak_frontier_len.max(part.peak_frontier_len);
        merged.peak_frontier_bytes = merged.peak_frontier_bytes.max(part.peak_frontier_bytes);
        merged.spilled_states += part.spilled_states;
        merged.memo_hits += part.memo_hits;
        merged.memo_states_skipped += part.memo_states_skipped;
        merged.prefix_steps_saved += part.prefix_steps_saved;
        findings.extend(part_findings);
    }
    Some((merged, findings))
}

/// A finding: an injection point together with one terminal state that
/// matched the campaign predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The task that produced the finding.
    pub task_id: usize,
    /// The corrupted location / breakpoint.
    pub point: InjectionPoint,
    /// The matching terminal state and its witness trace.
    pub solution: Solution,
}

/// Per-task results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResult {
    /// The task's identifier.
    pub id: usize,
    /// Number of injection points examined before the budget ran out.
    pub points_examined: usize,
    /// Number of points in the task.
    pub points_total: usize,
    /// Points whose breakpoint was reached (fault activated).
    pub activated: usize,
    /// Predicate-matching terminal states found.
    pub findings: usize,
    /// Whether every point was fully searched within the budgets.
    pub completed: bool,
    /// Wall-clock duration of the task.
    pub elapsed: Duration,
    /// Total states explored by this task's searches.
    pub states_explored: usize,
    /// Widest engine that ran any of this task's point searches: 1 when
    /// every point stayed on the sequential fast path, N when a big-budget
    /// point engaged the N-way work-stealing engine.
    pub point_workers: usize,
    /// Work-steal operations across this task's parallel point searches.
    pub steals: usize,
    /// Largest frontier (in states, including any spilled to disk) any of
    /// this task's point searches held at once.
    pub peak_frontier_len: usize,
    /// Largest approximate in-RAM frontier footprint (bytes) any of this
    /// task's point searches held at once — the figure a
    /// `SearchLimits::max_frontier_bytes` budget bounds.
    pub peak_frontier_bytes: usize,
    /// Frontier states this task's searches spilled to disk.
    pub spilled_states: usize,
    /// Point searches served whole from a cross-campaign [`MemoStore`]
    /// instead of being re-expanded. A served search replays its recorded
    /// statistics verbatim (so every digest-visible counter above is
    /// unchanged); the saved work is visible only here. Process-local —
    /// never crosses the wire.
    pub memo_hits: usize,
    /// States the memo hits above did *not* have to re-expand (the served
    /// searches' recorded `states_explored`). Process-local.
    pub memo_states_skipped: usize,
    /// Concrete error-free prefix steps served from the task's
    /// [`PrefixCache`] snapshots instead of re-executed per point.
    /// Process-local.
    pub prefix_steps_saved: u64,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker threads (the paper used 150 cluster nodes).
    pub workers: usize,
    /// Number of tasks the campaign is split into.
    pub tasks: usize,
    /// Per-point search limits (watchdog, state cap, …) — including the
    /// frontier policy and spill budget (`SearchLimits::policy` /
    /// `SearchLimits::max_frontier_bytes`), so memory-bounded campaigns
    /// configure the frontier subsystem here once for every task.
    pub search: SearchLimits,
    /// Wall-clock budget per *task* (the paper allotted 30 minutes).
    pub task_budget: Option<Duration>,
    /// Finding cap per task (the paper capped at 10).
    pub max_findings_per_task: usize,
    /// Worker allowance for each *point search* inside a task. `None`
    /// (the default) gives every point its fair share of the machine
    /// (hardware threads / `workers`); `Some(1)` pins point searches to
    /// the sequential engine, which makes even *truncated* searches
    /// deterministic — the setting distributed campaigns use when their
    /// report must reproduce an in-process run verbatim.
    pub point_workers_hint: Option<usize>,
}

impl ClusterConfig {
    /// The workers hint for every point search in a task: its fair share
    /// of the machine. `config.workers` tasks already run concurrently, so
    /// letting each point search additionally fan out across every
    /// hardware thread would oversubscribe the box workers² ways. With the
    /// default config (task workers = hardware threads) the share is 1 and
    /// point searches stay sequential — parallelism comes from exactly one
    /// layer. An explicit [`ClusterConfig::point_workers_hint`] overrides
    /// the formula (the network coordinator ships the resolved share to
    /// remote workers, whose own core counts must not change the search).
    #[must_use]
    pub fn point_share(&self) -> usize {
        self.point_workers_hint.unwrap_or_else(|| {
            (std::thread::available_parallelism().map_or(1, usize::from) / self.workers.max(1))
                .max(1)
        })
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            tasks: 16,
            search: SearchLimits::default(),
            task_budget: None,
            max_findings_per_task: 10,
            point_workers_hint: None,
        }
    }
}

/// Pooled results of a sharded campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Per-task results, ordered by task id.
    pub tasks: Vec<TaskResult>,
    /// All findings across tasks.
    pub findings: Vec<Finding>,
    /// Total wall-clock time of the campaign (not the sum of task times).
    pub elapsed: Duration,
    /// The campaign survived worker failures: at least one worker died,
    /// stalled past its liveness deadline, or had tasks re-queued. The
    /// *outcomes* are still exact (every shard ran to the same result on a
    /// surviving worker) — degradation describes the schedule, not the
    /// results, so none of these fields feed [`Self::outcome_digest`].
    pub degraded: bool,
    /// Worker connections lost mid-campaign (dead, stalled, or refused).
    pub workers_lost: usize,
    /// Tasks that had to be re-queued onto another worker.
    pub tasks_retried: usize,
    /// Tasks restored from a coordinator checkpoint instead of re-run.
    pub resumed_tasks: usize,
    /// Workers admitted into the campaign after it started (wire-level
    /// `Register`/`Welcome`). Like the degradation counters, a schedule
    /// fact — it never feeds [`Self::outcome_digest`].
    pub workers_joined: usize,
    /// In-flight shards cancelled and split in two to feed idle workers
    /// ([`split_spec`]); the halves are re-merged before pooling, so the
    /// count describes the schedule, not the outcomes.
    pub tasks_split: usize,
}

impl CampaignReport {
    /// Tasks that ran all their points to completion within budget.
    #[must_use]
    pub fn tasks_completed(&self) -> usize {
        self.tasks.iter().filter(|t| t.completed).count()
    }

    /// Completed tasks that found at least one error.
    #[must_use]
    pub fn tasks_with_findings(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.completed && t.findings > 0)
            .count()
    }

    /// Completed tasks that found nothing (benign or crashing errors only).
    #[must_use]
    pub fn tasks_without_findings(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.completed && t.findings == 0)
            .count()
    }

    /// Mean task duration among completed tasks.
    #[must_use]
    pub fn avg_completed_task_time(&self) -> Duration {
        let completed: Vec<&TaskResult> = self.tasks.iter().filter(|t| t.completed).collect();
        if completed.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = completed.iter().map(|t| t.elapsed).sum();
        total / u32::try_from(completed.len()).unwrap_or(1)
    }

    /// Total states the campaign's searches expanded, across all tasks.
    #[must_use]
    pub fn states_explored(&self) -> usize {
        self.tasks.iter().map(|t| t.states_explored).sum()
    }

    /// Aggregate engine throughput: states expanded per wall-clock second
    /// of the campaign (CPU-parallel tasks all count toward the same
    /// wall-clock denominator).
    #[must_use]
    pub fn states_per_second(&self) -> f64 {
        sympl_check::SearchReport::throughput(self.states_explored(), self.elapsed)
    }

    /// Widest point-search engine any task engaged (1 = all sequential).
    #[must_use]
    pub fn point_workers(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| t.point_workers)
            .max()
            .unwrap_or(0)
    }

    /// Total work-steal operations across all tasks' parallel point
    /// searches.
    #[must_use]
    pub fn steals(&self) -> usize {
        self.tasks.iter().map(|t| t.steals).sum()
    }

    /// Largest frontier (in states) any point search in the campaign held
    /// at once.
    #[must_use]
    pub fn peak_frontier_len(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| t.peak_frontier_len)
            .max()
            .unwrap_or(0)
    }

    /// Largest approximate in-RAM frontier footprint (bytes) any point
    /// search in the campaign held at once.
    #[must_use]
    pub fn peak_frontier_bytes(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| t.peak_frontier_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total frontier states the campaign's searches spilled to disk.
    #[must_use]
    pub fn spilled_states(&self) -> usize {
        self.tasks.iter().map(|t| t.spilled_states).sum()
    }

    /// Point searches served whole from the cross-campaign [`MemoStore`],
    /// across all tasks.
    #[must_use]
    pub fn memo_hits(&self) -> usize {
        self.tasks.iter().map(|t| t.memo_hits).sum()
    }

    /// States the memo hits did not have to re-expand, across all tasks.
    /// [`Self::states_explored`] already *includes* these (served searches
    /// replay their recorded statistics), so the hit rate by states is
    /// `memo_states_skipped / states_explored`.
    #[must_use]
    pub fn memo_states_skipped(&self) -> usize {
        self.tasks.iter().map(|t| t.memo_states_skipped).sum()
    }

    /// Concrete error-free prefix steps served from [`PrefixCache`]
    /// snapshots instead of re-executed, across all tasks.
    #[must_use]
    pub fn prefix_steps_saved(&self) -> u64 {
        self.tasks.iter().map(|t| t.prefix_steps_saved).sum()
    }

    /// A deterministic 128-bit digest of the campaign's *outcome* — the
    /// per-task completion statistics and every finding's injection point,
    /// terminal-state fingerprint, and witness trace — excluding all
    /// wall-clock figures and the schedule-dependent degradation counters
    /// ([`Self::degraded`], [`Self::workers_lost`], [`Self::tasks_retried`],
    /// [`Self::resumed_tasks`], [`Self::workers_joined`],
    /// [`Self::tasks_split`]). Two campaign runs that swept the same
    /// points to the same results produce the same digest, whether the
    /// tasks ran on in-process threads or on remote workers over the wire,
    /// and whether or not workers died or the run was resumed from a
    /// checkpoint along the way; the distributed CI gate diffs exactly
    /// this value. (FNV-128 over `Hash`-fed bytes: stable across processes
    /// on one platform, not across platforms of different endianness.)
    #[must_use]
    pub fn outcome_digest(&self) -> u128 {
        use std::hash::Hash;
        let mut h = Fnv128Hasher::new();
        self.tasks.len().hash(&mut h);
        for t in &self.tasks {
            (
                t.id,
                t.points_examined,
                t.points_total,
                t.activated,
                t.findings,
                t.completed,
                t.states_explored,
                t.spilled_states,
            )
                .hash(&mut h);
        }
        self.findings.len().hash(&mut h);
        for f in &self.findings {
            (f.task_id, f.point).hash(&mut h);
            f.solution.state.fingerprint().0.hash(&mut h);
            f.solution.trace.hash(&mut h);
        }
        h.finish128()
    }

    /// A paper-style textual summary (the §6.2 "Running Time" paragraph).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut text = format!(
            "{} tasks: {} completed ({} found errors, {} found none), {} incomplete; \
             {} findings total; avg completed-task time {:?}; campaign wall time {:?}; \
             engine: {} states at {:.0} states/s ({}-way point searches, {} steals); \
             frontier: peak {} state(s) / ~{} bytes in RAM, {} spilled",
            self.tasks.len(),
            self.tasks_completed(),
            self.tasks_with_findings(),
            self.tasks_without_findings(),
            self.tasks.len() - self.tasks_completed(),
            self.findings.len(),
            self.avg_completed_task_time(),
            self.elapsed,
            self.states_explored(),
            self.states_per_second(),
            self.point_workers().max(1),
            self.steals(),
            self.peak_frontier_len(),
            self.peak_frontier_bytes(),
            self.spilled_states(),
        );
        if self.memo_hits() > 0 {
            text.push_str(&format!(
                "; memo: {} hit(s) served {} state(s) without expansion",
                self.memo_hits(),
                self.memo_states_skipped()
            ));
        }
        if self.prefix_steps_saved() > 0 {
            text.push_str(&format!(
                "; prefix cache saved {} concrete step(s)",
                self.prefix_steps_saved()
            ));
        }
        if self.resumed_tasks > 0 {
            text.push_str(&format!(
                "; resumed {} task(s) from checkpoint",
                self.resumed_tasks
            ));
        }
        if self.workers_joined > 0 || self.tasks_split > 0 {
            text.push_str(&format!(
                "; ELASTIC: {} worker(s) joined, {} shard split(s)",
                self.workers_joined, self.tasks_split
            ));
        }
        if self.degraded {
            text.push_str(&format!(
                "; DEGRADED: {} worker(s) lost, {} task(s) re-queued",
                self.workers_lost, self.tasks_retried
            ));
        }
        text
    }
}

/// Shards a campaign and runs it over a worker pool.
///
/// Deterministic in its *results* (every task examines a fixed point set
/// with fixed budgets); only scheduling order varies across runs, unless a
/// `task_budget` makes completion time-dependent.
#[must_use]
pub fn run_cluster(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    campaign: &Campaign,
    predicate: &Predicate,
    config: &ClusterConfig,
) -> CampaignReport {
    run_cluster_with_memo(program, detectors, input, campaign, predicate, config, None)
}

/// [`run_cluster`] with a cross-campaign [`MemoStore`] shared by every
/// task: each point search probes the store before expanding and records
/// its exhausted result after, so a warm store (a previous run of the same
/// campaign, loaded from disk) serves repeated searches without
/// re-expansion, and a cold store is warmed for the next run. The store's
/// hit counters and [`TaskResult::memo_hits`] /
/// [`TaskResult::memo_states_skipped`] make the saved work visible.
///
/// Exactness: the store is consulted only when [`memo_preserves_outcome`]
/// holds for `config` (the per-task runner enforces this), so memo-on and
/// memo-off campaigns always pool to the same
/// [`CampaignReport::outcome_digest`]. Callers are responsible for keying
/// the store to the campaign's program + detectors
/// ([`MemoStore::for_campaign`]) — a stale store must be refused at load
/// time, not probed.
#[must_use]
pub fn run_cluster_with_memo(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    campaign: &Campaign,
    predicate: &Predicate,
    config: &ClusterConfig,
    memo: Option<&MemoStore>,
) -> CampaignReport {
    let start = Instant::now();
    let specs = shard_specs(campaign, config.tasks);

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(TaskResult, Vec<Finding>)>> = Mutex::new(Vec::new());

    let workers = config.workers.max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let outcome = run_task_spec_with_cancel(
                    program,
                    detectors,
                    input,
                    spec,
                    predicate,
                    config,
                    &AtomicBool::new(false),
                    memo,
                );
                results
                    .lock()
                    .expect("worker panicked while holding the results lock")
                    .push(outcome);
            });
        }
    });

    let pooled = results
        .into_inner()
        .expect("all workers joined before pooling");
    pool_results(pooled, start.elapsed())
}

/// Pools per-task results into a [`CampaignReport`] in the canonical
/// order: tasks sorted by id, each task's findings appended in task order.
/// Both [`run_cluster`] and the network coordinator merge through this
/// function, which is what makes a distributed exhaustive campaign's
/// report reproduce the in-process one verbatim regardless of which
/// worker finished first.
#[must_use]
pub fn pool_results(
    mut pooled: Vec<(TaskResult, Vec<Finding>)>,
    elapsed: Duration,
) -> CampaignReport {
    pooled.sort_by_key(|(t, _)| t.id);
    let mut report = CampaignReport {
        elapsed,
        ..CampaignReport::default()
    };
    for (task, findings) in pooled {
        report.tasks.push(task);
        report.findings.extend(findings);
    }
    report
}

/// Runs one task: sweep its points sequentially under the task budget.
///
/// This is the unit of work a campaign schedules — the in-process pool
/// calls it on its worker threads, and a `symplfied serve` network worker
/// calls it for each task frame it receives, so both paths run the exact
/// same engine code under the same budget accounting. Only
/// `config.search`, `config.task_budget`, `config.max_findings_per_task`,
/// and the point-workers share ([`ClusterConfig::point_share`]) are read
/// from the config.
#[must_use]
pub fn run_task_spec(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    spec: &TaskSpec,
    predicate: &Predicate,
    config: &ClusterConfig,
) -> (TaskResult, Vec<Finding>) {
    run_task_spec_with_cancel(
        program,
        detectors,
        input,
        spec,
        predicate,
        config,
        &AtomicBool::new(false),
        None,
    )
}

/// [`run_task_spec`] with a cooperative cancellation flag, checked between
/// point searches: once `cancel` is set the task stops sweeping, marks
/// itself incomplete, and returns whatever it has. A network worker's
/// connection thread sets the flag when the coordinator sends a `Cancel`
/// frame (or dies), so an aborting campaign does not strand the worker in
/// a long sweep. Cancellation granularity is one injection point — a
/// single long point search runs to its own budget before the flag is
/// seen.
///
/// `memo` is an optional cross-campaign [`MemoStore`] the task's point
/// searches probe and warm. It is consulted only when
/// [`memo_preserves_outcome`] holds for `config` — under a non-conforming
/// config the store is ignored, so passing one is always outcome-safe.
/// The caller must have keyed the store to this (program, detectors) pair;
/// a store for a different campaign would simply never hit (probe digests
/// include the seed fingerprints), but refusing it at load time keeps the
/// waste visible.
#[must_use]
#[allow(clippy::too_many_arguments)] // the task runner IS the parameter list: one shard + full campaign identity
pub fn run_task_spec_with_cancel(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    spec: &TaskSpec,
    predicate: &Predicate,
    config: &ClusterConfig,
    cancel: &AtomicBool,
    memo: Option<&MemoStore>,
) -> (TaskResult, Vec<Finding>) {
    let start = Instant::now();
    let mut findings = Vec::new();
    let mut result = TaskResult {
        id: spec.id,
        points_examined: 0,
        points_total: spec.points.len(),
        activated: 0,
        findings: 0,
        completed: true,
        elapsed: Duration::ZERO,
        states_explored: 0,
        point_workers: 0,
        steals: 0,
        peak_frontier_len: 0,
        peak_frontier_bytes: 0,
        spilled_states: 0,
        memo_hits: 0,
        memo_states_skipped: 0,
        prefix_steps_saved: 0,
    };

    let share = config.point_share();
    let memo = if memo_preserves_outcome(config) {
        memo
    } else {
        None
    };

    // Decode once per task: the per-point explorers constructed below all
    // borrow the same cached IR rather than re-lowering the program.
    let _ = program.decoded();

    // One error-free-prefix sweep per task: every point's prepare phase is
    // served from first-arrival snapshots instead of re-running the
    // concrete prefix. Valid for the whole task because the exec limits
    // (`config.search.exec`) are never adjusted per point — only the
    // search-level budgets above are.
    let cache = PrefixCache::new(program, detectors, input, &config.search.exec);

    for point in &spec.points {
        if cancel.load(Ordering::Relaxed) {
            result.completed = false;
            break;
        }
        if let Some(budget) = config.task_budget {
            if start.elapsed() >= budget {
                result.completed = false;
                break;
            }
        }
        if result.findings >= config.max_findings_per_task {
            break;
        }
        // Give each point's search the remaining task budget.
        let mut limits = config.search.clone();
        if let Some(budget) = config.task_budget {
            let remaining = budget.saturating_sub(start.elapsed());
            limits.max_time = Some(match limits.max_time {
                Some(t) => t.min(remaining),
                None => remaining,
            });
        }
        limits.max_solutions = limits
            .max_solutions
            .min(config.max_findings_per_task - result.findings);

        // A fresh Explorer per point: the remaining task budget shrinks
        // as points complete, and budgets are fixed at construction.
        // Construction is cheap (two references + the limits); the value
        // of the shared API here is that workers run the same engine
        // code path as inject/ssim/Framework, not object reuse.
        let explorer = Explorer::new(program, detectors)
            .with_limits(limits)
            .with_workers_hint(Some(share))
            .with_memo(memo);
        let outcome = run_point_cached(&explorer, &cache, point, predicate);
        result.points_examined += 1;
        if outcome.activated {
            result.activated += 1;
        }
        result.states_explored += outcome.report.states_explored;
        result.point_workers = result.point_workers.max(outcome.report.workers);
        result.steals += outcome.report.steals;
        result.peak_frontier_len = result
            .peak_frontier_len
            .max(outcome.report.peak_frontier_len);
        result.peak_frontier_bytes = result
            .peak_frontier_bytes
            .max(outcome.report.peak_frontier_bytes);
        result.spilled_states += outcome.report.spilled_states;
        result.memo_hits += outcome.report.memo_hits;
        result.memo_states_skipped += outcome.report.memo_states_skipped;
        if outcome.report.hit_time_cap || outcome.report.hit_state_cap {
            // A truncated search means the task did not fully sweep its
            // section — it counts as incomplete, like the paper's 65
            // timed-out tcas tasks.
            result.completed = false;
        }
        result.findings += outcome.report.solutions.len();
        for solution in outcome.report.solutions {
            findings.push(Finding {
                task_id: spec.id,
                point: *point,
                solution,
            });
        }
    }
    result.elapsed = start.elapsed();
    result.prefix_steps_saved = cache.steps_saved();
    (result, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;
    use sympl_inject::ErrorClass;
    use sympl_machine::ExecLimits;

    fn factorial() -> sympl_asm::Program {
        parse_program(
            "ori $2 $0 #1\nread $1\nmov $3, $1\nori $4 $0 #1\n\
             loop: setgt $5 $3 $4\nbeq $5 0 exit\nmult $2 $2 $3\nsubi $3 $3 #1\nbeq $0 #0 loop\n\
             exit: prints \"Factorial = \"\nprint $2\nhalt",
        )
        .unwrap()
    }

    fn quick_config(tasks: usize) -> ClusterConfig {
        ClusterConfig {
            workers: 4,
            tasks,
            search: SearchLimits {
                exec: ExecLimits::with_max_steps(300),
                ..SearchLimits::default()
            },
            task_budget: None,
            max_findings_per_task: 10,
            point_workers_hint: None,
        }
    }

    #[test]
    fn cluster_pools_all_tasks() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let report = run_cluster(
            &p,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &Predicate::OutputContainsErr,
            &quick_config(5),
        );
        assert!(report.tasks.len() <= 5 && !report.tasks.is_empty());
        let sharded: usize = report.tasks.iter().map(|t| t.points_total).sum();
        assert_eq!(sharded, campaign.len(), "shards partition the campaign");
        let examined: usize = report.tasks.iter().map(|t| t.points_examined).sum();
        assert!(examined > 0);
        assert!(
            !report.findings.is_empty(),
            "register errors in factorial must reach the output"
        );
        // Task ids are stable and ordered.
        for (i, t) in report.tasks.iter().enumerate() {
            assert_eq!(t.id, i);
        }
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let mut one = quick_config(4);
        one.workers = 1;
        let mut many = quick_config(4);
        many.workers = 8;
        let a = run_cluster(&p, &DetectorSet::new(), &[3], &campaign, &predicate, &one);
        let b = run_cluster(&p, &DetectorSet::new(), &[3], &campaign, &predicate, &many);
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.tasks_completed(), b.tasks_completed());
        let fa: Vec<_> = a.findings.iter().map(|f| (f.task_id, f.point)).collect();
        let fb: Vec<_> = b.findings.iter().map(|f| (f.task_id, f.point)).collect();
        assert_eq!(fa, fb, "scheduling must not change pooled results");
    }

    #[test]
    fn finding_cap_limits_per_task_results() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let mut config = quick_config(1);
        config.max_findings_per_task = 2;
        let report = run_cluster(
            &p,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &Predicate::OutputContainsErr,
            &config,
        );
        assert!(report.findings.len() <= 2);
    }

    #[test]
    fn zero_budget_marks_tasks_incomplete() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let mut config = quick_config(3);
        config.task_budget = Some(Duration::ZERO);
        let report = run_cluster(
            &p,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &Predicate::OutputContainsErr,
            &config,
        );
        assert_eq!(report.tasks_completed(), 0);
        assert!(report.summary().contains("incomplete"));
    }

    #[test]
    fn pool_results_order_is_canonical() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let config = quick_config(4);
        let specs = shard_specs(&campaign, config.tasks);
        assert_eq!(specs.len(), 4);
        let dets = DetectorSet::new();
        let predicate = Predicate::OutputContainsErr;
        let mut results: Vec<_> = specs
            .iter()
            .map(|s| run_task_spec(&p, &dets, &[4], s, &predicate, &config))
            .collect();
        let forward = pool_results(results.clone(), Duration::ZERO);
        results.reverse();
        let reversed = pool_results(results, Duration::ZERO);
        assert_eq!(forward.tasks, reversed.tasks);
        assert_eq!(forward.findings, reversed.findings);
        assert_eq!(forward.outcome_digest(), reversed.outcome_digest());
    }

    #[test]
    fn outcome_digest_ignores_wall_clock_but_sees_outcomes() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = ClusterConfig {
            point_workers_hint: Some(1),
            ..quick_config(4)
        };
        let run = |cfg: &ClusterConfig| {
            run_cluster(&p, &DetectorSet::new(), &[4], &campaign, &predicate, cfg)
        };
        let a = run(&config);
        let b = run(&config);
        assert_ne!(a.elapsed, Duration::ZERO);
        assert_eq!(
            a.outcome_digest(),
            b.outcome_digest(),
            "digest must be a pure function of outcomes, not timing"
        );
        let mut c = b.clone();
        c.findings.pop();
        assert_ne!(a.outcome_digest(), c.outcome_digest());
    }

    #[test]
    fn point_share_respects_explicit_hint() {
        let mut config = quick_config(1);
        assert!(config.point_share() >= 1);
        config.point_workers_hint = Some(7);
        assert_eq!(config.point_share(), 7);
    }

    #[test]
    fn cancel_flag_stops_a_task_between_points() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let config = quick_config(1);
        let specs = shard_specs(&campaign, 1);
        // A pre-set flag stops the sweep before the first point.
        let cancel = AtomicBool::new(true);
        let (result, findings) = run_task_spec_with_cancel(
            &p,
            &DetectorSet::new(),
            &[4],
            &specs[0],
            &Predicate::OutputContainsErr,
            &config,
            &cancel,
            None,
        );
        assert_eq!(result.points_examined, 0);
        assert!(!result.completed, "a cancelled task is incomplete");
        assert!(findings.is_empty());
        // An unset flag reproduces run_task_spec exactly.
        let cancel = AtomicBool::new(false);
        let (a, fa) = run_task_spec_with_cancel(
            &p,
            &DetectorSet::new(),
            &[4],
            &specs[0],
            &Predicate::OutputContainsErr,
            &config,
            &cancel,
            None,
        );
        let (b, fb) = run_task_spec(
            &p,
            &DetectorSet::new(),
            &[4],
            &specs[0],
            &Predicate::OutputContainsErr,
            &config,
        );
        assert_eq!(
            (a.points_examined, a.findings, a.completed),
            (b.points_examined, b.findings, b.completed)
        );
        assert_eq!(fa, fb);
    }

    #[test]
    fn degradation_counters_render_but_do_not_move_the_digest() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let config = ClusterConfig {
            point_workers_hint: Some(1),
            ..quick_config(3)
        };
        let clean = run_cluster(
            &p,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &Predicate::OutputContainsErr,
            &config,
        );
        let mut degraded = clean.clone();
        degraded.degraded = true;
        degraded.workers_lost = 2;
        degraded.tasks_retried = 5;
        degraded.resumed_tasks = 1;
        degraded.workers_joined = 3;
        degraded.tasks_split = 4;
        assert_eq!(
            clean.outcome_digest(),
            degraded.outcome_digest(),
            "degradation describes the schedule, not the outcome"
        );
        let text = degraded.summary();
        assert!(text.contains("DEGRADED: 2 worker(s) lost, 5 task(s) re-queued"));
        assert!(text.contains("resumed 1 task(s) from checkpoint"));
        assert!(text.contains("ELASTIC: 3 worker(s) joined, 4 shard split(s)"));
        assert!(!clean.summary().contains("DEGRADED"));
        assert!(!clean.summary().contains("ELASTIC"));
    }

    #[test]
    fn split_spec_halves_deterministically_and_preserves_order() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let spec = &shard_specs(&campaign, 1)[0];
        assert!(spec.points.len() >= 2, "factorial campaign is splittable");
        let (left, right) = split_spec(spec).unwrap();
        assert_eq!(left.id, spec.id);
        assert_eq!(right.id, spec.id);
        assert_eq!(left.points.len(), spec.points.len().div_ceil(2));
        let mut rejoined = left.points.clone();
        rejoined.extend(right.points.iter().copied());
        assert_eq!(rejoined, spec.points, "halves concatenate to the parent");
        // Determinism: the same spec splits the same way twice.
        assert_eq!(split_spec(spec), split_spec(spec));
        // Too small to share.
        let tiny = TaskSpec {
            id: 0,
            points: vec![spec.points[0]],
        };
        assert!(split_spec(&tiny).is_none());
        assert!(split_spec(&TaskSpec {
            id: 0,
            points: Vec::new()
        })
        .is_none());
    }

    #[test]
    fn split_run_merge_reproduces_the_unsplit_task_exactly() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let mut config = quick_config(1);
        config.point_workers_hint = Some(1);
        let spec = &shard_specs(&campaign, 1)[0];
        // Lift the finding cap so splitting is exactness-preserving.
        config.max_findings_per_task = spec.points.len() * config.search.max_solutions;
        assert!(split_preserves_outcome(spec, &config));
        let dets = DetectorSet::new();
        let predicate = Predicate::OutputContainsErr;
        let (whole, whole_findings) = run_task_spec(&p, &dets, &[4], spec, &predicate, &config);

        // Split recursively: left half split once more, three parts total.
        let (left, right) = split_spec(spec).unwrap();
        let (ll, lr) = split_spec(&left).unwrap();
        let parts: Vec<_> = [ll, lr, right]
            .iter()
            .map(|part| run_task_spec(&p, &dets, &[4], part, &predicate, &config))
            .collect();
        let (merged, merged_findings) = merge_part_results(parts).unwrap();

        assert_eq!(
            (
                merged.id,
                merged.points_examined,
                merged.points_total,
                merged.activated,
                merged.findings,
                merged.completed,
                merged.states_explored,
                merged.spilled_states,
            ),
            (
                whole.id,
                whole.points_examined,
                whole.points_total,
                whole.activated,
                whole.findings,
                whole.completed,
                whole.states_explored,
                whole.spilled_states,
            ),
            "every digest-visible statistic must merge back exactly"
        );
        assert_eq!(merged_findings, whole_findings, "findings in point order");
        assert!(merge_part_results(Vec::new()).is_none());
    }

    #[test]
    fn split_exactness_gate_rejects_binding_caps() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let spec = &shard_specs(&campaign, 1)[0];
        let mut config = quick_config(1);
        // The default cap (10) can bind on a many-point task: not exact.
        config.max_findings_per_task = 10;
        assert!(!split_preserves_outcome(spec, &config));
        // A task budget couples points through wall time: never exact.
        config.max_findings_per_task = usize::MAX;
        config.task_budget = Some(Duration::from_secs(1));
        assert!(!split_preserves_outcome(spec, &config));
        config.task_budget = None;
        assert!(split_preserves_outcome(spec, &config));
    }

    #[test]
    fn memoized_campaign_reproduces_the_digest_and_serves_the_rerun() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = ClusterConfig {
            point_workers_hint: Some(1),
            ..quick_config(4)
        };
        assert!(memo_preserves_outcome(&config));
        let dets = DetectorSet::new();
        let store = MemoStore::for_campaign(&p, &dets);

        let off = run_cluster(&p, &dets, &[4], &campaign, &predicate, &config);
        let cold = run_cluster_with_memo(
            &p,
            &dets,
            &[4],
            &campaign,
            &predicate,
            &config,
            Some(&store),
        );
        let warm = run_cluster_with_memo(
            &p,
            &dets,
            &[4],
            &campaign,
            &predicate,
            &config,
            Some(&store),
        );

        assert_eq!(off.outcome_digest(), cold.outcome_digest());
        assert_eq!(off.outcome_digest(), warm.outcome_digest());
        assert_eq!(cold.memo_hits(), 0, "first run finds an empty store");
        assert!(!store.is_empty(), "point searches were recorded");
        assert!(warm.memo_hits() > 0, "rerun is served from the store");
        // Under the deterministic gate every sequential point search is
        // recordable (no wall-clock budget in this config), so the warm
        // rerun expands nothing at all.
        assert_eq!(
            warm.memo_states_skipped(),
            warm.states_explored(),
            "a warm rerun serves every state from the store ({} of {})",
            warm.memo_states_skipped(),
            warm.states_explored()
        );
        assert!(warm.summary().contains("memo:"));
        assert!(off.prefix_steps_saved() > 0, "prefix cache is always on");

        // A non-conforming config ignores the store instead of polluting
        // the digest: same outcome, no hits counted.
        let budgeted = ClusterConfig {
            task_budget: Some(Duration::from_secs(3600)),
            ..config.clone()
        };
        assert!(!memo_preserves_outcome(&budgeted));
        let gated = run_cluster_with_memo(
            &p,
            &dets,
            &[4],
            &campaign,
            &predicate,
            &budgeted,
            Some(&store),
        );
        assert_eq!(gated.memo_hits(), 0, "gate keeps the store out of play");
    }

    #[test]
    fn summary_mentions_key_statistics() {
        let p = factorial();
        let campaign = Campaign::new(&p, ErrorClass::RegisterFile);
        let report = run_cluster(
            &p,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &Predicate::OutputContainsErr,
            &quick_config(2),
        );
        let text = report.summary();
        assert!(text.contains("tasks"));
        assert!(text.contains("findings"));
        assert!(report.avg_completed_task_time() > Duration::ZERO || report.tasks_completed() == 0);
    }
}
