//! Preparing an injection: concrete prefix, plant the `err`, search.

use std::cell::Cell;
use std::collections::HashMap;

use sympl_asm::{Instr, Program};
use sympl_check::{Explorer, Predicate, SearchLimits, SearchReport};
use sympl_detect::DetectorSet;
use sympl_machine::{
    run_concrete, run_concrete_to_breakpoint, step_concrete, ExecLimits, MachineState,
};
use sympl_symbolic::Value;

use crate::{InjectTarget, InjectionPoint};

/// The seed states produced by applying an injection point.
#[derive(Debug, Clone)]
pub struct PreparedInjection {
    /// The point that was applied.
    pub point: InjectionPoint,
    /// Initial symbolic states for the search (several when the corruption
    /// itself is non-deterministic, e.g. a fetch error's landing site).
    pub seeds: Vec<MachineState>,
    /// Whether the breakpoint was reached on the error-free path. An
    /// unreached breakpoint means the fault is never activated for this
    /// input; the paper counts such injections as benign.
    pub activated: bool,
}

/// Runs the error-free execution and returns the final state (for golden
/// outputs and memory layouts).
///
/// # Panics
///
/// Panics if the program is not concretely executable from a fresh state
/// (this indicates a malformed workload, not an injected error).
#[must_use]
pub fn golden_run(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    limits: &ExecLimits,
) -> MachineState {
    let mut s = MachineState::with_input(input.to_vec());
    run_concrete(&mut s, program, detectors, limits)
        .expect("golden run must be concrete: no err values exist before injection");
    s
}

/// Runs the concrete prefix up to the injection point and plants the error.
///
/// Returns the seed states for the symbolic search. If the breakpoint is
/// never reached (the instruction is not on this input's path), `seeds` is
/// empty and `activated` is `false`.
#[must_use]
pub fn prepare(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    point: &InjectionPoint,
    limits: &ExecLimits,
) -> PreparedInjection {
    let mut state = MachineState::with_input(input.to_vec());
    let reached = run_concrete_to_breakpoint(
        &mut state,
        program,
        detectors,
        limits,
        point.breakpoint,
        point.occurrence,
    )
    .expect("prefix must be concrete: no err values exist before injection");

    if !reached {
        return PreparedInjection {
            point: *point,
            seeds: Vec::new(),
            activated: false,
        };
    }

    let seeds = apply_target(program, detectors, state, point, limits);
    PreparedInjection {
        point: *point,
        seeds,
        activated: true,
    }
}

fn apply_target(
    program: &Program,
    detectors: &DetectorSet,
    state: MachineState,
    point: &InjectionPoint,
    limits: &ExecLimits,
) -> Vec<MachineState> {
    let instr = program
        .fetch(point.breakpoint)
        .expect("breakpoint was reached, so it is a valid address");
    match point.target {
        InjectTarget::Register(r) => {
            let mut s = state;
            s.set_reg(r, Value::Err);
            vec![s]
        }
        InjectTarget::LoadedWord => {
            // Corrupt the word the load is about to read.
            let Instr::Load { rs, offset, .. } = instr else {
                return Vec::new();
            };
            let mut s = state;
            let Some(base) = s.reg(*rs).as_int() else {
                return Vec::new();
            };
            let Ok(addr) = u64::try_from(base.wrapping_add(*offset)) else {
                return Vec::new();
            };
            if s.mem(addr).is_none() {
                // The load would trap anyway; the memory error cannot
                // manifest.
                return Vec::new();
            }
            s.set_mem(addr, Value::Err);
            vec![s]
        }
        InjectTarget::Destination => {
            // Functional-unit error: execute the instruction, then corrupt
            // what it wrote.
            let mut s = state;
            // Identify a stored word's address before the store executes.
            let store_addr = if let Instr::Store { rs, offset, .. } = instr {
                s.reg(*rs)
                    .as_int()
                    .and_then(|base| u64::try_from(base.wrapping_add(*offset)).ok())
            } else {
                None
            };
            if step_concrete(&mut s, program, detectors, limits).is_err() {
                return Vec::new();
            }
            if s.status().is_terminal() {
                return Vec::new();
            }
            if let Some(addr) = store_addr {
                s.set_mem(addr, Value::Err);
            } else if let Some(rd) = instr.dest_reg() {
                s.set_reg(rd, Value::Err);
            } else {
                return Vec::new();
            }
            vec![s]
        }
        InjectTarget::ChangedTarget { wrong } => {
            // Execute, then err in both the intended and the wrong target.
            let mut s = state;
            if step_concrete(&mut s, program, detectors, limits).is_err() {
                return Vec::new();
            }
            if s.status().is_terminal() {
                return Vec::new();
            }
            if let Some(rd) = instr.dest_reg() {
                s.set_reg(rd, Value::Err);
            }
            s.set_reg(wrong, Value::Err);
            vec![s]
        }
        InjectTarget::NopToTargeted { wrong } => {
            let mut s = state;
            if step_concrete(&mut s, program, detectors, limits).is_err() {
                return Vec::new();
            }
            if s.status().is_terminal() {
                return Vec::new();
            }
            s.set_reg(wrong, Value::Err);
            vec![s]
        }
        InjectTarget::TargetedToNop => {
            // The intended write never happens: skip the instruction and
            // mark its destination stale (err).
            let mut s = state;
            if let Some(rd) = instr.dest_reg() {
                s.set_reg(rd, Value::Err);
            }
            s.set_pc(point.breakpoint + 1);
            s.bump_steps();
            vec![s]
        }
        InjectTarget::ProgramCounter => {
            // Fetch error: the PC lands on an arbitrary valid location.
            (0..program.len())
                .filter(|&t| t != point.breakpoint)
                .map(|t| {
                    let mut s = state.clone();
                    s.set_pc(t);
                    s
                })
                .collect()
        }
    }
}

/// A cache of the shared error-free prefix for one (program, detectors,
/// input, limits) configuration: every injection point of a campaign
/// re-runs the same concrete execution up to its breakpoint, so one sweep
/// that snapshots the state at the *first arrival* of every PC replaces
/// per-point prefix re-execution with an O(1) copy-on-write clone.
///
/// Exactness: concrete execution is deterministic and the machine state
/// is a pure content function (rolling fingerprints included), so a
/// cloned first-arrival snapshot is indistinguishable from a state
/// [`run_concrete_to_breakpoint`] produced fresh — for occurrence 1, which
/// is every point [`crate::enumerate_points`] emits. Later-occurrence
/// points fall back to the uncached path (snapshots record first arrivals
/// only). A PC with no snapshot was never reached before termination:
/// the fault is not activated on this input, decided without re-running
/// anything.
///
/// The saved work is reported through [`PrefixCache::steps_saved`]:
/// the concrete steps each served prepare did *not* re-execute.
#[derive(Debug)]
pub struct PrefixCache<'a> {
    program: &'a Program,
    detectors: &'a DetectorSet,
    input: Vec<i64>,
    limits: ExecLimits,
    /// First-arrival state per PC, captured pre-expansion (the exact state
    /// `run_concrete_to_breakpoint` hands to `apply_target`).
    snapshots: HashMap<usize, MachineState>,
    /// Steps of the whole error-free run (what a fresh prepare of an
    /// unreached breakpoint would have executed before giving up).
    full_run_steps: u64,
    steps_saved: Cell<u64>,
    hits: Cell<usize>,
}

impl<'a> PrefixCache<'a> {
    /// Runs the error-free execution once, snapshotting the first arrival
    /// at every PC. The sweep's own cost is one concrete run — the same
    /// price a single uncached `prepare` pays.
    ///
    /// # Panics
    ///
    /// Panics if the prefix is not concretely executable (no err values
    /// exist before injection; a failure indicates a malformed workload).
    #[must_use]
    pub fn new(
        program: &'a Program,
        detectors: &'a DetectorSet,
        input: &[i64],
        limits: &ExecLimits,
    ) -> Self {
        let mut snapshots = HashMap::new();
        let mut state = MachineState::with_input(input.to_vec());
        // Mirrors `run_concrete_to_breakpoint`: terminal check first, then
        // the PC is observable as a breakpoint, then one step.
        while !state.status().is_terminal() {
            snapshots.entry(state.pc()).or_insert_with(|| state.clone());
            step_concrete(&mut state, program, detectors, limits)
                .expect("prefix must be concrete: no err values exist before injection");
        }
        PrefixCache {
            program,
            detectors,
            input: input.to_vec(),
            limits: limits.clone(),
            snapshots,
            full_run_steps: state.steps(),
            steps_saved: Cell::new(0),
            hits: Cell::new(0),
        }
    }

    /// The program the cache swept.
    #[must_use]
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The input the cache swept under.
    #[must_use]
    pub fn input(&self) -> &[i64] {
        &self.input
    }

    /// Concrete prefix steps served from snapshots instead of re-executed.
    #[must_use]
    pub fn steps_saved(&self) -> u64 {
        self.steps_saved.get()
    }

    /// Prepares served from the cache (vs. fallback to [`prepare`]).
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.get()
    }

    fn note_saved(&self, steps: u64) {
        self.steps_saved.set(self.steps_saved.get() + steps);
        self.hits.set(self.hits.get() + 1);
    }
}

/// [`prepare`] served from a [`PrefixCache`]: identical outputs for
/// occurrence-1 points (see the cache's exactness contract), with the
/// shared prefix cloned instead of re-executed. Later-occurrence points
/// fall back to the uncached path.
#[must_use]
pub fn prepare_cached(cache: &PrefixCache<'_>, point: &InjectionPoint) -> PreparedInjection {
    if point.occurrence > 1 {
        return prepare(
            cache.program,
            cache.detectors,
            &cache.input,
            point,
            &cache.limits,
        );
    }
    match cache.snapshots.get(&point.breakpoint) {
        Some(snapshot) => {
            cache.note_saved(snapshot.steps());
            let seeds = apply_target(
                cache.program,
                cache.detectors,
                snapshot.clone(),
                point,
                &cache.limits,
            );
            PreparedInjection {
                point: *point,
                seeds,
                activated: true,
            }
        }
        None => {
            // Never reached pre-terminal: not activated. A fresh prepare
            // would have executed the whole error-free run to learn this.
            cache.note_saved(cache.full_run_steps);
            PreparedInjection {
                point: *point,
                seeds: Vec::new(),
                activated: false,
            }
        }
    }
}

/// The result of one injection-point search task.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The injection point examined.
    pub point: InjectionPoint,
    /// Whether the fault was activated (breakpoint reached).
    pub activated: bool,
    /// The search report (empty when not activated).
    pub report: SearchReport,
}

impl PointOutcome {
    /// Whether the search found predicate-matching terminal states.
    #[must_use]
    pub fn found_errors(&self) -> bool {
        !self.report.solutions.is_empty()
    }
}

/// Prepares an injection point and model-checks its seed states on a
/// caller-supplied [`Explorer`]: the unit of campaign work (one cluster
/// task runs many of these against one engine configuration).
///
/// The search itself is routed by budget (`Explorer::explore_auto`): points
/// whose state budget exceeds `sympl_check::PARALLEL_STATE_THRESHOLD` run
/// on the work-stealing `ParallelExplorer` across the explorer's worker
/// allowance (all hardware threads unless the caller capped it with
/// `Explorer::with_workers_hint`, as the cluster task pool does); smaller
/// points stay on the sequential fast path. The returned report's
/// `workers`/`steals` fields say which engine ran.
#[must_use]
pub fn run_point_with(
    explorer: &Explorer<'_>,
    input: &[i64],
    point: &InjectionPoint,
    predicate: &Predicate,
) -> PointOutcome {
    let prepared = prepare(
        explorer.program(),
        explorer.detectors(),
        input,
        point,
        explorer.exec_limits(),
    );
    if !prepared.activated || prepared.seeds.is_empty() {
        return PointOutcome {
            point: *point,
            activated: prepared.activated,
            report: SearchReport::default(),
        };
    }
    let report = explorer.explore_auto(prepared.seeds, predicate);
    PointOutcome {
        point: *point,
        activated: true,
        report,
    }
}

/// [`run_point_with`], with the prepare phase served from a
/// [`PrefixCache`] instead of re-running the error-free prefix. The cache
/// must have been built for the same program, detectors, input, and exec
/// limits the explorer carries — campaign layers build one cache per
/// (task, input) next to the task's explorer configuration.
#[must_use]
pub fn run_point_cached(
    explorer: &Explorer<'_>,
    cache: &PrefixCache<'_>,
    point: &InjectionPoint,
    predicate: &Predicate,
) -> PointOutcome {
    let prepared = prepare_cached(cache, point);
    if !prepared.activated || prepared.seeds.is_empty() {
        return PointOutcome {
            point: *point,
            activated: prepared.activated,
            report: SearchReport::default(),
        };
    }
    let report = explorer.explore_auto(prepared.seeds, predicate);
    PointOutcome {
        point: *point,
        activated: true,
        report,
    }
}

/// Prepares an injection point and model-checks its seed states: the
/// one-shot form of [`run_point_with`], constructing a throwaway
/// [`Explorer`] for the given budgets.
#[must_use]
pub fn run_point(
    program: &Program,
    detectors: &DetectorSet,
    input: &[i64],
    point: &InjectionPoint,
    predicate: &Predicate,
    limits: &SearchLimits,
) -> PointOutcome {
    let explorer = Explorer::new(program, detectors).with_limits(limits.clone());
    run_point_with(&explorer, input, point, predicate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_points, ErrorClass};
    use sympl_asm::{parse_program, Reg};
    use sympl_machine::Status;

    fn dets() -> DetectorSet {
        DetectorSet::new()
    }

    #[test]
    fn golden_run_produces_reference_output() {
        let p = parse_program("read $1\nmult $2, $1, $1\nprint $2\nhalt").unwrap();
        let s = golden_run(&p, &dets(), &[7], &ExecLimits::default());
        assert_eq!(s.status(), &Status::Halted);
        assert_eq!(s.output_ints(), vec![49]);
    }

    #[test]
    fn prepare_register_injection_plants_err() {
        let p = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let point = InjectionPoint::new(1, InjectTarget::Register(Reg::r(1)));
        let prep = prepare(&p, &dets(), &[10], &point, &ExecLimits::default());
        assert!(prep.activated);
        assert_eq!(prep.seeds.len(), 1);
        assert_eq!(prep.seeds[0].reg(Reg::r(1)), Value::Err);
        assert_eq!(prep.seeds[0].pc(), 1, "stopped at the breakpoint");
    }

    #[test]
    fn unreached_breakpoint_is_not_activated() {
        let p = parse_program("beq $0, 0, end\nmov $1, 1\nend: halt").unwrap();
        // Instruction 1 is dead code on this path.
        let point = InjectionPoint::new(1, InjectTarget::Register(Reg::r(1)));
        let prep = prepare(&p, &dets(), &[], &point, &ExecLimits::default());
        assert!(!prep.activated);
        assert!(prep.seeds.is_empty());
    }

    #[test]
    fn loaded_word_injection_corrupts_memory() {
        let p =
            parse_program("mov $29, 64\nmov $1, 5\nst $1, 0($29)\nld $2, 0($29)\nprint $2\nhalt")
                .unwrap();
        let point = InjectionPoint::new(3, InjectTarget::LoadedWord);
        let prep = prepare(&p, &dets(), &[], &point, &ExecLimits::default());
        assert!(prep.activated);
        assert_eq!(prep.seeds[0].mem(64), Some(Value::Err));
    }

    #[test]
    fn destination_injection_runs_the_instruction_first() {
        let p = parse_program("mov $1, 5\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let point = InjectionPoint::new(1, InjectTarget::Destination);
        let prep = prepare(&p, &dets(), &[], &point, &ExecLimits::default());
        assert!(prep.activated);
        let seed = &prep.seeds[0];
        assert_eq!(seed.pc(), 2, "instruction already executed");
        assert_eq!(seed.reg(Reg::r(2)), Value::Err);
        assert_eq!(seed.reg(Reg::r(1)), Value::Int(5), "source unharmed");
    }

    #[test]
    fn changed_target_corrupts_both_destinations() {
        let p = parse_program("mov $1, 5\naddi $2, $1, 1\nhalt").unwrap();
        let point = InjectionPoint::new(1, InjectTarget::ChangedTarget { wrong: Reg::r(10) });
        let prep = prepare(&p, &dets(), &[], &point, &ExecLimits::default());
        let seed = &prep.seeds[0];
        assert_eq!(seed.reg(Reg::r(2)), Value::Err);
        assert_eq!(seed.reg(Reg::r(10)), Value::Err);
    }

    #[test]
    fn targeted_to_nop_skips_and_stales() {
        let p = parse_program("mov $1, 5\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let point = InjectionPoint::new(1, InjectTarget::TargetedToNop);
        let prep = prepare(&p, &dets(), &[], &point, &ExecLimits::default());
        let seed = &prep.seeds[0];
        assert_eq!(seed.pc(), 2, "instruction skipped");
        assert_eq!(seed.reg(Reg::r(2)), Value::Err, "stale destination");
    }

    #[test]
    fn pc_injection_fans_out_over_code() {
        let p = parse_program("mov $1, 1\nmov $2, 2\nmov $3, 3\nhalt").unwrap();
        let point = InjectionPoint::new(1, InjectTarget::ProgramCounter);
        let prep = prepare(&p, &dets(), &[], &point, &ExecLimits::default());
        assert_eq!(prep.seeds.len(), p.len() - 1, "every other location");
        let pcs: Vec<usize> = prep.seeds.iter().map(MachineState::pc).collect();
        assert!(!pcs.contains(&1));
    }

    #[test]
    fn run_point_finds_err_in_output() {
        let p = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt").unwrap();
        let point = InjectionPoint::new(1, InjectTarget::Register(Reg::r(1)));
        let outcome = run_point(
            &p,
            &dets(),
            &[10],
            &point,
            &Predicate::OutputContainsErr,
            &SearchLimits::default(),
        );
        assert!(outcome.activated);
        assert!(outcome.found_errors());
        assert_eq!(outcome.report.solutions.len(), 1);
    }

    #[test]
    fn cached_prepare_equals_fresh_prepare() {
        // Every point of a register campaign on a looping program: the
        // cached prefix must reproduce the fresh prepare bit-for-bit —
        // same activation, same seed fingerprints, same seed order.
        let p = parse_program(
            "ori $2 $0 #1\nread $1\nloop: mult $2 $2 $1\nsubi $1 $1 #1\n\
             setgt $5 $1 $0\nbeq $5 0 exit\nbeq $0 #0 loop\nexit: print $2\nhalt",
        )
        .unwrap();
        let d = dets();
        let input = [3i64];
        let limits = ExecLimits::default();
        let cache = PrefixCache::new(&p, &d, &input, &limits);
        let mut points = enumerate_points(&p, &ErrorClass::RegisterFile);
        points.extend(enumerate_points(&p, &ErrorClass::ProgramCounter));
        // Include a dead-code point so the not-activated path is covered.
        points.push(InjectionPoint::new(6, InjectTarget::Register(Reg::r(2))));
        assert!(!points.is_empty());
        for point in &points {
            let fresh = prepare(&p, &d, &input, point, &limits);
            let cached = prepare_cached(&cache, point);
            assert_eq!(cached.activated, fresh.activated, "{point:?}");
            let fp = |prep: &PreparedInjection| {
                prep.seeds
                    .iter()
                    .map(|s| s.fingerprint())
                    .collect::<Vec<_>>()
            };
            assert_eq!(fp(&cached), fp(&fresh), "{point:?}");
        }
        assert!(cache.hits() > 0);
        assert!(
            cache.steps_saved() > 0,
            "the loop program has real prefixes to save"
        );
    }

    #[test]
    fn whole_register_campaign_on_factorial() {
        // End-to-end: enumerate the register-file campaign on the paper's
        // factorial program and check at least one point prints err.
        let p = parse_program(
            "ori $2 $0 #1\nread $1\nmov $3, $1\nori $4 $0 #1\n\
             loop: setgt $5 $3 $4\nbeq $5 0 exit\nmult $2 $2 $3\nsubi $3 $3 #1\nbeq $0 #0 loop\n\
             exit: prints \"Factorial = \"\nprint $2\nhalt",
        )
        .unwrap();
        let points = enumerate_points(&p, &ErrorClass::RegisterFile);
        assert!(points.len() >= 8, "factorial uses many registers");
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(400),
            ..SearchLimits::default()
        };
        let mut found = 0;
        for point in &points {
            let out = run_point(
                &p,
                &dets(),
                &[4],
                point,
                &Predicate::OutputContainsErr,
                &limits,
            );
            if out.found_errors() {
                found += 1;
            }
        }
        assert!(found >= 3, "several register errors must reach the output");
    }
}
