//! The query generator (paper §5, "Supporting Tools"): pre-defined error
//! categories paired with outcome predicates, so programmers can verify
//! resilience "without having to write complex specifications (or any
//! specifications)".

use sympl_check::Predicate;

use crate::{ComputationError, ErrorClass};

/// The pre-defined queries the generator offers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryKind {
    /// "Does any register error make the program print an erroneous value?"
    /// — the paper's running search command.
    ErrInOutput,
    /// "Does any register error make the program halt normally with output
    /// different from the golden run?" — the §6.1 tcas query.
    WrongOutput {
        /// The golden (error-free) output.
        expected: Vec<i64>,
    },
    /// "Can the program print exactly this (catastrophic) output with no
    /// exception?" — the hunt for tcas printing `2`.
    CatastrophicOutput {
        /// The catastrophic output searched for.
        output: Vec<i64>,
    },
    /// "Which errors crash the program?"
    Crashes,
    /// "Which errors hang the program (watchdog timeout)?"
    Hangs,
}

/// A ready-to-run query: an error class plus an outcome predicate.
#[derive(Debug, Clone)]
pub struct Query {
    /// The error class to enumerate.
    pub class: ErrorClass,
    /// What counts as an interesting outcome.
    pub kind: QueryKind,
}

impl Query {
    /// The standard register-error/err-output query.
    #[must_use]
    pub fn register_errors_in_output() -> Self {
        Query {
            class: ErrorClass::RegisterFile,
            kind: QueryKind::ErrInOutput,
        }
    }

    /// The §6.1 query: register errors that silently corrupt the output.
    #[must_use]
    pub fn register_errors_wrong_output(expected: Vec<i64>) -> Self {
        Query {
            class: ErrorClass::RegisterFile,
            kind: QueryKind::WrongOutput { expected },
        }
    }

    /// The catastrophic-outcome hunt for a specific printed sequence.
    #[must_use]
    pub fn catastrophic(class: ErrorClass, output: Vec<i64>) -> Self {
        Query {
            class,
            kind: QueryKind::CatastrophicOutput { output },
        }
    }

    /// A control-flow-error crash query.
    #[must_use]
    pub fn fetch_errors_crashing() -> Self {
        Query {
            class: ErrorClass::Computation(ComputationError::Fetch),
            kind: QueryKind::Crashes,
        }
    }

    /// The search predicate this query filters terminal states with.
    #[must_use]
    pub fn predicate(&self) -> Predicate {
        match &self.kind {
            QueryKind::ErrInOutput => Predicate::OutputContainsErr,
            QueryKind::WrongOutput { expected } => Predicate::WrongOutput {
                expected: expected.clone(),
            },
            QueryKind::CatastrophicOutput { output } => Predicate::ExactOutput {
                output: output.clone(),
            },
            QueryKind::Crashes => Predicate::Crashed,
            QueryKind::Hangs => Predicate::Hung,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_machine::{MachineState, OutItem, Status};
    use sympl_symbolic::Value;

    #[test]
    fn presets_build_expected_predicates() {
        let q = Query::register_errors_in_output();
        assert_eq!(q.class, ErrorClass::RegisterFile);
        let mut s = MachineState::new();
        s.push_output(OutItem::Val(Value::Err));
        s.set_status(Status::Halted);
        assert!(q.predicate().matches(&s));
    }

    #[test]
    fn wrong_output_query() {
        let q = Query::register_errors_wrong_output(vec![1]);
        let mut s = MachineState::new();
        s.push_output(OutItem::Val(Value::Int(2)));
        s.set_status(Status::Halted);
        assert!(q.predicate().matches(&s));
        let mut ok = MachineState::new();
        ok.push_output(OutItem::Val(Value::Int(1)));
        ok.set_status(Status::Halted);
        assert!(!q.predicate().matches(&ok));
    }

    #[test]
    fn catastrophic_query_exact_match() {
        let q = Query::catastrophic(ErrorClass::RegisterFile, vec![2]);
        let mut s = MachineState::new();
        s.push_output(OutItem::Val(Value::Int(2)));
        s.set_status(Status::Halted);
        assert!(q.predicate().matches(&s));
    }

    #[test]
    fn fetch_crash_query() {
        let q = Query::fetch_errors_crashing();
        assert!(matches!(q.class, ErrorClass::Computation(_)));
        let mut s = MachineState::new();
        s.set_status(Status::Exception(sympl_machine::Exception::IllegalAddress));
        assert!(q.predicate().matches(&s));
    }
}
