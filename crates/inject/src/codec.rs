//! Wire codec for injection points.
//!
//! A campaign task frame names the injection points a remote worker must
//! sweep; this module gives [`InjectionPoint`] (breakpoint, dynamic
//! occurrence, corruption target) the same tagged-varint encoding the rest
//! of the wire protocol uses.

use sympl_asm::{Reg, NUM_REGS};
use sympl_symbolic::codec::{decode_u64, encode_u64, CodecError};

use crate::{InjectTarget, InjectionPoint};

const TARGET_REGISTER: u8 = 0;
const TARGET_LOADED_WORD: u8 = 1;
const TARGET_DESTINATION: u8 = 2;
const TARGET_CHANGED_TARGET: u8 = 3;
const TARGET_NOP_TO_TARGETED: u8 = 4;
const TARGET_TARGETED_TO_NOP: u8 = 5;
const TARGET_PROGRAM_COUNTER: u8 = 6;

fn encode_reg(r: Reg, buf: &mut Vec<u8>) {
    buf.push(u8::from(r));
}

fn decode_reg(bytes: &[u8], pos: &mut usize) -> Result<Reg, CodecError> {
    let &idx = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
    *pos += 1;
    if usize::from(idx) >= NUM_REGS {
        return Err(CodecError::BadTag {
            what: "register index",
            tag: idx,
        });
    }
    Ok(Reg::r(idx))
}

/// Appends an [`InjectTarget`]: a tag byte plus any register payload.
pub fn encode_target(target: InjectTarget, buf: &mut Vec<u8>) {
    match target {
        InjectTarget::Register(r) => {
            buf.push(TARGET_REGISTER);
            encode_reg(r, buf);
        }
        InjectTarget::LoadedWord => buf.push(TARGET_LOADED_WORD),
        InjectTarget::Destination => buf.push(TARGET_DESTINATION),
        InjectTarget::ChangedTarget { wrong } => {
            buf.push(TARGET_CHANGED_TARGET);
            encode_reg(wrong, buf);
        }
        InjectTarget::NopToTargeted { wrong } => {
            buf.push(TARGET_NOP_TO_TARGETED);
            encode_reg(wrong, buf);
        }
        InjectTarget::TargetedToNop => buf.push(TARGET_TARGETED_TO_NOP),
        InjectTarget::ProgramCounter => buf.push(TARGET_PROGRAM_COUNTER),
    }
}

/// Decodes an [`InjectTarget`] at `*pos`, advancing it.
///
/// # Errors
///
/// [`CodecError::BadTag`] on an unknown tag or an out-of-file register
/// index.
pub fn decode_target(bytes: &[u8], pos: &mut usize) -> Result<InjectTarget, CodecError> {
    let &tag = bytes.get(*pos).ok_or(CodecError::UnexpectedEnd)?;
    *pos += 1;
    match tag {
        TARGET_REGISTER => Ok(InjectTarget::Register(decode_reg(bytes, pos)?)),
        TARGET_LOADED_WORD => Ok(InjectTarget::LoadedWord),
        TARGET_DESTINATION => Ok(InjectTarget::Destination),
        TARGET_CHANGED_TARGET => Ok(InjectTarget::ChangedTarget {
            wrong: decode_reg(bytes, pos)?,
        }),
        TARGET_NOP_TO_TARGETED => Ok(InjectTarget::NopToTargeted {
            wrong: decode_reg(bytes, pos)?,
        }),
        TARGET_TARGETED_TO_NOP => Ok(InjectTarget::TargetedToNop),
        TARGET_PROGRAM_COUNTER => Ok(InjectTarget::ProgramCounter),
        tag => Err(CodecError::BadTag {
            what: "inject target",
            tag,
        }),
    }
}

/// Appends an [`InjectionPoint`]: breakpoint and occurrence varints, then
/// the target.
pub fn encode_point(point: &InjectionPoint, buf: &mut Vec<u8>) {
    encode_u64(point.breakpoint as u64, buf);
    encode_u64(u64::from(point.occurrence), buf);
    encode_target(point.target, buf);
}

/// Decodes an [`InjectionPoint`] at `*pos`, advancing it.
///
/// # Errors
///
/// Any [`CodecError`] on truncated or malformed bytes.
pub fn decode_point(bytes: &[u8], pos: &mut usize) -> Result<InjectionPoint, CodecError> {
    let breakpoint = usize::try_from(decode_u64(bytes, pos)?).map_err(|_| CodecError::Overflow)?;
    let occurrence = u32::try_from(decode_u64(bytes, pos)?).map_err(|_| CodecError::Overflow)?;
    let target = decode_target(bytes, pos)?;
    Ok(InjectionPoint {
        breakpoint,
        occurrence,
        target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_target_roundtrips() {
        let targets = [
            InjectTarget::Register(Reg::r(1)),
            InjectTarget::Register(Reg::r(31)),
            InjectTarget::LoadedWord,
            InjectTarget::Destination,
            InjectTarget::ChangedTarget { wrong: Reg::r(5) },
            InjectTarget::NopToTargeted { wrong: Reg::r(9) },
            InjectTarget::TargetedToNop,
            InjectTarget::ProgramCounter,
        ];
        for target in targets {
            let point = InjectionPoint::new(4321, target).at_occurrence(7);
            let mut buf = Vec::new();
            encode_point(&point, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_point(&buf, &mut pos).unwrap(), point);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn malformed_points_error() {
        assert!(decode_point(&[], &mut 0).is_err());
        // Unknown target tag.
        let mut buf = Vec::new();
        encode_u64(0, &mut buf);
        encode_u64(1, &mut buf);
        buf.push(200);
        assert!(matches!(
            decode_point(&buf, &mut 0),
            Err(CodecError::BadTag {
                what: "inject target",
                ..
            })
        ));
        // Out-of-file register index.
        let mut buf = Vec::new();
        encode_u64(0, &mut buf);
        encode_u64(1, &mut buf);
        buf.push(TARGET_REGISTER);
        buf.push(99);
        assert!(matches!(
            decode_point(&buf, &mut 0),
            Err(CodecError::BadTag {
                what: "register index",
                ..
            })
        ));
    }
}
