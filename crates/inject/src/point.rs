//! Injection points: where and what to corrupt.

use std::fmt;
use sympl_asm::Reg;

/// What an injection corrupts once the breakpoint is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectTarget {
    /// Replace a register's contents with `err` just *before* the
    /// breakpoint instruction executes (activation guaranteed when the
    /// instruction reads the register).
    Register(Reg),
    /// Replace with `err` the memory word the breakpoint instruction is
    /// about to load.
    LoadedWord,
    /// Corrupt the destination *after* the breakpoint instruction executes
    /// (functional-unit output error): the written register or the stored
    /// memory word.
    Destination,
    /// Decode error: the instruction's output target changes — `err` in
    /// the original destination and in the wrong new target.
    ChangedTarget {
        /// The erroneous extra destination.
        wrong: Reg,
    },
    /// Decode error: a `nop` becomes a targeted instruction — `err` in the
    /// new wrong target.
    NopToTargeted {
        /// The spuriously written register.
        wrong: Reg,
    },
    /// Decode error: a targeted instruction becomes `nop` — `err` in the
    /// original destination (its intended update never happened).
    TargetedToNop,
    /// Fetch error: the PC moves to an arbitrary valid code location
    /// instead of the breakpoint instruction.
    ProgramCounter,
}

impl fmt::Display for InjectTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectTarget::Register(r) => write!(f, "err in {r}"),
            InjectTarget::LoadedWord => f.write_str("err in loaded memory word"),
            InjectTarget::Destination => f.write_str("err in destination (FU output)"),
            InjectTarget::ChangedTarget { wrong } => {
                write!(f, "decode: destination redirected to {wrong}")
            }
            InjectTarget::NopToTargeted { wrong } => {
                write!(f, "decode: nop writes {wrong}")
            }
            InjectTarget::TargetedToNop => f.write_str("decode: instruction squashed to nop"),
            InjectTarget::ProgramCounter => f.write_str("fetch: PC redirected"),
        }
    }
}

/// One candidate injection: a breakpoint plus a corruption target.
///
/// The breakpoint is a *static* instruction address and a 1-based dynamic
/// occurrence count — "the error is injected just before the instruction
/// that uses the register, to ensure fault activation" (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectionPoint {
    /// Static instruction address of the breakpoint.
    pub breakpoint: usize,
    /// Which dynamic execution of the breakpoint triggers the injection
    /// (1 = the first time the instruction is about to execute).
    pub occurrence: u32,
    /// What to corrupt.
    pub target: InjectTarget,
}

impl InjectionPoint {
    /// A first-occurrence injection point.
    #[must_use]
    pub fn new(breakpoint: usize, target: InjectTarget) -> Self {
        InjectionPoint {
            breakpoint,
            occurrence: 1,
            target,
        }
    }

    /// The same point at a later dynamic occurrence.
    #[must_use]
    pub fn at_occurrence(mut self, occurrence: u32) -> Self {
        self.occurrence = occurrence.max(1);
        self
    }
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} (occurrence {}): {}",
            self.breakpoint, self.occurrence, self.target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = InjectionPoint::new(5, InjectTarget::Register(Reg::r(3)));
        assert_eq!(p.breakpoint, 5);
        assert_eq!(p.occurrence, 1);
        let p2 = p.at_occurrence(4);
        assert_eq!(p2.occurrence, 4);
        let p3 = p.at_occurrence(0);
        assert_eq!(p3.occurrence, 1, "occurrence is clamped to 1");
    }

    #[test]
    fn display_is_informative() {
        let p = InjectionPoint::new(7, InjectTarget::ProgramCounter);
        let text = p.to_string();
        assert!(text.contains("@7"));
        assert!(text.contains("PC"));
        for t in [
            InjectTarget::Register(Reg::r(1)),
            InjectTarget::LoadedWord,
            InjectTarget::Destination,
            InjectTarget::ChangedTarget { wrong: Reg::r(2) },
            InjectTarget::NopToTargeted { wrong: Reg::r(3) },
            InjectTarget::TargetedToNop,
        ] {
            assert!(!t.to_string().is_empty());
        }
    }
}
