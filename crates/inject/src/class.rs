//! Error classes (paper §3.3 and Table 1).

use std::fmt;

/// Computation-error categories from Table 1, classified by where the fault
/// originates in the pipeline and how it manifests architecturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputationError {
    /// Instruction decoder: an instruction writing to a destination has its
    /// output target changed — `err` appears in *both* the original and the
    /// new (wrong) target.
    DecodeChangedTarget,
    /// Instruction decoder: a no-target instruction (e.g. `nop`) is decoded
    /// as a targeted one — `err` in the new wrong target.
    DecodeNopToTargeted,
    /// Instruction decoder: a targeted instruction is decoded as `nop` —
    /// the destination keeps a stale value, modeled as `err` in the
    /// original target location.
    DecodeTargetedToNop,
    /// Address/data bus: data read from memory, cache, or the register file
    /// is corrupted — `err` in the source register(s) of the current
    /// instruction (or the target register of loads).
    BusSource,
    /// Processor functional unit: the FU output is corrupted — `err` in the
    /// register or memory word being written by the current instruction.
    FunctionalUnit,
    /// Instruction fetch: errors in the PC — the PC is changed to an
    /// arbitrary but valid code location. (Errors in the fetched
    /// instruction itself are modeled as decode errors.)
    Fetch,
}

impl ComputationError {
    /// All Table-1 computation categories.
    pub const ALL: [ComputationError; 6] = [
        ComputationError::DecodeChangedTarget,
        ComputationError::DecodeNopToTargeted,
        ComputationError::DecodeTargetedToNop,
        ComputationError::BusSource,
        ComputationError::FunctionalUnit,
        ComputationError::Fetch,
    ];

    /// The "fault origin" column of Table 1.
    #[must_use]
    pub fn fault_origin(self) -> &'static str {
        match self {
            ComputationError::DecodeChangedTarget
            | ComputationError::DecodeNopToTargeted
            | ComputationError::DecodeTargetedToNop => "Instruction Decoder",
            ComputationError::BusSource => "Address or Data Bus",
            ComputationError::FunctionalUnit => "Processor Functional Unit",
            ComputationError::Fetch => "Instruction Fetch Mechanism",
        }
    }

    /// The "modeling procedure" column of Table 1.
    #[must_use]
    pub fn modeling_procedure(self) -> &'static str {
        match self {
            ComputationError::DecodeChangedTarget => {
                "err in the original and new targets (register or memory)"
            }
            ComputationError::DecodeNopToTargeted => {
                "err in the new wrong target (register or memory)"
            }
            ComputationError::DecodeTargetedToNop => {
                "err in the original target location (register or memory)"
            }
            ComputationError::BusSource => "err in source register(s) of the current instruction",
            ComputationError::FunctionalUnit => {
                "err in register or memory being written by the current instruction"
            }
            ComputationError::Fetch => "PC is changed to an arbitrary but valid code location",
        }
    }
}

impl fmt::Display for ComputationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComputationError::DecodeChangedTarget => "decode: changed output target",
            ComputationError::DecodeNopToTargeted => "decode: nop to targeted instruction",
            ComputationError::DecodeTargetedToNop => "decode: targeted instruction to nop",
            ComputationError::BusSource => "bus: corrupted source operand",
            ComputationError::FunctionalUnit => "functional unit: corrupted output",
            ComputationError::Fetch => "fetch: corrupted program counter",
        };
        f.write_str(s)
    }
}

/// An error class selects which transient errors a campaign enumerates
/// (the framework input "a class of hardware errors to be considered").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Transient errors in the register file: `err` replaces the contents
    /// of a register used by the program (single- and multi-bit errors are
    /// not distinguished, §3.3).
    RegisterFile,
    /// Transient errors in main memory/cache: `err` replaces a memory word
    /// the program reads.
    Memory,
    /// Control-flow errors: the PC moves to an arbitrary valid location.
    ProgramCounter,
    /// One of the Table-1 computation categories.
    Computation(ComputationError),
}

impl ErrorClass {
    /// Every concrete class, with the computation categories expanded.
    #[must_use]
    pub fn all() -> Vec<ErrorClass> {
        let mut out = vec![
            ErrorClass::RegisterFile,
            ErrorClass::Memory,
            ErrorClass::ProgramCounter,
        ];
        out.extend(ComputationError::ALL.map(ErrorClass::Computation));
        out
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorClass::RegisterFile => f.write_str("register-file errors"),
            ErrorClass::Memory => f.write_str("memory errors"),
            ErrorClass::ProgramCounter => f.write_str("program-counter errors"),
            ErrorClass::Computation(c) => write!(f, "computation errors ({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_expands_computation_categories() {
        let all = ErrorClass::all();
        assert_eq!(all.len(), 9);
        assert!(all.contains(&ErrorClass::Computation(ComputationError::Fetch)));
    }

    #[test]
    fn table1_columns_are_documented() {
        for c in ComputationError::ALL {
            assert!(!c.fault_origin().is_empty());
            assert!(!c.modeling_procedure().is_empty());
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn display_distinct() {
        let mut names: Vec<String> = ErrorClass::all().iter().map(ToString::to_string).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9, "class names must be distinct");
    }
}
