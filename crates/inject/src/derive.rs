//! Automated derivation of application-aware error detectors.
//!
//! The paper's §4.2 workflow ends with "the programmer can then formulate
//! a detector to handle the case…"; its reference \[2\] (Pattabiraman,
//! Kalbarczyk, Iyer, IOLTS 2007) automates that formulation by deriving
//! value-range detectors from observed executions. This module provides
//! that companion capability on the SymPLFIED machine:
//!
//! 1. run the program concretely over a set of training inputs, recording
//!    the range of values a chosen register takes each time a chosen
//!    program point executes;
//! 2. emit a pair of `det(id, $(r), >=, lo)` / `det(id+1, $(r), <=, hi)`
//!    detectors; and
//! 3. instrument the program with `check` instructions guarding the point
//!    (remapping all control flow via [`sympl_asm::insert_before`]).
//!
//! The derived detectors are *likely invariants*: sound on the training
//! inputs by construction, and then verifiable against arbitrary errors by
//! the SymPLFIED search itself — closing the loop the paper describes.

use sympl_asm::{insert_before, AsmError, Cmp, Instr, Program, Reg};
use sympl_detect::{Detector, DetectorSet, Expr};
use sympl_machine::{step_concrete, ExecLimits, MachineState};
use sympl_symbolic::Location;

/// The observed value range of one (program point, register) site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedRange {
    /// Program point (instruction address about to execute).
    pub at: usize,
    /// Observed register.
    pub reg: Reg,
    /// Minimum observed value.
    pub lo: i64,
    /// Maximum observed value.
    pub hi: i64,
    /// How many observations were made.
    pub samples: usize,
}

/// Runs the program concretely over `inputs` and records the value range
/// of `reg` every time execution is about to run the instruction at `at`.
///
/// Returns `None` if the site never executes on any training input.
///
/// # Panics
///
/// Panics if a training run is not concretely executable (training uses
/// the error-free program).
#[must_use]
pub fn observe_range(
    program: &Program,
    detectors: &DetectorSet,
    inputs: &[Vec<i64>],
    at: usize,
    reg: Reg,
    limits: &ExecLimits,
) -> Option<ObservedRange> {
    let mut range: Option<(i64, i64, usize)> = None;
    for input in inputs {
        let mut state = MachineState::with_input(input.clone());
        while !state.status().is_terminal() {
            if state.pc() == at {
                if let Some(v) = state.reg(reg).as_int() {
                    range = Some(match range {
                        None => (v, v, 1),
                        Some((lo, hi, n)) => (lo.min(v), hi.max(v), n + 1),
                    });
                }
            }
            step_concrete(&mut state, program, detectors, limits)
                .expect("training runs are error-free and concrete");
        }
    }
    range.map(|(lo, hi, samples)| ObservedRange {
        at,
        reg,
        lo,
        hi,
        samples,
    })
}

/// A derived detector pair plus the instrumented program.
#[derive(Debug, Clone)]
pub struct DerivedDetectors {
    /// The instrumented program (checks inserted before each site).
    pub program: Program,
    /// The detector set including the derived range checks.
    pub detectors: DetectorSet,
    /// The observations the detectors were derived from.
    pub ranges: Vec<ObservedRange>,
}

/// Derives range detectors for the given `(address, register)` sites from
/// training `inputs`, and instruments the program with the corresponding
/// `check` instructions. Detector identifiers start at `first_id`.
///
/// Sites that never execute during training are skipped (no observation,
/// no detector).
///
/// # Errors
///
/// Propagates instrumentation errors from [`insert_before`].
pub fn derive_range_detectors(
    program: &Program,
    base_detectors: &DetectorSet,
    inputs: &[Vec<i64>],
    sites: &[(usize, Reg)],
    first_id: u32,
    limits: &ExecLimits,
) -> Result<DerivedDetectors, AsmError> {
    let mut detectors = base_detectors.clone();
    let mut insertions: Vec<(usize, Vec<Instr>)> = Vec::new();
    let mut ranges = Vec::new();
    let mut next_id = first_id;

    for &(at, reg) in sites {
        let Some(range) = observe_range(program, base_detectors, inputs, at, reg, limits) else {
            continue;
        };
        let lo_id = next_id;
        let hi_id = next_id + 1;
        next_id += 2;
        detectors.insert(Detector::new(
            lo_id,
            Location::Reg(reg),
            Cmp::Ge,
            Expr::constant(range.lo),
        ));
        detectors.insert(Detector::new(
            hi_id,
            Location::Reg(reg),
            Cmp::Le,
            Expr::constant(range.hi),
        ));
        insertions.push((
            at,
            vec![Instr::Check { id: lo_id }, Instr::Check { id: hi_id }],
        ));
        ranges.push(range);
    }

    let program = insert_before(program, &insertions)?;
    Ok(DerivedDetectors {
        program,
        detectors,
        ranges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;
    use sympl_machine::{run_concrete, Status};

    fn sum_program() -> Program {
        parse_program(
            "read $1\nmov $2, 0\nmov $3, 1\n\
             loop: setgt $4, $3, $1\nbne $4, 0, exit\nadd $2, $2, $3\naddi $3, $3, 1\njmp loop\n\
             exit: print $2\nhalt",
        )
        .unwrap()
    }

    #[test]
    fn observes_accumulator_range() {
        let p = sum_program();
        // Observe $2 at the `add` (address 5) over n in 1..=5.
        let inputs: Vec<Vec<i64>> = (1..=5).map(|n| vec![n]).collect();
        let range = observe_range(
            &p,
            &DetectorSet::new(),
            &inputs,
            5,
            Reg::r(2),
            &ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(range.lo, 0, "accumulator starts at 0");
        assert_eq!(range.hi, 10, "1+2+3+4 before the last add of n=5");
        assert_eq!(range.samples, 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn unexecuted_site_yields_no_observation() {
        let p = parse_program("jmp end\nmov $1, 1\nend: halt").unwrap();
        assert!(observe_range(
            &p,
            &DetectorSet::new(),
            &[vec![]],
            1,
            Reg::r(1),
            &ExecLimits::default(),
        )
        .is_none());
    }

    #[test]
    fn derived_detectors_are_transparent_on_training_inputs() {
        let p = sum_program();
        let inputs: Vec<Vec<i64>> = (1..=6).map(|n| vec![n]).collect();
        let derived = derive_range_detectors(
            &p,
            &DetectorSet::new(),
            &inputs,
            &[(5, Reg::r(2)), (6, Reg::r(3))],
            100,
            &ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(derived.ranges.len(), 2);
        assert_eq!(derived.detectors.len(), 4);
        assert_eq!(derived.program.len(), p.len() + 4);
        // Every training input still halts with the correct sum.
        for n in 1..=6i64 {
            let mut s = MachineState::with_input(vec![n]);
            run_concrete(
                &mut s,
                &derived.program,
                &derived.detectors,
                &ExecLimits::default(),
            )
            .unwrap();
            assert_eq!(s.status(), &Status::Halted, "n = {n}");
            assert_eq!(s.output_ints(), vec![n * (n + 1) / 2]);
        }
    }

    #[test]
    fn derived_detectors_catch_out_of_range_errors() {
        use crate::{run_point, InjectTarget, InjectionPoint};
        use sympl_check::{Predicate, SearchLimits};

        let p = sum_program();
        let inputs: Vec<Vec<i64>> = (1..=6).map(|n| vec![n]).collect();
        let derived = derive_range_detectors(
            &p,
            &DetectorSet::new(),
            &inputs,
            &[(5, Reg::r(2))],
            100,
            &ExecLimits::default(),
        )
        .unwrap();
        // Inject err into the accumulator at the (now guarded) add: the
        // checks run first, so out-of-range errors are detected; in-range
        // errors may still escape — the derived detectors narrow, not
        // close, the escaping set.
        let guarded_add = derived.program.len() - p.len() + 5; // shifted by 2 checks
        assert!(matches!(
            derived.program.fetch(guarded_add),
            Some(Instr::Bin { .. })
        ));
        let point = InjectionPoint::new(
            guarded_add - 2, // inject before the first check
            InjectTarget::Register(Reg::r(2)),
        );
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(1_000),
            max_solutions: 200,
            ..SearchLimits::default()
        };
        let outcome = run_point(
            &derived.program,
            &derived.detectors,
            &[4],
            &point,
            &Predicate::Detected,
            &limits,
        );
        assert!(outcome.activated);
        assert!(
            !outcome.report.solutions.is_empty(),
            "out-of-range accumulator values must be detected"
        );
        // The detected branches learned exactly the derived bounds.
        let detected = &outcome.report.solutions[0];
        assert!(matches!(detected.state.status(), Status::Detected(_)));
    }
}
