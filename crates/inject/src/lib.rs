//! # sympl-inject — the SymPLFIED error model and injection campaigns
//!
//! Implements the paper's fault model (§3.3, Table 1) and the injection
//! strategy of the evaluation (§6.1–6.2):
//!
//! * [`ErrorClass`] — the error classes: register-file, memory, program
//!   counter (fetch), and the computation/decode categories of Table 1.
//! * [`InjectionPoint`] — one candidate injection: a breakpoint (static
//!   instruction, dynamic occurrence) plus the corrupted target. Points are
//!   enumerated per class with the paper's activation optimization: errors
//!   are injected *just before the instruction that uses the location*, so
//!   every injected fault is activated.
//! * [`prepare`] — runs the error-free prefix concretely to the breakpoint
//!   and plants the symbolic `err`, producing the seed states for a search.
//! * [`run_point`] — prepare + model-check, the unit of work a campaign
//!   shards across workers.
//! * [`golden_run`] — the error-free reference execution (for wrong-output
//!   predicates).
//!
//! ```
//! use sympl_asm::parse_program;
//! use sympl_check::{Predicate, SearchLimits};
//! use sympl_detect::DetectorSet;
//! use sympl_inject::{enumerate_points, run_point, ErrorClass};
//!
//! let program = parse_program("read $1\naddi $2, $1, 1\nprint $2\nhalt")?;
//! let detectors = DetectorSet::new();
//! let points = enumerate_points(&program, &ErrorClass::RegisterFile);
//! assert!(!points.is_empty());
//! let outcome = run_point(
//!     &program,
//!     &detectors,
//!     &[41],
//!     &points[0],
//!     &Predicate::OutputContainsErr,
//!     &SearchLimits::default(),
//! );
//! assert!(outcome.activated);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod class;
pub mod codec;
mod derive;
mod point;
mod prepare;
mod query;

pub use campaign::{enumerate_points, Campaign};
pub use class::{ComputationError, ErrorClass};
pub use derive::{derive_range_detectors, observe_range, DerivedDetectors, ObservedRange};
pub use point::{InjectTarget, InjectionPoint};
pub use prepare::{
    golden_run, prepare, prepare_cached, run_point, run_point_cached, run_point_with, PointOutcome,
    PrefixCache, PreparedInjection,
};
pub use query::{Query, QueryKind};
