//! Campaign enumeration: all injection points of an error class.

use sympl_asm::{Instr, Program, Reg};

use crate::{ComputationError, ErrorClass, InjectTarget, InjectionPoint};

/// Enumerates every injection point of `class` in `program`, applying the
/// paper's §6.2 state-space optimization: only locations *used by* each
/// instruction are injected, just before the instruction runs, so every
/// fault is activated. (Injecting a register at an arbitrary earlier point
/// is equivalent to injecting it right before its next use.)
#[must_use]
pub fn enumerate_points(program: &Program, class: &ErrorClass) -> Vec<InjectionPoint> {
    let mut points = Vec::new();
    for (addr, instr) in program.instrs().iter().enumerate() {
        match class {
            ErrorClass::RegisterFile | ErrorClass::Computation(ComputationError::BusSource) => {
                for r in instr.source_regs() {
                    if !r.is_zero() {
                        points.push(InjectionPoint::new(addr, InjectTarget::Register(r)));
                    }
                }
            }
            ErrorClass::Memory => {
                if matches!(instr, Instr::Load { .. }) {
                    points.push(InjectionPoint::new(addr, InjectTarget::LoadedWord));
                }
            }
            ErrorClass::ProgramCounter | ErrorClass::Computation(ComputationError::Fetch) => {
                points.push(InjectionPoint::new(addr, InjectTarget::ProgramCounter));
            }
            ErrorClass::Computation(ComputationError::FunctionalUnit) => {
                if instr.has_target() {
                    points.push(InjectionPoint::new(addr, InjectTarget::Destination));
                }
            }
            ErrorClass::Computation(ComputationError::DecodeChangedTarget) => {
                if let Some(rd) = instr.dest_reg() {
                    // The "new" target is part of the error's
                    // non-determinism; candidate wrong targets are chosen
                    // close to the original (neighbouring encodings differ
                    // in few bits) plus the link register, deduplicated.
                    for wrong in wrong_targets(rd) {
                        points.push(InjectionPoint::new(
                            addr,
                            InjectTarget::ChangedTarget { wrong },
                        ));
                    }
                }
            }
            ErrorClass::Computation(ComputationError::DecodeNopToTargeted) => {
                if matches!(instr, Instr::Nop) {
                    for wrong in Reg::all().filter(|r| !r.is_zero()) {
                        points.push(InjectionPoint::new(
                            addr,
                            InjectTarget::NopToTargeted { wrong },
                        ));
                    }
                }
            }
            ErrorClass::Computation(ComputationError::DecodeTargetedToNop) => {
                if instr.dest_reg().is_some() {
                    points.push(InjectionPoint::new(addr, InjectTarget::TargetedToNop));
                }
            }
        }
    }
    points
}

/// Candidate wrong destinations for a changed-target decode error: the
/// registers whose encodings are one bit-flip away from the original, which
/// is how a single-event upset in the destination field manifests.
fn wrong_targets(rd: Reg) -> Vec<Reg> {
    let original = rd.index() as u8;
    (0..5u8)
        .map(|bit| original ^ (1 << bit))
        .filter(|&idx| idx != original && idx != 0)
        .filter_map(|idx| Reg::new(idx).ok())
        .collect()
}

/// A full campaign description: an error class over a program, ready to be
/// sharded into per-point search tasks.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The error class being explored.
    pub class: ErrorClass,
    /// All injection points, in program order.
    pub points: Vec<InjectionPoint>,
}

impl Campaign {
    /// Enumerates the campaign for `program` and `class`.
    #[must_use]
    pub fn new(program: &Program, class: ErrorClass) -> Self {
        Campaign {
            points: enumerate_points(program, &class),
            class,
        }
    }

    /// Number of injection points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the campaign is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Splits the campaign into `n` contiguous shards of near-equal size
    /// (the paper split its tcas search into 150 cluster tasks).
    #[must_use]
    pub fn shards(&self, n: usize) -> Vec<Vec<InjectionPoint>> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let n = n.min(self.points.len());
        let chunk = self.points.len().div_ceil(n);
        self.points.chunks(chunk).map(<[_]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;

    fn sample() -> Program {
        parse_program(
            "read $1\nmov $29, 100\nst $1, 0($29)\nld $2, 0($29)\nadd $3, $1, $2\nnop\nprint $3\nhalt",
        )
        .unwrap()
    }

    #[test]
    fn register_file_points_cover_used_registers_only() {
        let p = sample();
        let points = enumerate_points(&p, &ErrorClass::RegisterFile);
        // read: none; mov imm: none; st: $1,$29; ld: $29; add: $1,$2;
        // print: $3. Total 6.
        assert_eq!(points.len(), 6);
        assert!(points
            .iter()
            .all(|pt| matches!(pt.target, InjectTarget::Register(r) if !r.is_zero())));
        // The store instruction contributes both its source registers.
        let at_store: Vec<_> = points.iter().filter(|pt| pt.breakpoint == 2).collect();
        assert_eq!(at_store.len(), 2);
    }

    #[test]
    fn memory_points_target_loads() {
        let p = sample();
        let points = enumerate_points(&p, &ErrorClass::Memory);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].breakpoint, 3);
        assert_eq!(points[0].target, InjectTarget::LoadedWord);
    }

    #[test]
    fn pc_points_cover_every_instruction() {
        let p = sample();
        let points = enumerate_points(&p, &ErrorClass::ProgramCounter);
        assert_eq!(points.len(), p.len());
    }

    #[test]
    fn functional_unit_points_cover_targeted_instructions() {
        let p = sample();
        let points = enumerate_points(
            &p,
            &ErrorClass::Computation(ComputationError::FunctionalUnit),
        );
        // read, mov, st, ld, add, print? print has no target; nop no; halt no.
        // read(0), mov(1), st(2), ld(3), add(4) => 5 points.
        assert_eq!(points.len(), 5);
    }

    #[test]
    fn decode_nop_points_only_at_nops() {
        let p = sample();
        let points = enumerate_points(
            &p,
            &ErrorClass::Computation(ComputationError::DecodeNopToTargeted),
        );
        assert!(points.iter().all(|pt| pt.breakpoint == 5));
        assert_eq!(points.len(), 31, "every non-zero register is a candidate");
    }

    #[test]
    fn decode_changed_target_uses_bitflip_neighbours() {
        let p = parse_program("add $8, $1, $2\nhalt").unwrap();
        let points = enumerate_points(
            &p,
            &ErrorClass::Computation(ComputationError::DecodeChangedTarget),
        );
        // $8 = 0b01000; neighbours: 9, 10, 12, 0(dropped), 24.
        let wrongs: Vec<u8> = points
            .iter()
            .filter_map(|pt| match pt.target {
                InjectTarget::ChangedTarget { wrong } => Some(wrong.index() as u8),
                _ => None,
            })
            .collect();
        assert_eq!(wrongs, vec![9, 10, 12, 24]);
    }

    #[test]
    fn shards_partition_the_points() {
        let p = sample();
        let c = Campaign::new(&p, ErrorClass::RegisterFile);
        let shards = c.shards(4);
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, c.len());
        assert!(shards.len() <= 4);
        assert!(!c.is_empty());
        // More shards than points degrades gracefully.
        let many = c.shards(1000);
        assert_eq!(many.iter().map(Vec::len).sum::<usize>(), c.len());
        assert!(c.shards(0).is_empty());
    }
}
